//! Tactical policies: the decision layer whose existence changes the HARA
//! calculus.
//!
//! Sec. II-B.2 of the paper: "What situations the ADS will be exposed to
//! will depend on its decisions in previous situations." The two built-in
//! policies bracket the proactive/reactive spectrum the paper discusses:
//!
//! * [`ReactivePolicy`] drives at the speed limit and slams the brakes when
//!   time-to-collision drops below a threshold — the AEB-like baseline.
//! * [`CautiousPolicy`] chooses a cruise speed from the *stopping-distance
//!   envelope*: never faster than what the current detection range, system
//!   reaction time and **current actual braking capability** can absorb
//!   (Sec. II-B.3: "as long as the tactical decisions know about the
//!   current actual braking capability, it should be possible to safely
//!   adjust the driving style accordingly"). It also brakes earlier and
//!   proportionally.

use serde::{Deserialize, Serialize};

use qrn_units::{Acceleration, Meters, Speed};

use crate::perception::PerceptionParams;
use crate::vehicle::VehicleParams;

/// A tactical decision layer: cruise-speed choice and braking behaviour.
///
/// Implementations must be deterministic functions of their inputs — all
/// randomness lives in the world, so that policy comparisons are
/// apples-to-apples under common random numbers.
pub trait TacticalPolicy: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// The cruise speed chosen for a zone, given the legal limit, the
    /// current perception and the *current* braking capability.
    fn cruise_speed(
        &self,
        speed_limit: Speed,
        perception: &PerceptionParams,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> Speed;

    /// The commanded deceleration given the current gap to a conflicting
    /// object, the ego and object speeds, and the current braking
    /// capability. Returning zero means "no braking yet".
    fn commanded_brake(
        &self,
        gap: Meters,
        ego_speed: Speed,
        object_speed: Speed,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> Acceleration;

    /// Raw-`f64` twin of [`commanded_brake`](Self::commanded_brake) for the
    /// encounter hot loop (one call per 10 ms step), returning the
    /// commanded deceleration in m/s². The default forwards through the
    /// validated newtypes, so external policies stay correct without
    /// changes; the built-in policies override it with the identical
    /// arithmetic on plain floats — same inputs, bit-identical command.
    fn commanded_brake_raw(
        &self,
        gap_m: f64,
        ego_mps: f64,
        object_mps: f64,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> f64 {
        self.commanded_brake(
            Meters::new(gap_m).expect("non-negative gap"),
            Speed::from_mps(ego_mps).expect("non-negative ego speed"),
            Speed::from_mps(object_mps).expect("non-negative object speed"),
            vehicle,
            capability,
        )
        .value()
    }
}

/// Baseline policy: cruise at the limit, full braking below a fixed
/// time-to-collision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactivePolicy {
    /// Time-to-collision threshold (seconds) below which full braking is
    /// commanded.
    pub ttc_threshold_s: f64,
}

impl Default for ReactivePolicy {
    fn default() -> Self {
        ReactivePolicy {
            ttc_threshold_s: 2.0,
        }
    }
}

impl TacticalPolicy for ReactivePolicy {
    fn name(&self) -> &str {
        "reactive"
    }

    fn cruise_speed(
        &self,
        speed_limit: Speed,
        _perception: &PerceptionParams,
        _vehicle: &VehicleParams,
        _capability: Acceleration,
    ) -> Speed {
        speed_limit
    }

    fn commanded_brake(
        &self,
        gap: Meters,
        ego_speed: Speed,
        object_speed: Speed,
        _vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> Acceleration {
        let closing = ego_speed.as_mps() - object_speed.as_mps();
        if closing <= 0.0 {
            return Acceleration::ZERO;
        }
        let ttc = gap.value() / closing;
        if ttc < self.ttc_threshold_s {
            capability
        } else {
            Acceleration::ZERO
        }
    }

    fn commanded_brake_raw(
        &self,
        gap_m: f64,
        ego_mps: f64,
        object_mps: f64,
        _vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> f64 {
        let closing = ego_mps - object_mps;
        if closing <= 0.0 {
            return 0.0;
        }
        let ttc = gap_m / closing;
        if ttc < self.ttc_threshold_s {
            capability.value()
        } else {
            0.0
        }
    }
}

/// Proactive policy: speed from the stopping-distance envelope, early
/// proportional braking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CautiousPolicy {
    /// Fraction of the detection range the full stop must fit into
    /// (smaller is more cautious).
    pub envelope_fraction: f64,
    /// Fraction of capability assumed available when planning (margin for
    /// surface conditions).
    pub capability_margin: f64,
    /// Gap buffer kept when computing needed deceleration, in meters.
    pub buffer_m: f64,
}

impl Default for CautiousPolicy {
    fn default() -> Self {
        CautiousPolicy {
            envelope_fraction: 0.6,
            capability_margin: 0.7,
            buffer_m: 2.0,
        }
    }
}

impl TacticalPolicy for CautiousPolicy {
    fn name(&self) -> &str {
        "cautious"
    }

    fn cruise_speed(
        &self,
        speed_limit: Speed,
        perception: &PerceptionParams,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> Speed {
        // Largest v with v·t_react + v²/(2·a_planned) ≤ fraction·range.
        let a = (capability.value() * self.capability_margin).max(0.1);
        let d = perception.detection_range.value() * self.envelope_fraction;
        let t = vehicle.reaction_time_s;
        // v = -a·t + sqrt(a²t² + 2·a·d)
        let v = -a * t + (a * a * t * t + 2.0 * a * d).sqrt();
        let envelope = Speed::from_mps(v.max(0.0)).expect("quadratic root is finite");
        envelope.min(speed_limit)
    }

    fn commanded_brake(
        &self,
        gap: Meters,
        ego_speed: Speed,
        object_speed: Speed,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> Acceleration {
        let ve = ego_speed.as_mps();
        let vo = object_speed.as_mps();
        if ve <= vo || ve == 0.0 {
            return Acceleration::ZERO;
        }
        // Worst-case planning: assume the object may brake to a stop at
        // the ego's own capability, so the distance available to the ego's
        // full stop is the gap plus the object's worst-case stopping
        // distance, minus the buffer. For a stationary object this reduces
        // to "stop within the gap".
        let object_stop = vo * vo / (2.0 * capability.value().max(0.1));
        let usable_gap = (gap.value() + object_stop - self.buffer_m).max(0.05);
        let needed = ve * ve / (2.0 * usable_gap);
        // Brake early: act as soon as the needed deceleration reaches a
        // third of the comfort level, and command 20% above the need.
        // Inside twice the buffer the policy always brakes to a stop —
        // without this, a slow approach whose "needed" deceleration stays
        // tiny would creep through the buffer into a touch collision.
        let close_range = gap.value() < 2.0 * self.buffer_m;
        if needed < vehicle.comfort_brake.value() / 3.0 && !close_range {
            return Acceleration::ZERO;
        }
        let cmd = if close_range {
            (needed * 1.2).max(vehicle.comfort_brake.value())
        } else {
            needed * 1.2
        };
        Acceleration::new(cmd.min(capability.value())).expect("bounded positive value")
    }

    fn commanded_brake_raw(
        &self,
        gap_m: f64,
        ego_mps: f64,
        object_mps: f64,
        vehicle: &VehicleParams,
        capability: Acceleration,
    ) -> f64 {
        let ve = ego_mps;
        let vo = object_mps;
        if ve <= vo || ve == 0.0 {
            return 0.0;
        }
        let object_stop = vo * vo / (2.0 * capability.value().max(0.1));
        let usable_gap = (gap_m + object_stop - self.buffer_m).max(0.05);
        let needed = ve * ve / (2.0 * usable_gap);
        let close_range = gap_m < 2.0 * self.buffer_m;
        if needed < vehicle.comfort_brake.value() / 3.0 && !close_range {
            return 0.0;
        }
        let cmd = if close_range {
            (needed * 1.2).max(vehicle.comfort_brake.value())
        } else {
            needed * 1.2
        };
        cmd.min(capability.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kmh(v: f64) -> Speed {
        Speed::from_kmh(v).unwrap()
    }

    fn m(d: f64) -> Meters {
        Meters::new(d).unwrap()
    }

    #[test]
    fn reactive_cruises_at_limit() {
        let p = ReactivePolicy::default();
        let v = p.cruise_speed(
            kmh(50.0),
            &PerceptionParams::typical(),
            &VehicleParams::typical(),
            Acceleration::new(8.0).unwrap(),
        );
        assert_eq!(v, kmh(50.0));
    }

    #[test]
    fn reactive_brakes_only_below_ttc() {
        let p = ReactivePolicy::default();
        let veh = VehicleParams::typical();
        let cap = Acceleration::new(8.0).unwrap();
        // 20 m at 5 m/s closing: TTC 4 s -> no brake
        assert_eq!(
            p.commanded_brake(
                m(20.0),
                Speed::from_mps(5.0).unwrap(),
                Speed::ZERO,
                &veh,
                cap
            ),
            Acceleration::ZERO
        );
        // 5 m at 5 m/s closing: TTC 1 s -> full brake
        assert_eq!(
            p.commanded_brake(
                m(5.0),
                Speed::from_mps(5.0).unwrap(),
                Speed::ZERO,
                &veh,
                cap
            ),
            cap
        );
    }

    #[test]
    fn cautious_envelope_caps_speed_below_limit_when_range_is_short() {
        let p = CautiousPolicy::default();
        let veh = VehicleParams::typical();
        let cap = Acceleration::new(8.0).unwrap();
        let short_range = PerceptionParams::typical().with_range_factor(0.2); // 24 m
        let v = p.cruise_speed(kmh(100.0), &short_range, &veh, cap);
        assert!(v < kmh(100.0));
        // and the envelope really fits: stopping distance within fraction of range
        let a = Acceleration::new(cap.value() * p.capability_margin).unwrap();
        let stop = v.stopping_distance(a).unwrap().value() + v.as_mps() * veh.reaction_time_s;
        assert!(stop <= short_range.detection_range.value() * p.envelope_fraction + 1e-6);
    }

    #[test]
    fn cautious_slows_down_when_capability_degrades() {
        let p = CautiousPolicy::default();
        let veh = VehicleParams::typical();
        let perception = PerceptionParams::typical();
        let healthy = p.cruise_speed(
            kmh(120.0),
            &perception,
            &veh,
            Acceleration::new(8.0).unwrap(),
        );
        let degraded = p.cruise_speed(
            kmh(120.0),
            &perception,
            &veh,
            Acceleration::new(4.0).unwrap(),
        );
        assert!(
            degraded < healthy,
            "knowing the actual braking capability must slow the cautious policy"
        );
    }

    #[test]
    fn cautious_brakes_earlier_than_reactive() {
        let cautious = CautiousPolicy::default();
        let reactive = ReactivePolicy::default();
        let veh = VehicleParams::typical();
        let cap = Acceleration::new(8.0).unwrap();
        // 40 m gap, stationary object, 15 m/s ego: TTC 2.7 s.
        let gap = m(40.0);
        let ego = Speed::from_mps(15.0).unwrap();
        let c = cautious.commanded_brake(gap, ego, Speed::ZERO, &veh, cap);
        let r = reactive.commanded_brake(gap, ego, Speed::ZERO, &veh, cap);
        assert!(c > Acceleration::ZERO);
        assert_eq!(r, Acceleration::ZERO);
    }

    #[test]
    fn commanded_brake_never_exceeds_capability() {
        let p = CautiousPolicy::default();
        let veh = VehicleParams::typical();
        let cap = Acceleration::new(4.0).unwrap(); // degraded
        let cmd = p.commanded_brake(
            m(3.0),
            Speed::from_mps(30.0).unwrap(),
            Speed::ZERO,
            &veh,
            cap,
        );
        assert!(cmd <= cap);
    }

    #[test]
    fn no_braking_when_not_closing() {
        let p = CautiousPolicy::default();
        let veh = VehicleParams::typical();
        let cap = Acceleration::new(8.0).unwrap();
        assert_eq!(
            p.commanded_brake(m(10.0), Speed::ZERO, Speed::ZERO, &veh, cap),
            Acceleration::ZERO
        );
        // ego slower than the object: never brake
        assert_eq!(
            p.commanded_brake(
                m(10.0),
                Speed::from_mps(5.0).unwrap(),
                Speed::from_mps(8.0).unwrap(),
                &veh,
                cap
            ),
            Acceleration::ZERO
        );
    }
}
