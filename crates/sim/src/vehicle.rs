//! Ego vehicle parameters.

use serde::{Deserialize, Serialize};

use qrn_units::Acceleration;

/// Physical and timing parameters of the ego vehicle.
///
/// The paper's running example distinguishes *comfortable* braking
/// (≈ 3 m/s², "braking harder than 3 m/s² is considered uncomfortable")
/// from the vehicle's *maximum* capability, which can degrade through
/// faults; tactical decisions are supposed to know the current actual
/// value (Sec. II-B.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Maximum braking capability when healthy.
    pub max_brake: Acceleration,
    /// Comfort braking threshold.
    pub comfort_brake: Acceleration,
    /// System reaction time from detection to brake force, in seconds.
    pub reaction_time_s: f64,
}

impl VehicleParams {
    /// A typical passenger-car parameter set: 8 m/s² peak braking,
    /// 3 m/s² comfort threshold, 0.3 s system reaction time.
    pub fn typical() -> Self {
        VehicleParams {
            max_brake: Acceleration::new(8.0).expect("static value"),
            comfort_brake: Acceleration::new(3.0).expect("static value"),
            reaction_time_s: 0.3,
        }
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_values_are_sane() {
        let v = VehicleParams::typical();
        assert!(v.comfort_brake < v.max_brake);
        assert!(v.reaction_time_s > 0.0 && v.reaction_time_s < 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let v = VehicleParams::typical();
        let back: VehicleParams =
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
