//! Monte-Carlo campaigns: simulated fleet hours producing incident records
//! and campaign statistics, in parallel and reproducibly.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use qrn_core::classification::IncidentClassification;
use qrn_core::incident::IncidentRecord;
use qrn_core::object::{Involvement, ObjectType};
use qrn_core::verification::MeasuredIncidents;
use qrn_stats::rng::{bernoulli, exponential, substream, uniform};
use qrn_stats::summary::OnlineStats;
use qrn_units::{Acceleration, Frequency, Hours, Meters, Speed, UnitError};

use crate::encounter::{run_encounter, Challenge, EncounterOutcome};
use crate::faults::FaultPlan;
use crate::perception::PerceptionParams;
use crate::policy::TacticalPolicy;
use crate::scenario::WorldConfig;
use crate::vehicle::VehicleParams;

/// Parameters of the induced-incident model: hard ego braking can force a
/// follower into a rear-end conflict (the lower half of the paper's
/// Fig. 4: "ego vehicle a causing factor in an incident involving other
/// road users").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InducedParams {
    /// Probability that a follower is present when the ego brakes hard.
    pub follower_probability: f64,
    /// Commanded deceleration above which a follower conflict is possible.
    pub hard_brake_threshold: Acceleration,
}

impl Default for InducedParams {
    fn default() -> Self {
        InducedParams {
            follower_probability: 0.3,
            hard_brake_threshold: Acceleration::new(6.0).expect("static value"),
        }
    }
}

/// A configured Monte-Carlo campaign.
pub struct Campaign<P> {
    config: WorldConfig,
    policy: P,
    vehicle: VehicleParams,
    perception: PerceptionParams,
    faults: FaultPlan,
    induced: InducedParams,
    hours: Hours,
    seed: u64,
    workers: usize,
}

impl<P: TacticalPolicy> Campaign<P> {
    /// Creates a campaign with default vehicle, perception, no faults,
    /// 100 h exposure, seed 0 and 4 workers.
    pub fn new(config: WorldConfig, policy: P) -> Self {
        Campaign {
            config,
            policy,
            vehicle: VehicleParams::typical(),
            perception: PerceptionParams::typical(),
            faults: FaultPlan::none(),
            induced: InducedParams::default(),
            hours: Hours::new(100.0).expect("static value"),
            seed: 0,
            workers: 4,
        }
    }

    /// Sets the total simulated exposure.
    pub fn hours(mut self, hours: Hours) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a campaign needs at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the vehicle parameters.
    pub fn vehicle(mut self, vehicle: VehicleParams) -> Self {
        self.vehicle = vehicle;
        self
    }

    /// Sets the perception parameters.
    pub fn perception(mut self, perception: PerceptionParams) -> Self {
        self.perception = perception;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the induced-incident parameters.
    pub fn induced(mut self, induced: InducedParams) -> Self {
        self.induced = induced;
        self
    }

    /// Runs the campaign: the exposure is split into shifts, each shift
    /// simulated on its own RNG substream, in parallel.
    ///
    /// The same `(config, policy, seed, hours, workers)` always produces
    /// the same result.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign.
    pub fn run(&self) -> Result<CampaignResult, UnitError> {
        self.run_seeded(self.seed)
    }

    fn run_seeded(&self, seed: u64) -> Result<CampaignResult, UnitError> {
        if self.hours.value() <= 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "campaign exposure",
                value: self.hours.value(),
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            });
        }
        // Fixed-size shifts so results do not depend on worker count.
        let shift_hours = 10.0f64.min(self.hours.value());
        let shifts = (self.hours.value() / shift_hours).ceil() as u64;
        let results: Vec<ShiftResult> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..self.workers {
                let campaign = &*self;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut shift = worker as u64;
                    while shift < shifts {
                        let remaining = campaign.hours.value() - shift as f64 * shift_hours;
                        let this_shift = shift_hours.min(remaining);
                        let mut rng = substream(seed, shift);
                        out.push(campaign.run_shift(this_shift, &mut rng));
                        shift += campaign.workers as u64;
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shift worker panicked"))
                .collect()
        });
        let mut records = Vec::new();
        let mut encounters = 0;
        let mut hard_brake_demands = 0;
        let mut undetected_encounters = 0;
        let mut speed_time = 0.0;
        let mut exposure = 0.0;
        let mut zone_hours: BTreeMap<String, f64> = BTreeMap::new();
        let mut zone_encounters: BTreeMap<String, u64> = BTreeMap::new();
        for r in results {
            records.extend(r.records);
            encounters += r.encounters;
            hard_brake_demands += r.hard_brake_demands;
            undetected_encounters += r.undetected_encounters;
            speed_time += r.speed_time;
            exposure += r.hours;
            for (zone, h) in r.zone_hours {
                *zone_hours.entry(zone).or_insert(0.0) += h;
            }
            for (zone, n) in r.zone_encounters {
                *zone_encounters.entry(zone).or_insert(0) += n;
            }
        }
        Ok(CampaignResult {
            policy_name: self.policy.name().to_string(),
            records,
            exposure: Hours::new(exposure)?,
            encounters,
            hard_brake_demands,
            undetected_encounters,
            mean_cruise_kmh: if exposure > 0.0 {
                speed_time / exposure
            } else {
                0.0
            },
            zone_hours,
            zone_encounters,
        })
    }

    /// Runs `n` independent replications (seeds `seed, seed+1, …`) and
    /// summarises the replication-to-replication spread of the headline
    /// rates — the error bars for any campaign-derived estimate.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign or `n == 0`.
    pub fn run_replications(&self, n: u64) -> Result<ReplicationSummary, UnitError> {
        if n == 0 {
            return Err(UnitError::OutOfRange {
                quantity: "replication count",
                value: 0.0,
                min: 1.0,
                max: f64::MAX,
            });
        }
        let mut encounter_rate = OnlineStats::new();
        let mut hard_brake_rate = OnlineStats::new();
        let mut raw_record_count = OnlineStats::new();
        let mut results = Vec::with_capacity(n as usize);
        for i in 0..n {
            let result = self.run_seeded(self.seed + i)?;
            encounter_rate.push(result.encounter_rate()?.as_per_hour());
            hard_brake_rate.push(result.hard_brake_rate()?.as_per_hour());
            raw_record_count.push(result.records.len() as f64);
            results.push(result);
        }
        Ok(ReplicationSummary {
            replications: n,
            encounter_rate,
            hard_brake_rate,
            raw_record_count,
            results,
        })
    }

    /// Simulates one shift of `hours` driving.
    fn run_shift(&self, hours: f64, rng: &mut StdRng) -> ShiftResult {
        let mut result = ShiftResult {
            hours,
            ..ShiftResult::default()
        };
        let mut t = 0.0; // hours into the shift
        let mut zone_idx = 0;
        let mut zone_left = self.config.zones[0].dwell.value();
        while t < hours {
            let zone = &self.config.zones[zone_idx];
            // Weather in the zone degrades the detection range; the policy
            // plans its cruise speed against the degraded range (Sec. IV:
            // the ADS adapts driving style to sensor performance).
            let zone_perception = self.perception.with_range_factor(zone.perception_factor);
            let cruise = self.policy.cruise_speed(
                zone.speed_limit,
                &zone_perception,
                &self.vehicle,
                self.vehicle.max_brake,
            );
            // Earliest challenge arrival across factors, in hours.
            let mut next: Option<(f64, usize)> = None;
            for (i, template) in self.config.challenges.iter().enumerate() {
                let rate = self
                    .config
                    .exposure
                    .rate(&template.factor, &zone.context)
                    .expect("scenario factors all have base rates")
                    .as_per_hour();
                if rate <= 0.0 {
                    continue;
                }
                let dt = exponential(rng, rate);
                if next.is_none_or(|(best, _)| dt < best) {
                    next = Some((dt, i));
                }
            }
            let until_zone_end = zone_left.min(hours - t);
            match next {
                Some((dt, template_idx)) if dt < until_zone_end => {
                    t += dt;
                    zone_left -= dt;
                    result.speed_time += cruise.as_kmh() * dt;
                    *result.zone_hours.entry(zone.name.clone()).or_insert(0.0) += dt;
                    *result.zone_encounters.entry(zone.name.clone()).or_insert(0) += 1;
                    self.run_one_encounter(
                        template_idx,
                        cruise,
                        &zone_perception,
                        rng,
                        &mut result,
                    );
                }
                _ => {
                    t += until_zone_end;
                    zone_left -= until_zone_end;
                    result.speed_time += cruise.as_kmh() * until_zone_end;
                    *result.zone_hours.entry(zone.name.clone()).or_insert(0.0) += until_zone_end;
                }
            }
            if zone_left <= 1e-12 {
                zone_idx = (zone_idx + 1) % self.config.zones.len();
                zone_left = self.config.zones[zone_idx].dwell.value();
            }
        }
        result
    }

    fn run_one_encounter(
        &self,
        template_idx: usize,
        cruise: Speed,
        perception: &PerceptionParams,
        rng: &mut StdRng,
        result: &mut ShiftResult,
    ) {
        let template = &self.config.challenges[template_idx];
        let challenge = Challenge::sample(template, cruise, rng);
        let faults = self.faults.sample(rng);
        let (outcome, stats) = run_encounter(
            &challenge,
            cruise,
            &self.policy,
            &self.vehicle,
            perception,
            &faults,
            rng,
        );
        result.encounters += 1;
        if !stats.detected {
            result.undetected_encounters += 1;
        }
        // The paper's Sec. II-B.3 yardstick: how often does the drive
        // *demand* braking significantly harder than 4 m/s²?
        if stats.max_commanded_brake.value() > 4.0 {
            result.hard_brake_demands += 1;
        }
        let involvement = Involvement::ego_with(template.object);
        match outcome {
            EncounterOutcome::Collision { impact_speed } => {
                result
                    .records
                    .push(IncidentRecord::collision(involvement, impact_speed));
            }
            EncounterOutcome::Resolved {
                min_gap,
                closing_at_min,
            } => {
                result.records.push(IncidentRecord::near_miss(
                    involvement,
                    min_gap,
                    closing_at_min,
                ));
            }
        }
        // Induced rear-end conflict behind hard ego braking.
        if stats.max_commanded_brake > self.induced.hard_brake_threshold
            && bernoulli(rng, self.induced.follower_probability)
        {
            let excess =
                stats.max_commanded_brake.value() - self.induced.hard_brake_threshold.value();
            let pair = Involvement::induced(ObjectType::Car, ObjectType::Car);
            if bernoulli(rng, (0.1 * excess).min(0.3)) {
                let impact = uniform(rng, 2.0, 5.0 + 10.0 * excess);
                result.records.push(IncidentRecord::collision(
                    pair,
                    Speed::from_kmh(impact).expect("bounded"),
                ));
            } else {
                result.records.push(IncidentRecord::near_miss(
                    pair,
                    Meters::new(uniform(rng, 0.1, 1.5)).expect("bounded"),
                    Speed::from_kmh(uniform(rng, 5.0, 30.0)).expect("bounded"),
                ));
            }
        }
    }
}

#[derive(Debug, Default)]
struct ShiftResult {
    hours: f64,
    records: Vec<IncidentRecord>,
    encounters: u64,
    hard_brake_demands: u64,
    undetected_encounters: u64,
    speed_time: f64,
    zone_hours: BTreeMap<String, f64>,
    zone_encounters: BTreeMap<String, u64>,
}

/// The outcome of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Name of the policy that drove.
    pub policy_name: String,
    /// Every raw event produced (collisions and closest approaches; the
    /// classification decides which are incidents).
    pub records: Vec<IncidentRecord>,
    /// Total simulated exposure.
    exposure: Hours,
    /// Number of challenges encountered.
    pub encounters: u64,
    /// Encounters that demanded braking harder than 4 m/s².
    pub hard_brake_demands: u64,
    /// Encounters the perception never detected.
    pub undetected_encounters: u64,
    /// Exposure-weighted mean cruise speed, km/h.
    pub mean_cruise_kmh: f64,
    /// Time spent per zone, hours.
    zone_hours: BTreeMap<String, f64>,
    /// Challenges encountered per zone.
    zone_encounters: BTreeMap<String, u64>,
}

impl CampaignResult {
    /// Total simulated exposure.
    pub fn exposure(&self) -> Hours {
        self.exposure
    }

    /// Classifies the raw records into measured incident counts.
    pub fn measured(&self, classification: &IncidentClassification) -> (MeasuredIncidents, usize) {
        MeasuredIncidents::from_records(classification, &self.records, self.exposure)
    }

    /// Rate of hard-braking demands (> 4 m/s²) per operating hour — the
    /// paper's policy-dependence yardstick.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn hard_brake_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.hard_brake_demands as f64, self.exposure)
    }

    /// Rate of challenges encountered per operating hour.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn encounter_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.encounters as f64, self.exposure)
    }

    /// Time spent in a zone, or zero for an unvisited zone.
    pub fn zone_exposure(&self, zone: &str) -> Hours {
        Hours::new(self.zone_hours.get(zone).copied().unwrap_or(0.0))
            .expect("accumulated durations are non-negative")
    }

    /// Observed challenge rate in one zone, or `None` for an unvisited
    /// zone — the empirical counterpart of the exposure model's
    /// context-dependent rates (Sec. II-B.4).
    pub fn zone_encounter_rate(&self, zone: &str) -> Option<Frequency> {
        let hours = self.zone_hours.get(zone).copied()?;
        let count = self.zone_encounters.get(zone).copied().unwrap_or(0);
        Frequency::from_count(count as f64, Hours::new(hours).ok()?).ok()
    }

    /// The zones visited, in name order.
    pub fn zones(&self) -> impl Iterator<Item = &str> {
        self.zone_hours.keys().map(String::as_str)
    }
}

/// Spread statistics over independent campaign replications.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationSummary {
    /// Number of replications run.
    pub replications: u64,
    /// Per-replication encounter rate (events per hour).
    pub encounter_rate: OnlineStats,
    /// Per-replication hard-brake demand rate (events per hour).
    pub hard_brake_rate: OnlineStats,
    /// Per-replication raw record count.
    pub raw_record_count: OnlineStats,
    /// The individual replication results, in seed order.
    pub results: Vec<CampaignResult>,
}

impl fmt::Display for ReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replications: encounters {:.3} ± {:.3}/h, hard brakes {:.3} ± {:.3}/h",
            self.replications,
            self.encounter_rate.mean(),
            self.encounter_rate.std_dev(),
            self.hard_brake_rate.mean(),
            self.hard_brake_rate.std_dev(),
        )
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} over {}: {} encounters, {} hard-brake demands, mean cruise {:.1} km/h",
            self.policy_name,
            self.records.len(),
            self.exposure,
            self.encounters,
            self.hard_brake_demands,
            self.mean_cruise_kmh
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CautiousPolicy, ReactivePolicy};
    use crate::scenario::{mixed_scenario, urban_scenario};

    fn h(x: f64) -> Hours {
        Hours::new(x).unwrap()
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(50.0))
                .seed(11)
                .workers(3)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn result_is_independent_of_worker_count() {
        let run = |workers| {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(50.0))
                .seed(11)
                .workers(workers)
                .run()
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.encounters, four.encounters);
        assert_eq!(one.records.len(), four.records.len());
    }

    #[test]
    fn exposure_accumulates_to_requested_hours() {
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(37.5))
            .seed(1)
            .run()
            .unwrap();
        assert!((result.exposure().value() - 37.5).abs() < 1e-6);
    }

    #[test]
    fn encounter_rate_matches_exposure_model_scale() {
        // Urban: pedestrians ~2/h (8x in school), leads ~1/h, so the
        // encounter rate should land in the low single digits per hour.
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(300.0))
            .seed(2)
            .run()
            .unwrap();
        let rate = result.encounter_rate().unwrap().as_per_hour();
        assert!((1.0..10.0).contains(&rate), "rate={rate}");
    }

    #[test]
    fn cautious_policy_demands_less_hard_braking_than_reactive() {
        let config = mixed_scenario().unwrap();
        let cautious = Campaign::new(config.clone(), CautiousPolicy::default())
            .hours(h(300.0))
            .seed(3)
            .run()
            .unwrap();
        let reactive = Campaign::new(config, ReactivePolicy::default())
            .hours(h(300.0))
            .seed(3)
            .run()
            .unwrap();
        let c = cautious.hard_brake_rate().unwrap().as_per_hour();
        let r = reactive.hard_brake_rate().unwrap().as_per_hour();
        assert!(
            c < r,
            "cautious {c}/h should demand less hard braking than reactive {r}/h"
        );
    }

    #[test]
    fn cautious_policy_collides_less() {
        use qrn_core::incident::IncidentKind;
        let config = mixed_scenario().unwrap();
        let collisions = |result: &CampaignResult| {
            result
                .records
                .iter()
                .filter(|r| matches!(r.kind, IncidentKind::Collision { .. }))
                .count()
        };
        let cautious = Campaign::new(config.clone(), CautiousPolicy::default())
            .hours(h(400.0))
            .seed(4)
            .run()
            .unwrap();
        let reactive = Campaign::new(config, ReactivePolicy::default())
            .hours(h(400.0))
            .seed(4)
            .run()
            .unwrap();
        assert!(
            collisions(&cautious) <= collisions(&reactive),
            "cautious {} vs reactive {}",
            collisions(&cautious),
            collisions(&reactive)
        );
    }

    #[test]
    fn measured_incidents_flow_into_core() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let result = Campaign::new(urban_scenario().unwrap(), ReactivePolicy::default())
            .hours(h(200.0))
            .seed(5)
            .run()
            .unwrap();
        let (measured, _non_incidents) = result.measured(&c);
        assert_eq!(measured.exposure(), result.exposure());
        // raw events are at least as many as classified incidents
        assert!(measured.total() as usize <= result.records.len());
    }

    #[test]
    fn replications_vary_and_summarise() {
        let summary = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(40.0))
            .seed(30)
            .run_replications(5)
            .unwrap();
        assert_eq!(summary.replications, 5);
        assert_eq!(summary.results.len(), 5);
        // Different seeds produce different outcomes...
        assert!(summary.raw_record_count.sample_variance() > 0.0);
        // ...whose spread matches a Poisson-ish scale (std << mean).
        assert!(summary.encounter_rate.std_dev() < summary.encounter_rate.mean());
        // The first replication equals a plain run with the same seed.
        let single = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(40.0))
            .seed(30)
            .run()
            .unwrap();
        assert_eq!(summary.results[0], single);
        assert!(summary.to_string().contains("5 replications"));
    }

    #[test]
    fn zero_replications_is_an_error() {
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(10.0))
            .run_replications(0);
        assert!(err.is_err());
    }

    #[test]
    fn per_zone_exposure_sums_to_total() {
        let result = Campaign::new(mixed_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(100.0))
            .seed(6)
            .run()
            .unwrap();
        let total: f64 = result
            .zones()
            .map(|z| result.zone_exposure(z).value())
            .sum();
        assert!((total - result.exposure().value()).abs() < 1e-6);
        // dwell ratios respected: highway 0.3 vs residential 0.2 of each cycle
        let highway = result.zone_exposure("highway").value();
        let residential = result.zone_exposure("residential").value();
        assert!((highway / residential - 1.5).abs() < 0.05);
    }

    #[test]
    fn zone_encounter_rates_reflect_the_exposure_model() {
        // In the mixed scenario the school zone does not exist but the
        // residential zone has base pedestrian pressure, while the highway
        // suppresses pedestrians (x0.01) but boosts leads, animals and
        // cut-ins. Net: both see encounters, but with different mixes —
        // and the *school* multiplier is testable in the urban scenario.
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(400.0))
            .seed(7)
            .run()
            .unwrap();
        let school = result.zone_encounter_rate("school").unwrap().as_per_hour();
        let residential = result
            .zone_encounter_rate("residential")
            .unwrap()
            .as_per_hour();
        // school zone: pedestrians at 8x -> encounter rate several times higher
        assert!(
            school > 3.0 * residential,
            "school {school}/h vs residential {residential}/h"
        );
        assert_eq!(result.zone_encounter_rate("nonexistent"), None);
    }

    #[test]
    fn zero_hours_is_an_error() {
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(Hours::ZERO)
            .run();
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default()).workers(0);
    }
}
