//! Monte-Carlo campaigns: simulated fleet hours producing incident records
//! and campaign statistics, in parallel and reproducibly.
//!
//! # Execution model
//!
//! The exposure is split into fixed-length *shifts* (at most 10 h each),
//! every shift simulated on its own RNG substream. Shifts are grouped into
//! fixed-size *blocks* of consecutive shift indices, and worker threads
//! claim blocks from a shared atomic counter — a work-stealing queue with
//! no per-worker striping, so a worker that draws cheap shifts simply
//! claims more blocks. Each block folds its shifts into a
//! [`ShiftAccumulator`] partial; after the pool drains, the partials are
//! merged **in block order**. Because the block partition depends only on
//! the exposure (never on the worker count or scheduling), the merged
//! result is bit-identical for any number of workers.
//!
//! Two accumulators ship: [`RecordingAccumulator`] keeps every raw
//! [`IncidentRecord`] (what [`Campaign::run`] returns), and
//! [`CountingAccumulator`] classifies records on the fly into
//! [`MeasuredIncidents`] so memory stays O(incident types) no matter how
//! many hours are simulated ([`Campaign::run_counting`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use qrn_core::classification::IncidentClassification;
use qrn_core::incident::{IncidentRecord, IncidentTypeId};
use qrn_core::object::{Involvement, ObjectType};
use qrn_core::verification::MeasuredIncidents;
use qrn_stats::evidence::EvidenceLedger;
use qrn_stats::poisson::WeightedCount;
use qrn_stats::rng::{bernoulli, exponential, uniform, Substreams};
use qrn_stats::summary::OnlineStats;
use qrn_units::{Acceleration, Frequency, Hours, Meters, Speed, UnitError};

use crate::encounter::{run_encounter, Challenge, EncounterOutcome};
use crate::faults::FaultPlan;
use crate::perception::PerceptionParams;
use crate::policy::TacticalPolicy;
use crate::scenario::WorldConfig;
use crate::splitting::{
    run_encounter_splitting, SplittingAccumulator, SplittingConfig, SplittingResult, SplittingShift,
};
use crate::vehicle::VehicleParams;

/// Shifts per work-queue block. Small enough that even a short campaign
/// yields several blocks to steal, large enough that the atomic claim and
/// the per-block partial are amortised over real work.
const SHIFTS_PER_BLOCK: u64 = 4;

/// Parameters of the induced-incident model: hard ego braking can force a
/// follower into a rear-end conflict (the lower half of the paper's
/// Fig. 4: "ego vehicle a causing factor in an incident involving other
/// road users").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InducedParams {
    /// Probability that a follower is present when the ego brakes hard.
    pub follower_probability: f64,
    /// Commanded deceleration above which a follower conflict is possible.
    pub hard_brake_threshold: Acceleration,
}

impl Default for InducedParams {
    fn default() -> Self {
        InducedParams {
            follower_probability: 0.3,
            hard_brake_threshold: Acceleration::new(6.0).expect("static value"),
        }
    }
}

/// A configured Monte-Carlo campaign.
pub struct Campaign<P> {
    config: WorldConfig,
    policy: P,
    vehicle: VehicleParams,
    perception: PerceptionParams,
    faults: FaultPlan,
    induced: InducedParams,
    hours: Hours,
    seed: u64,
    workers: usize,
}

impl<P: TacticalPolicy> Campaign<P> {
    /// Creates a campaign with default vehicle, perception, no faults,
    /// 100 h exposure, seed 0 and one worker per available CPU.
    pub fn new(config: WorldConfig, policy: P) -> Self {
        Campaign {
            config,
            policy,
            vehicle: VehicleParams::typical(),
            perception: PerceptionParams::typical(),
            faults: FaultPlan::none(),
            induced: InducedParams::default(),
            hours: Hours::new(100.0).expect("static value"),
            seed: 0,
            workers: default_workers(),
        }
    }

    /// Sets the total simulated exposure.
    pub fn hours(mut self, hours: Hours) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads. The worker count never affects
    /// the simulated outcome, only the wall-clock time; zero workers is
    /// reported as an error by [`Campaign::run`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the vehicle parameters.
    pub fn vehicle(mut self, vehicle: VehicleParams) -> Self {
        self.vehicle = vehicle;
        self
    }

    /// Sets the perception parameters.
    pub fn perception(mut self, perception: PerceptionParams) -> Self {
        self.perception = perception;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the induced-incident parameters.
    pub fn induced(mut self, induced: InducedParams) -> Self {
        self.induced = induced;
        self
    }

    /// Runs the campaign, keeping every raw record.
    ///
    /// The same `(config, policy, seed, hours)` always produces the same
    /// result, bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign or zero workers.
    pub fn run(&self) -> Result<CampaignResult, UnitError> {
        self.run_seeded(self.seed)
    }

    fn run_seeded(&self, seed: u64) -> Result<CampaignResult, UnitError> {
        let zones = self.config.zones.len();
        let make = || RecordingAccumulator::new(zones);
        let (mut partials, throughput) = self.execute_crude(&[seed], &make)?;
        let acc = partials.pop().expect("one accumulator per seed");
        self.finish_recording(acc, Some(throughput))
    }

    /// Runs the campaign in streaming mode: every shift's records are
    /// classified and folded into [`MeasuredIncidents`] immediately, so
    /// memory stays bounded by the number of incident *types* — a
    /// million-hour campaign costs no more memory than a ten-hour one.
    ///
    /// The counts equal classifying [`Campaign::run`]'s records after the
    /// fact, and are bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign or zero workers.
    pub fn run_counting(
        &self,
        classification: &IncidentClassification,
    ) -> Result<CountingResult, UnitError> {
        let zones = self.config.zones.len();
        let make = || CountingAccumulator::new(classification, zones);
        let (mut partials, throughput) = self.execute_crude(&[self.seed], &make)?;
        let acc = partials.pop().expect("one accumulator per seed");
        Ok(self.finish_counting(acc, Some(throughput)))
    }

    /// Runs `n` independent replications (seeds `seed, seed+1, …`) and
    /// summarises the replication-to-replication spread of the headline
    /// rates — the error bars for any campaign-derived estimate.
    ///
    /// All replications share one worker pool: their blocks go into a
    /// single work queue, so the pool stays saturated across replication
    /// boundaries instead of draining `n` times. Each replication's result
    /// is identical to a plain [`Campaign::run`] with that seed.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign, zero workers, or
    /// `n == 0`.
    pub fn run_replications(&self, n: u64) -> Result<ReplicationSummary, UnitError> {
        if n == 0 {
            return Err(UnitError::OutOfRange {
                quantity: "replication count",
                value: 0.0,
                min: 1.0,
                max: f64::MAX,
            });
        }
        let seeds: Vec<u64> = (0..n).map(|i| self.seed + i).collect();
        let zones = self.config.zones.len();
        let make = || RecordingAccumulator::new(zones);
        let (partials, throughput) = self.execute_crude(&seeds, &make)?;

        let mut encounter_rate = OnlineStats::new();
        let mut hard_brake_rate = OnlineStats::new();
        let mut raw_record_count = OnlineStats::new();
        let mut results = Vec::with_capacity(n as usize);
        for acc in partials {
            // The pool's throughput covers all n replications at once; a
            // per-replication share of wall-clock time is not measurable,
            // so individual results carry no throughput here — the
            // pool-level figure lives on the summary.
            let result = self.finish_recording(acc, None)?;
            encounter_rate.push(result.encounter_rate()?.as_per_hour());
            hard_brake_rate.push(result.hard_brake_rate()?.as_per_hour());
            raw_record_count.push(result.records.len() as f64);
            results.push(result);
        }
        Ok(ReplicationSummary {
            replications: n,
            encounter_rate,
            hard_brake_rate,
            raw_record_count,
            results,
            throughput,
        })
    }

    /// The streaming counterpart of [`Campaign::run_replications`]: `n`
    /// independent replications (seeds `seed, seed+1, …`) whose records
    /// are classified and folded into [`MeasuredIncidents`] on the fly, so
    /// memory stays O(replications × incident types) — no raw records are
    /// ever kept, which is what makes replicated million-hour campaigns
    /// feasible.
    ///
    /// Each replication's counts equal classifying the corresponding
    /// [`Campaign::run`] records after the fact; the per-type spread
    /// statistics cover every leaf of the classification, including types
    /// that never occurred (their count contributes a zero, which is
    /// exactly the information "this replication saw none").
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign, zero workers, or
    /// `n == 0`.
    pub fn run_replications_counting(
        &self,
        classification: &IncidentClassification,
        n: u64,
    ) -> Result<CountingReplicationSummary, UnitError> {
        if n == 0 {
            return Err(UnitError::OutOfRange {
                quantity: "replication count",
                value: 0.0,
                min: 1.0,
                max: f64::MAX,
            });
        }
        let seeds: Vec<u64> = (0..n).map(|i| self.seed + i).collect();
        let zones = self.config.zones.len();
        let make = || CountingAccumulator::new(classification, zones);
        let (partials, throughput) = self.execute_crude(&seeds, &make)?;

        let mut encounter_rate = OnlineStats::new();
        let mut hard_brake_rate = OnlineStats::new();
        let mut incident_count = OnlineStats::new();
        let mut incident_rates: BTreeMap<IncidentTypeId, OnlineStats> = classification
            .leaves()
            .iter()
            .map(|leaf| (leaf.id().clone(), OnlineStats::new()))
            .collect();
        let mut results = Vec::with_capacity(n as usize);
        for acc in partials {
            let result = self.finish_counting(acc, None);
            encounter_rate.push(result.encounter_rate()?.as_per_hour());
            hard_brake_rate.push(result.hard_brake_rate()?.as_per_hour());
            incident_count.push(result.measured.total() as f64);
            for (id, stats) in &mut incident_rates {
                let rate = Frequency::from_count(result.measured.count(id) as f64, self.hours)?;
                stats.push(rate.as_per_hour());
            }
            results.push(result);
        }
        Ok(CountingReplicationSummary {
            replications: n,
            encounter_rate,
            hard_brake_rate,
            incident_count,
            incident_rates,
            results,
            throughput,
        })
    }

    /// [`execute`](Self::execute) specialised to the crude
    /// ([`ShiftOutcome`]-producing) shift simulation.
    fn execute_crude<A, F>(
        &self,
        seeds: &[u64],
        make: &F,
    ) -> Result<(Vec<A>, Throughput), UnitError>
    where
        A: ShiftAccumulator<Shift = ShiftOutcome>,
        F: Fn() -> A + Sync,
    {
        let zones = self.config.zones.len();
        self.execute(
            seeds,
            make,
            &move || ShiftOutcome::empty(zones),
            &|hours, rng, out| self.run_shift(hours, rng, out),
        )
    }

    /// The work-stealing engine: simulates every `(seed, block)` task on a
    /// shared pool and returns one order-merged accumulator per seed, in
    /// seed order, plus the pool's throughput statistics.
    ///
    /// `make_shift` creates one scratch shift buffer per worker thread;
    /// `run_shift` must fully overwrite it (reset + refill), so the inner
    /// loop reuses the buffers instead of allocating per shift.
    fn execute<A, F, MS, RS>(
        &self,
        seeds: &[u64],
        make: &F,
        make_shift: &MS,
        run_shift: &RS,
    ) -> Result<(Vec<A>, Throughput), UnitError>
    where
        A: ShiftAccumulator,
        F: Fn() -> A + Sync,
        MS: Fn() -> A::Shift + Sync,
        RS: Fn(f64, &mut StdRng, &mut A::Shift) + Sync,
    {
        if self.workers == 0 {
            return Err(UnitError::OutOfRange {
                quantity: "campaign workers",
                value: 0.0,
                min: 1.0,
                max: f64::MAX,
            });
        }
        if self.hours.value() <= 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "campaign exposure",
                value: self.hours.value(),
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            });
        }
        let hours = self.hours.value();
        // Fixed-size shifts and a fixed block partition: the task geometry
        // depends only on the exposure, so any worker count reproduces the
        // same partials and the same merge order.
        let shift_hours = 10.0f64.min(hours);
        let shifts = (hours / shift_hours).ceil() as u64;
        let blocks = shifts.div_ceil(SHIFTS_PER_BLOCK);
        let total_tasks = seeds.len() as u64 * blocks;
        let substreams: Vec<Substreams> = seeds.iter().map(|&s| Substreams::new(s)).collect();

        let queue = AtomicU64::new(0);
        let threads = self.workers.min(total_tasks as usize);
        let wall = Instant::now();
        let worker_outputs: Vec<(Vec<(u64, A)>, WorkerThroughput)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        let mut stats = WorkerThroughput::default();
                        // One scratch shift buffer per worker, recycled
                        // across every shift this worker claims.
                        let mut scratch = make_shift();
                        loop {
                            let task = queue.fetch_add(1, Ordering::Relaxed);
                            if task >= total_tasks {
                                break;
                            }
                            let started = Instant::now();
                            let rep = (task / blocks) as usize;
                            let block = task % blocks;
                            let first = block * SHIFTS_PER_BLOCK;
                            let last = (first + SHIFTS_PER_BLOCK).min(shifts);
                            let mut acc = make();
                            for shift in first..last {
                                let remaining = hours - shift as f64 * shift_hours;
                                let this_shift = shift_hours.min(remaining);
                                let mut rng = substreams[rep].stream(shift);
                                run_shift(this_shift, &mut rng, &mut scratch);
                                acc.absorb(&mut scratch);
                                stats.sim_hours += this_shift;
                            }
                            stats.shifts += last - first;
                            stats.busy_seconds += started.elapsed().as_secs_f64();
                            local.push((task, acc));
                        }
                        (local, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shift worker panicked"))
                .collect()
        });
        let wall_seconds = wall.elapsed().as_secs_f64();

        let mut per_worker = Vec::with_capacity(worker_outputs.len());
        let mut partials: Vec<(u64, A)> = Vec::with_capacity(total_tasks as usize);
        for (local, stats) in worker_outputs {
            partials.extend(local);
            per_worker.push(stats);
        }
        // The reduce: strictly ascending task order restores the sequential
        // grouping regardless of which worker computed which block.
        partials.sort_unstable_by_key(|(task, _)| *task);
        let mut merged: Vec<A> = Vec::with_capacity(seeds.len());
        for (task, acc) in partials {
            if task % blocks == 0 {
                merged.push(acc);
            } else {
                merged
                    .last_mut()
                    .expect("block 0 of each seed precedes its later blocks")
                    .merge(acc);
            }
        }

        let sim_hours = hours * seeds.len() as f64;
        let total_shifts = shifts * seeds.len() as u64;
        let throughput = Throughput {
            workers: threads,
            wall_seconds,
            shifts: total_shifts,
            sim_hours,
            shifts_per_second: total_shifts as f64 / wall_seconds.max(f64::MIN_POSITIVE),
            sim_hours_per_second: sim_hours / wall_seconds.max(f64::MIN_POSITIVE),
            per_worker,
        };
        Ok((merged, throughput))
    }

    fn finish_recording(
        &self,
        acc: RecordingAccumulator,
        throughput: Option<Throughput>,
    ) -> Result<CampaignResult, UnitError> {
        let RecordingAccumulator { totals, records } = acc;
        let (zone_hours, zone_encounters) = totals.named_zones(&self.config);
        Ok(CampaignResult {
            policy_name: self.policy.name().to_string(),
            records,
            exposure: Hours::new(totals.hours)?,
            encounters: totals.encounters,
            hard_brake_demands: totals.hard_brake_demands,
            undetected_encounters: totals.undetected_encounters,
            mean_cruise_kmh: totals.mean_cruise_kmh(),
            encounter_seconds: totals.encounter_seconds,
            zone_hours,
            zone_encounters,
            throughput,
        })
    }

    fn finish_counting(
        &self,
        acc: CountingAccumulator,
        throughput: Option<Throughput>,
    ) -> CountingResult {
        let CountingAccumulator {
            classification,
            totals,
            measured,
            non_incidents,
            records_per_shift,
            zone_counts,
            zone_unclassified,
        } = acc;
        // The campaign's unified evidence: the global row carries the exact
        // integer counts and the exposure as accumulated (so downstream
        // verification reproduces the `measured` numbers bit-for-bit);
        // visited zones contribute refinement rows pre-seeded with every
        // leaf of the classification.
        let mut evidence = EvidenceLedger::new();
        evidence.add_exposure(None, measured.exposure().value());
        for leaf in classification.leaves() {
            evidence.add_count(
                None,
                leaf.id().as_str(),
                &WeightedCount::unit(measured.count(leaf.id())),
            );
        }
        evidence.add_unclassified_count(None, &WeightedCount::unit(non_incidents));
        for (idx, zone) in self.config.zones.iter().enumerate() {
            if totals.zone_hours[idx] > 0.0 {
                evidence.add_exposure(Some(&zone.name), totals.zone_hours[idx]);
                for leaf in classification.leaves() {
                    let n = zone_counts[idx].get(leaf.id()).copied().unwrap_or(0);
                    evidence.add_count(
                        Some(&zone.name),
                        leaf.id().as_str(),
                        &WeightedCount::unit(n),
                    );
                }
                evidence.add_unclassified_count(
                    Some(&zone.name),
                    &WeightedCount::unit(zone_unclassified[idx]),
                );
            }
        }
        let (zone_hours, zone_encounters) = totals.named_zones(&self.config);
        CountingResult {
            policy_name: self.policy.name().to_string(),
            measured,
            non_incidents,
            records_per_shift,
            evidence,
            encounters: totals.encounters,
            hard_brake_demands: totals.hard_brake_demands,
            undetected_encounters: totals.undetected_encounters,
            mean_cruise_kmh: totals.mean_cruise_kmh(),
            encounter_seconds: totals.encounter_seconds,
            zone_hours,
            zone_encounters,
            throughput,
        }
    }

    /// Runs the campaign as a multilevel-splitting rare-event estimation
    /// (see [`crate::splitting`]): encounters whose severity crosses the
    /// configured levels are cloned with likelihood weights, and the
    /// weighted masses are classified per incident type on the fly.
    ///
    /// Shares the exposure partition, substream layout and block-ordered
    /// merge with the crude engine, so the result is bit-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-hour campaign or zero workers.
    pub fn run_splitting(
        &self,
        classification: &IncidentClassification,
        config: &SplittingConfig,
    ) -> Result<SplittingResult, UnitError> {
        let zones = self.config.zones.len();
        let make = || SplittingAccumulator::new(classification, zones);
        let run = |hours: f64, rng: &mut StdRng, out: &mut SplittingShift| {
            self.run_splitting_shift(hours, rng, config, out);
        };
        let (mut partials, throughput) = self.execute(
            &[self.seed],
            &make,
            &move || SplittingShift::empty(zones),
            &run,
        )?;
        let acc = partials.pop().expect("one accumulator per seed");
        let zone_names: Vec<&str> = self.config.zones.iter().map(|z| z.name.as_str()).collect();
        acc.finish(self.policy.name(), config, &zone_names, Some(throughput))
    }

    /// The shared zone walk: advances through the zone cycle, draws
    /// challenge arrivals, and hands every cruise segment and encounter to
    /// the callbacks. Both engines (crude and splitting) drive their shifts
    /// through this one function, so the exposure process — including its
    /// RNG draw order — is identical by construction.
    fn walk_shift<S>(
        &self,
        hours: f64,
        rng: &mut StdRng,
        out: &mut S,
        mut on_segment: impl FnMut(&mut S, usize, f64, Speed),
        mut on_encounter: impl FnMut(&mut S, usize, usize, Speed, &PerceptionParams, &mut StdRng),
    ) {
        let mut t = 0.0; // hours into the shift
        let mut zone_idx = 0;
        let mut zone_left = self.config.zones[0].dwell.value();
        while t < hours {
            let zone = &self.config.zones[zone_idx];
            // Weather in the zone degrades the detection range; the policy
            // plans its cruise speed against the degraded range (Sec. IV:
            // the ADS adapts driving style to sensor performance).
            let zone_perception = self.perception.with_range_factor(zone.perception_factor);
            let cruise = self.policy.cruise_speed(
                zone.speed_limit,
                &zone_perception,
                &self.vehicle,
                self.vehicle.max_brake,
            );
            // Earliest challenge arrival across factors, in hours.
            let mut next: Option<(f64, usize)> = None;
            for (i, template) in self.config.challenges.iter().enumerate() {
                let rate = self
                    .config
                    .exposure
                    .rate(&template.factor, &zone.context)
                    .expect("scenario factors all have base rates")
                    .as_per_hour();
                if rate <= 0.0 {
                    continue;
                }
                let dt = exponential(rng, rate);
                if next.is_none_or(|(best, _)| dt < best) {
                    next = Some((dt, i));
                }
            }
            let until_zone_end = zone_left.min(hours - t);
            match next {
                Some((dt, template_idx)) if dt < until_zone_end => {
                    t += dt;
                    zone_left -= dt;
                    on_segment(out, zone_idx, dt, cruise);
                    on_encounter(out, zone_idx, template_idx, cruise, &zone_perception, rng);
                }
                _ => {
                    t += until_zone_end;
                    zone_left -= until_zone_end;
                    on_segment(out, zone_idx, until_zone_end, cruise);
                }
            }
            if zone_left <= 1e-12 {
                zone_idx = (zone_idx + 1) % self.config.zones.len();
                zone_left = self.config.zones[zone_idx].dwell.value();
            }
        }
    }

    /// Simulates one shift of `hours` driving into the scratch buffer.
    fn run_shift(&self, hours: f64, rng: &mut StdRng, result: &mut ShiftOutcome) {
        result.reset(hours);
        self.walk_shift(
            hours,
            rng,
            result,
            |out, zone_idx, dt, cruise| {
                out.speed_time += cruise.as_kmh() * dt;
                out.zone_hours[zone_idx] += dt;
            },
            |out, zone_idx, template_idx, cruise, zone_perception, rng| {
                out.zone_encounters[zone_idx] += 1;
                self.run_one_encounter(zone_idx, template_idx, cruise, zone_perception, rng, out);
            },
        );
    }

    /// Simulates one splitting shift into the scratch buffer: the same
    /// exposure walk, but every encounter becomes a splitting cascade
    /// seeded by one draw from the shift stream.
    fn run_splitting_shift(
        &self,
        hours: f64,
        rng: &mut StdRng,
        config: &SplittingConfig,
        out: &mut SplittingShift,
    ) {
        out.reset(hours);
        self.walk_shift(
            hours,
            rng,
            out,
            |out, zone_idx, dt, _cruise| {
                out.zone_hours[zone_idx] += dt;
            },
            |out, zone_idx, template_idx, cruise, zone_perception, rng| {
                let template = &self.config.challenges[template_idx];
                let challenge = Challenge::sample(template, cruise, rng);
                let faults = self.faults.sample(rng);
                // One seed per encounter: the cascade below is a pure
                // function of it, whatever the splitting does.
                let encounter_seed = rng.next_u64();
                run_encounter_splitting(
                    &challenge,
                    cruise,
                    &self.policy,
                    &self.vehicle,
                    zone_perception,
                    &faults,
                    &self.induced,
                    config,
                    encounter_seed,
                    Involvement::ego_with(template.object),
                    zone_idx,
                    out,
                );
            },
        );
    }

    fn run_one_encounter(
        &self,
        zone_idx: usize,
        template_idx: usize,
        cruise: Speed,
        perception: &PerceptionParams,
        rng: &mut StdRng,
        result: &mut ShiftOutcome,
    ) {
        let template = &self.config.challenges[template_idx];
        let challenge = Challenge::sample(template, cruise, rng);
        let faults = self.faults.sample(rng);
        let (outcome, stats) = run_encounter(
            &challenge,
            cruise,
            &self.policy,
            &self.vehicle,
            perception,
            &faults,
            rng,
        );
        result.encounters += 1;
        result.encounter_seconds += stats.duration_s;
        if !stats.detected {
            result.undetected_encounters += 1;
        }
        // The paper's Sec. II-B.3 yardstick: how often does the drive
        // *demand* braking significantly harder than 4 m/s²?
        if stats.max_commanded_brake.value() > 4.0 {
            result.hard_brake_demands += 1;
        }
        let involvement = Involvement::ego_with(template.object);
        match outcome {
            EncounterOutcome::Collision { impact_speed } => {
                result
                    .records
                    .push(IncidentRecord::collision(involvement, impact_speed));
            }
            EncounterOutcome::Resolved {
                min_gap,
                closing_at_min,
            } => {
                result.records.push(IncidentRecord::near_miss(
                    involvement,
                    min_gap,
                    closing_at_min,
                ));
            }
        }
        result.record_zones.push(zone_idx);
        // Induced rear-end conflict behind hard ego braking.
        if let Some(record) = sample_induced(stats.max_commanded_brake, &self.induced, rng) {
            result.records.push(record);
            result.record_zones.push(zone_idx);
        }
    }
}

/// Rolls the induced-incident model once: does the ego's hardest braking
/// force a follower into a rear-end conflict, and how does it end? Draws
/// from `rng` only as far as the short-circuit evaluation gets, exactly as
/// the inline code it replaces, so crude campaigns stay bit-identical.
pub(crate) fn sample_induced<R: rand::Rng + ?Sized>(
    max_commanded_brake: Acceleration,
    induced: &InducedParams,
    rng: &mut R,
) -> Option<IncidentRecord> {
    if !(max_commanded_brake > induced.hard_brake_threshold
        && bernoulli(rng, induced.follower_probability))
    {
        return None;
    }
    let excess = max_commanded_brake.value() - induced.hard_brake_threshold.value();
    let pair = Involvement::induced(ObjectType::Car, ObjectType::Car);
    Some(if bernoulli(rng, (0.1 * excess).min(0.3)) {
        let impact = uniform(rng, 2.0, 5.0 + 10.0 * excess);
        IncidentRecord::collision(pair, Speed::from_kmh(impact).expect("bounded"))
    } else {
        IncidentRecord::near_miss(
            pair,
            Meters::new(uniform(rng, 0.1, 1.5)).expect("bounded"),
            Speed::from_kmh(uniform(rng, 5.0, 30.0)).expect("bounded"),
        )
    })
}

/// One worker count per available CPU, with a fallback of one.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Everything one simulated shift produced. Zone tallies are keyed by the
/// zone's index in [`WorldConfig::zones`]; names are resolved once at the
/// end of the campaign instead of being cloned per shift.
#[derive(Debug)]
pub struct ShiftOutcome {
    /// Simulated duration of this shift.
    pub hours: f64,
    /// Raw events, in simulation order.
    pub records: Vec<IncidentRecord>,
    /// Zone index each record was produced in, parallel to `records` —
    /// what lets evidence consumers attribute incidents to ODD contexts.
    pub record_zones: Vec<usize>,
    /// Challenges encountered.
    pub encounters: u64,
    /// Encounters demanding braking harder than 4 m/s².
    pub hard_brake_demands: u64,
    /// Encounters the perception never detected.
    pub undetected_encounters: u64,
    /// Integral of cruise speed over time, km/h·h.
    pub speed_time: f64,
    /// Integrated encounter-simulation time, seconds of 10 ms stepping —
    /// the deterministic compute-cost proxy used for matched-compute
    /// comparisons against splitting campaigns.
    pub encounter_seconds: f64,
    /// Time spent per zone index, hours.
    pub zone_hours: Vec<f64>,
    /// Challenges encountered per zone index.
    pub zone_encounters: Vec<u64>,
}

impl ShiftOutcome {
    /// An empty outcome buffer for a world with `zones` zones. The engine
    /// creates one per worker and recycles it across every shift the
    /// worker simulates ([`reset`](ShiftOutcome::reset) + refill).
    pub fn empty(zones: usize) -> Self {
        ShiftOutcome {
            hours: 0.0,
            records: Vec::new(),
            record_zones: Vec::new(),
            encounters: 0,
            hard_brake_demands: 0,
            undetected_encounters: 0,
            speed_time: 0.0,
            encounter_seconds: 0.0,
            zone_hours: vec![0.0; zones],
            zone_encounters: vec![0; zones],
        }
    }

    /// Clears the buffer for the next shift, keeping allocations.
    pub fn reset(&mut self, hours: f64) {
        self.hours = hours;
        self.records.clear();
        self.record_zones.clear();
        self.encounters = 0;
        self.hard_brake_demands = 0;
        self.undetected_encounters = 0;
        self.speed_time = 0.0;
        self.encounter_seconds = 0.0;
        for h in &mut self.zone_hours {
            *h = 0.0;
        }
        for n in &mut self.zone_encounters {
            *n = 0;
        }
    }
}

/// A mergeable reduction of simulated shifts.
///
/// The engine folds each shift into a block-local partial with
/// [`absorb`](ShiftAccumulator::absorb), then combines partials with
/// [`merge`](ShiftAccumulator::merge) in ascending block order. `merge`
/// must equal absorbing the later partial's shifts directly — i.e. be the
/// associative extension of `absorb` — which is what makes the campaign
/// outcome independent of how blocks were scheduled across workers.
///
/// `absorb` receives the shift by `&mut` because the engine reuses one
/// scratch [`Shift`](ShiftAccumulator::Shift) buffer per worker thread:
/// the accumulator may drain it (move records out), and the engine resets
/// it before the next shift — the hot loop allocates nothing once the
/// buffers have warmed up.
pub trait ShiftAccumulator: Send {
    /// What one simulated shift produces for this accumulator.
    type Shift: Send;
    /// Folds one shift, in shift order within the block. May drain the
    /// shift's buffers; the engine resets them before reuse.
    fn absorb(&mut self, shift: &mut Self::Shift);
    /// Appends a partial that covers strictly later shifts.
    fn merge(&mut self, later: Self);
}

/// Scalar tallies shared by every accumulator.
#[derive(Debug, Clone, Default)]
struct CampaignTotals {
    hours: f64,
    encounters: u64,
    hard_brake_demands: u64,
    undetected_encounters: u64,
    speed_time: f64,
    encounter_seconds: f64,
    zone_hours: Vec<f64>,
    zone_encounters: Vec<u64>,
}

impl CampaignTotals {
    fn new(zones: usize) -> Self {
        CampaignTotals {
            zone_hours: vec![0.0; zones],
            zone_encounters: vec![0; zones],
            ..CampaignTotals::default()
        }
    }

    fn absorb(&mut self, shift: &ShiftOutcome) {
        self.hours += shift.hours;
        self.encounters += shift.encounters;
        self.hard_brake_demands += shift.hard_brake_demands;
        self.undetected_encounters += shift.undetected_encounters;
        self.speed_time += shift.speed_time;
        self.encounter_seconds += shift.encounter_seconds;
        for (sum, h) in self.zone_hours.iter_mut().zip(&shift.zone_hours) {
            *sum += h;
        }
        for (sum, n) in self.zone_encounters.iter_mut().zip(&shift.zone_encounters) {
            *sum += n;
        }
    }

    fn merge(&mut self, later: &CampaignTotals) {
        self.hours += later.hours;
        self.encounters += later.encounters;
        self.hard_brake_demands += later.hard_brake_demands;
        self.undetected_encounters += later.undetected_encounters;
        self.speed_time += later.speed_time;
        self.encounter_seconds += later.encounter_seconds;
        for (sum, h) in self.zone_hours.iter_mut().zip(&later.zone_hours) {
            *sum += h;
        }
        for (sum, n) in self.zone_encounters.iter_mut().zip(&later.zone_encounters) {
            *sum += n;
        }
    }

    fn mean_cruise_kmh(&self) -> f64 {
        if self.hours > 0.0 {
            self.speed_time / self.hours
        } else {
            0.0
        }
    }

    /// Resolves zone-index tallies into name-keyed maps, keeping only
    /// zones that were actually visited (matching the observable behaviour
    /// of the per-shift string maps this replaces).
    fn named_zones(&self, config: &WorldConfig) -> (BTreeMap<String, f64>, BTreeMap<String, u64>) {
        let mut hours = BTreeMap::new();
        let mut encounters = BTreeMap::new();
        for (zone, (&h, &n)) in config
            .zones
            .iter()
            .zip(self.zone_hours.iter().zip(&self.zone_encounters))
        {
            if h > 0.0 {
                *hours.entry(zone.name.clone()).or_insert(0.0) += h;
            }
            if n > 0 {
                *encounters.entry(zone.name.clone()).or_insert(0) += n;
            }
        }
        (hours, encounters)
    }
}

/// Accumulator keeping every raw record — the exact, replayable campaign
/// outcome. Memory grows with the record count.
#[derive(Debug)]
pub struct RecordingAccumulator {
    totals: CampaignTotals,
    records: Vec<IncidentRecord>,
}

impl RecordingAccumulator {
    /// An empty partial for a world with `zones` zones.
    pub fn new(zones: usize) -> Self {
        RecordingAccumulator {
            totals: CampaignTotals::new(zones),
            records: Vec::new(),
        }
    }
}

impl ShiftAccumulator for RecordingAccumulator {
    type Shift = ShiftOutcome;

    fn absorb(&mut self, shift: &mut ShiftOutcome) {
        self.totals.absorb(shift);
        self.records.append(&mut shift.records);
    }

    fn merge(&mut self, later: Self) {
        self.totals.merge(&later.totals);
        self.records.extend(later.records);
    }
}

/// Accumulator classifying records as they are produced, folding them into
/// [`MeasuredIncidents`] counts and an [`OnlineStats`] over per-shift
/// record counts. Memory is O(incident types), independent of exposure.
#[derive(Debug)]
pub struct CountingAccumulator<'c> {
    classification: &'c IncidentClassification,
    totals: CampaignTotals,
    measured: MeasuredIncidents,
    non_incidents: u64,
    records_per_shift: OnlineStats,
    /// Classified incident counts per zone index — the refinement rows of
    /// the campaign's [`EvidenceLedger`].
    zone_counts: Vec<BTreeMap<IncidentTypeId, u64>>,
    /// Unclassified record counts per zone index.
    zone_unclassified: Vec<u64>,
}

impl<'c> CountingAccumulator<'c> {
    /// An empty partial classifying with `classification`.
    pub fn new(classification: &'c IncidentClassification, zones: usize) -> Self {
        CountingAccumulator {
            classification,
            totals: CampaignTotals::new(zones),
            measured: MeasuredIncidents::empty(),
            non_incidents: 0,
            records_per_shift: OnlineStats::new(),
            zone_counts: vec![BTreeMap::new(); zones],
            zone_unclassified: vec![0; zones],
        }
    }
}

impl ShiftAccumulator for CountingAccumulator<'_> {
    type Shift = ShiftOutcome;

    fn absorb(&mut self, shift: &mut ShiftOutcome) {
        self.totals.absorb(shift);
        self.measured
            .add_exposure(Hours::new(shift.hours).expect("shift durations are positive"));
        self.records_per_shift.push(shift.records.len() as f64);
        for (record, &zone) in shift.records.iter().zip(&shift.record_zones) {
            match self.classification.classify(record) {
                Some(leaf) => {
                    self.measured.tally(leaf.id());
                    *self.zone_counts[zone].entry(leaf.id().clone()).or_insert(0) += 1;
                }
                None => {
                    self.non_incidents += 1;
                    self.zone_unclassified[zone] += 1;
                }
            }
        }
    }

    fn merge(&mut self, later: Self) {
        self.totals.merge(&later.totals);
        self.measured.merge(&later.measured);
        self.non_incidents += later.non_incidents;
        self.records_per_shift.merge(&later.records_per_shift);
        for (sum, zone) in self.zone_counts.iter_mut().zip(&later.zone_counts) {
            for (id, n) in zone {
                *sum.entry(id.clone()).or_insert(0) += n;
            }
        }
        for (sum, n) in self
            .zone_unclassified
            .iter_mut()
            .zip(&later.zone_unclassified)
        {
            *sum += n;
        }
    }
}

/// Wall-clock statistics of one engine run. Never part of result equality
/// or determinism guarantees — two identical campaigns report different
/// throughput.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Throughput {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Wall-clock duration of the parallel section, seconds.
    pub wall_seconds: f64,
    /// Shifts simulated (across all replications).
    pub shifts: u64,
    /// Hours simulated (across all replications).
    pub sim_hours: f64,
    /// Shifts completed per wall-clock second.
    pub shifts_per_second: f64,
    /// Simulated hours per wall-clock second — the headline speed.
    pub sim_hours_per_second: f64,
    /// Per-worker tallies, in spawn order.
    pub per_worker: Vec<WorkerThroughput>,
}

/// What one worker thread contributed.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct WorkerThroughput {
    /// Shifts this worker claimed and simulated.
    pub shifts: u64,
    /// Simulated hours this worker produced.
    pub sim_hours: f64,
    /// Time this worker spent simulating, seconds.
    pub busy_seconds: f64,
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shifts ({:.0} sim-h) in {:.2} s on {} workers: {:.0} sim-h/s",
            self.shifts, self.sim_hours, self.wall_seconds, self.workers, self.sim_hours_per_second
        )
    }
}

/// The outcome of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Name of the policy that drove.
    pub policy_name: String,
    /// Every raw event produced (collisions and closest approaches; the
    /// classification decides which are incidents).
    pub records: Vec<IncidentRecord>,
    /// Total simulated exposure.
    exposure: Hours,
    /// Number of challenges encountered.
    pub encounters: u64,
    /// Encounters that demanded braking harder than 4 m/s².
    pub hard_brake_demands: u64,
    /// Encounters the perception never detected.
    pub undetected_encounters: u64,
    /// Exposure-weighted mean cruise speed, km/h.
    pub mean_cruise_kmh: f64,
    /// Integrated encounter-simulation time, seconds of 10 ms stepping —
    /// the deterministic compute-cost proxy for matched-compute
    /// comparisons against splitting campaigns.
    pub encounter_seconds: f64,
    /// Time spent per zone, hours.
    zone_hours: BTreeMap<String, f64>,
    /// Challenges encountered per zone.
    zone_encounters: BTreeMap<String, u64>,
    /// Wall-clock statistics of the pool that produced this result,
    /// excluded from equality. `Some` only when the run owned the pool
    /// ([`Campaign::run`]); `None` for results from
    /// [`Campaign::run_replications`], whose shared pool's figures cover
    /// all replications at once and live on [`ReplicationSummary`].
    pub throughput: Option<Throughput>,
}

/// Equality covers the simulated outcome only; [`CampaignResult::throughput`]
/// is wall-clock measurement and varies between identical campaigns.
impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        self.policy_name == other.policy_name
            && self.records == other.records
            && self.exposure == other.exposure
            && self.encounters == other.encounters
            && self.hard_brake_demands == other.hard_brake_demands
            && self.undetected_encounters == other.undetected_encounters
            && self.mean_cruise_kmh == other.mean_cruise_kmh
            && self.encounter_seconds == other.encounter_seconds
            && self.zone_hours == other.zone_hours
            && self.zone_encounters == other.zone_encounters
    }
}

impl CampaignResult {
    /// Total simulated exposure.
    pub fn exposure(&self) -> Hours {
        self.exposure
    }

    /// Classifies the raw records into measured incident counts.
    pub fn measured(&self, classification: &IncidentClassification) -> (MeasuredIncidents, usize) {
        MeasuredIncidents::from_records(classification, &self.records, self.exposure)
    }

    /// Classifies the raw records into the unified evidence representation:
    /// a global-row-only [`EvidenceLedger`] with exact unit-weight masses,
    /// pre-seeded with every leaf of the classification. (The recording
    /// engine does not retain per-record zones; campaigns that need zone
    /// refinement rows should use [`Campaign::run_counting`].)
    pub fn evidence(&self, classification: &IncidentClassification) -> EvidenceLedger {
        let (measured, non_incidents) = self.measured(classification);
        let mut ledger = EvidenceLedger::new();
        ledger.add_exposure(None, self.exposure.value());
        for leaf in classification.leaves() {
            ledger.add_count(
                None,
                leaf.id().as_str(),
                &WeightedCount::unit(measured.count(leaf.id())),
            );
        }
        ledger.add_unclassified_count(None, &WeightedCount::unit(non_incidents as u64));
        ledger
    }

    /// Rate of hard-braking demands (> 4 m/s²) per operating hour — the
    /// paper's policy-dependence yardstick.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn hard_brake_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.hard_brake_demands as f64, self.exposure)
    }

    /// Rate of challenges encountered per operating hour.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn encounter_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.encounters as f64, self.exposure)
    }

    /// Time spent in a zone, or zero for an unvisited zone.
    pub fn zone_exposure(&self, zone: &str) -> Hours {
        Hours::new(self.zone_hours.get(zone).copied().unwrap_or(0.0))
            .expect("accumulated durations are non-negative")
    }

    /// Observed challenge rate in one zone, or `None` for an unvisited
    /// zone — the empirical counterpart of the exposure model's
    /// context-dependent rates (Sec. II-B.4).
    pub fn zone_encounter_rate(&self, zone: &str) -> Option<Frequency> {
        let hours = self.zone_hours.get(zone).copied()?;
        let count = self.zone_encounters.get(zone).copied().unwrap_or(0);
        Frequency::from_count(count as f64, Hours::new(hours).ok()?).ok()
    }

    /// The zones visited, in name order.
    pub fn zones(&self) -> impl Iterator<Item = &str> {
        self.zone_hours.keys().map(String::as_str)
    }
}

/// The outcome of a streaming (counting) campaign: classified incident
/// counts and campaign statistics, but no raw records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountingResult {
    /// Name of the policy that drove.
    pub policy_name: String,
    /// Classified incident counts over the campaign exposure.
    pub measured: MeasuredIncidents,
    /// Raw events that were not incidents under the classification.
    pub non_incidents: u64,
    /// Distribution of raw record counts per shift.
    pub records_per_shift: OnlineStats,
    /// The campaign's unified evidence: global row with the exact integer
    /// counts (weight-1.0 masses) over the campaign exposure, plus one
    /// refinement row per visited zone — what downstream Eq. (1)
    /// verification and fleet burn-down merge and consume.
    pub evidence: EvidenceLedger,
    /// Number of challenges encountered.
    pub encounters: u64,
    /// Encounters that demanded braking harder than 4 m/s².
    pub hard_brake_demands: u64,
    /// Encounters the perception never detected.
    pub undetected_encounters: u64,
    /// Exposure-weighted mean cruise speed, km/h.
    pub mean_cruise_kmh: f64,
    /// Integrated encounter-simulation time, seconds of 10 ms stepping —
    /// the deterministic compute-cost proxy for matched-compute
    /// comparisons against splitting campaigns.
    pub encounter_seconds: f64,
    /// Time spent per zone, hours.
    zone_hours: BTreeMap<String, f64>,
    /// Challenges encountered per zone.
    zone_encounters: BTreeMap<String, u64>,
    /// Wall-clock statistics of the pool that produced this result,
    /// excluded from equality. `Some` only when the run owned the pool
    /// ([`Campaign::run_counting`]); `None` for results from
    /// [`Campaign::run_replications_counting`], whose shared pool's
    /// figures cover all replications at once and live on
    /// [`CountingReplicationSummary`].
    pub throughput: Option<Throughput>,
}

/// Equality covers the simulated outcome only, never the throughput.
impl PartialEq for CountingResult {
    fn eq(&self, other: &Self) -> bool {
        self.policy_name == other.policy_name
            && self.measured == other.measured
            && self.non_incidents == other.non_incidents
            && self.records_per_shift == other.records_per_shift
            && self.evidence == other.evidence
            && self.encounters == other.encounters
            && self.hard_brake_demands == other.hard_brake_demands
            && self.undetected_encounters == other.undetected_encounters
            && self.mean_cruise_kmh == other.mean_cruise_kmh
            && self.encounter_seconds == other.encounter_seconds
            && self.zone_hours == other.zone_hours
            && self.zone_encounters == other.zone_encounters
    }
}

impl CountingResult {
    /// Total simulated exposure.
    pub fn exposure(&self) -> Hours {
        self.measured.exposure()
    }

    /// Rate of hard-braking demands (> 4 m/s²) per operating hour.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn hard_brake_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.hard_brake_demands as f64, self.exposure())
    }

    /// Rate of challenges encountered per operating hour.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a zero-exposure result.
    pub fn encounter_rate(&self) -> Result<Frequency, UnitError> {
        Frequency::from_count(self.encounters as f64, self.exposure())
    }
}

impl fmt::Display for CountingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} incidents ({} uneventful records) over {}: {} encounters, {} hard-brake demands",
            self.policy_name,
            self.measured.total(),
            self.non_incidents,
            self.exposure(),
            self.encounters,
            self.hard_brake_demands,
        )
    }
}

/// Spread statistics over independent campaign replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Number of replications run.
    pub replications: u64,
    /// Per-replication encounter rate (events per hour).
    pub encounter_rate: OnlineStats,
    /// Per-replication hard-brake demand rate (events per hour).
    pub hard_brake_rate: OnlineStats,
    /// Per-replication raw record count.
    pub raw_record_count: OnlineStats,
    /// The individual replication results, in seed order.
    pub results: Vec<CampaignResult>,
    /// Wall-clock statistics of the shared pool that ran every
    /// replication. This is the only throughput figure for the batch —
    /// the individual [`CampaignResult`]s carry `None`, because the
    /// pool's wall-clock time cannot be attributed to single seeds.
    pub throughput: Throughput,
}

/// Equality covers the simulated outcomes only, never the throughput.
impl PartialEq for ReplicationSummary {
    fn eq(&self, other: &Self) -> bool {
        self.replications == other.replications
            && self.encounter_rate == other.encounter_rate
            && self.hard_brake_rate == other.hard_brake_rate
            && self.raw_record_count == other.raw_record_count
            && self.results == other.results
    }
}

impl fmt::Display for ReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replications: encounters {:.3} ± {:.3}/h, hard brakes {:.3} ± {:.3}/h",
            self.replications,
            self.encounter_rate.mean(),
            self.encounter_rate.std_dev(),
            self.hard_brake_rate.mean(),
            self.hard_brake_rate.std_dev(),
        )
    }
}

/// Spread statistics over independent streaming (counting) replications:
/// the error bars for classified incident rates, without ever holding raw
/// records.
#[derive(Debug, Clone)]
pub struct CountingReplicationSummary {
    /// Number of replications run.
    pub replications: u64,
    /// Per-replication encounter rate (events per hour).
    pub encounter_rate: OnlineStats,
    /// Per-replication hard-brake demand rate (events per hour).
    pub hard_brake_rate: OnlineStats,
    /// Per-replication classified incident count (all types together).
    pub incident_count: OnlineStats,
    /// Per-replication incident rate (events per hour) for every leaf of
    /// the classification, in incident-id order.
    pub incident_rates: BTreeMap<IncidentTypeId, OnlineStats>,
    /// The individual replication results, in seed order.
    pub results: Vec<CountingResult>,
    /// Wall-clock statistics of the shared pool that ran every
    /// replication; the individual [`CountingResult`]s carry `None`.
    pub throughput: Throughput,
}

impl CountingReplicationSummary {
    /// The merge of every replication's [`EvidenceLedger`] — the pooled
    /// evidence of the whole batch, ready for Eq. (1) verification or
    /// fleet burn-down. Deterministic: replication order is seed order.
    pub fn combined_evidence(&self) -> EvidenceLedger {
        let mut combined = EvidenceLedger::new();
        for result in &self.results {
            combined.merge(&result.evidence);
        }
        combined
    }
}

/// Equality covers the simulated outcomes only, never the throughput.
impl PartialEq for CountingReplicationSummary {
    fn eq(&self, other: &Self) -> bool {
        self.replications == other.replications
            && self.encounter_rate == other.encounter_rate
            && self.hard_brake_rate == other.hard_brake_rate
            && self.incident_count == other.incident_count
            && self.incident_rates == other.incident_rates
            && self.results == other.results
    }
}

impl fmt::Display for CountingReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} counting replications: incidents {:.3} ± {:.3}, encounters {:.3} ± {:.3}/h",
            self.replications,
            self.incident_count.mean(),
            self.incident_count.std_dev(),
            self.encounter_rate.mean(),
            self.encounter_rate.std_dev(),
        )
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} over {}: {} encounters, {} hard-brake demands, mean cruise {:.1} km/h",
            self.policy_name,
            self.records.len(),
            self.exposure,
            self.encounters,
            self.hard_brake_demands,
            self.mean_cruise_kmh
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CautiousPolicy, ReactivePolicy};
    use crate::scenario::{mixed_scenario, urban_scenario};

    fn h(x: f64) -> Hours {
        Hours::new(x).unwrap()
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(50.0))
                .seed(11)
                .workers(3)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn result_is_bit_identical_for_any_worker_count() {
        let run = |workers| {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(130.0))
                .seed(11)
                .workers(workers)
                .run()
                .unwrap()
        };
        let reference = run(1);
        for workers in [2, 7, default_workers()] {
            let other = run(workers);
            assert_eq!(reference, other, "workers={workers}");
            // f64 fields must match to the bit, not merely within epsilon.
            assert_eq!(
                reference.mean_cruise_kmh.to_bits(),
                other.mean_cruise_kmh.to_bits(),
                "workers={workers}"
            );
            assert_eq!(
                reference.exposure().value().to_bits(),
                other.exposure().value().to_bits(),
                "workers={workers}"
            );
            for zone in reference.zones() {
                assert_eq!(
                    reference.zone_exposure(zone).value().to_bits(),
                    other.zone_exposure(zone).value().to_bits(),
                    "workers={workers} zone={zone}"
                );
            }
        }
    }

    #[test]
    fn replications_are_bit_identical_for_any_worker_count() {
        let run = |workers| {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(45.0))
                .seed(21)
                .workers(workers)
                .run_replications(3)
                .unwrap()
        };
        let reference = run(1);
        for workers in [2, 7, default_workers()] {
            assert_eq!(reference, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn counting_matches_recording_classification() {
        let classification = qrn_core::examples::paper_classification().unwrap();
        let campaign = || {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(120.0))
                .seed(13)
                .workers(5)
        };
        let recorded = campaign().run().unwrap();
        let (measured, non_incidents) = recorded.measured(&classification);
        let counted = campaign().run_counting(&classification).unwrap();
        assert_eq!(counted.measured, measured);
        assert_eq!(counted.non_incidents as usize, non_incidents);
        assert_eq!(counted.encounters, recorded.encounters);
        assert_eq!(counted.hard_brake_demands, recorded.hard_brake_demands);
        assert_eq!(counted.mean_cruise_kmh, recorded.mean_cruise_kmh);
        assert_eq!(
            counted.records_per_shift.count() as u64,
            recorded.throughput.as_ref().unwrap().shifts
        );
        let counted_records =
            counted.records_per_shift.mean() * counted.records_per_shift.count() as f64;
        assert!((counted_records - recorded.records.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn counting_is_independent_of_worker_count() {
        let classification = qrn_core::examples::paper_classification().unwrap();
        let run = |workers| {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(90.0))
                .seed(17)
                .workers(workers)
                .run_counting(&classification)
                .unwrap()
        };
        let reference = run(1);
        for workers in [2, 7, default_workers()] {
            assert_eq!(reference, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn throughput_reports_the_work_done() {
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(80.0))
            .seed(9)
            .workers(2)
            .run()
            .unwrap();
        let t = result.throughput.as_ref().expect("run() owns its pool");
        assert_eq!(t.shifts, 8);
        assert!((t.sim_hours - 80.0).abs() < 1e-9);
        assert_eq!(t.workers, 2);
        assert_eq!(t.per_worker.len(), 2);
        assert_eq!(t.per_worker.iter().map(|w| w.shifts).sum::<u64>(), 8);
        assert!(t.wall_seconds > 0.0);
        assert!(t.sim_hours_per_second > 0.0);
        assert!(t.to_string().contains("workers"));
    }

    #[test]
    fn exposure_accumulates_to_requested_hours() {
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(37.5))
            .seed(1)
            .run()
            .unwrap();
        assert!((result.exposure().value() - 37.5).abs() < 1e-6);
    }

    #[test]
    fn encounter_rate_matches_exposure_model_scale() {
        // Urban: pedestrians ~2/h (8x in school), leads ~1/h, so the
        // encounter rate should land in the low single digits per hour.
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(300.0))
            .seed(2)
            .run()
            .unwrap();
        let rate = result.encounter_rate().unwrap().as_per_hour();
        assert!((1.0..10.0).contains(&rate), "rate={rate}");
    }

    #[test]
    fn cautious_policy_demands_less_hard_braking_than_reactive() {
        let config = mixed_scenario().unwrap();
        let cautious = Campaign::new(config.clone(), CautiousPolicy::default())
            .hours(h(300.0))
            .seed(3)
            .run()
            .unwrap();
        let reactive = Campaign::new(config, ReactivePolicy::default())
            .hours(h(300.0))
            .seed(3)
            .run()
            .unwrap();
        let c = cautious.hard_brake_rate().unwrap().as_per_hour();
        let r = reactive.hard_brake_rate().unwrap().as_per_hour();
        assert!(
            c < r,
            "cautious {c}/h should demand less hard braking than reactive {r}/h"
        );
    }

    #[test]
    fn cautious_policy_collides_less() {
        use qrn_core::incident::IncidentKind;
        let config = mixed_scenario().unwrap();
        let collisions = |result: &CampaignResult| {
            result
                .records
                .iter()
                .filter(|r| matches!(r.kind, IncidentKind::Collision { .. }))
                .count()
        };
        let cautious = Campaign::new(config.clone(), CautiousPolicy::default())
            .hours(h(400.0))
            .seed(4)
            .run()
            .unwrap();
        let reactive = Campaign::new(config, ReactivePolicy::default())
            .hours(h(400.0))
            .seed(4)
            .run()
            .unwrap();
        assert!(
            collisions(&cautious) <= collisions(&reactive),
            "cautious {} vs reactive {}",
            collisions(&cautious),
            collisions(&reactive)
        );
    }

    #[test]
    fn measured_incidents_flow_into_core() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let result = Campaign::new(urban_scenario().unwrap(), ReactivePolicy::default())
            .hours(h(200.0))
            .seed(5)
            .run()
            .unwrap();
        let (measured, _non_incidents) = result.measured(&c);
        assert_eq!(measured.exposure(), result.exposure());
        // raw events are at least as many as classified incidents
        assert!(measured.total() as usize <= result.records.len());
    }

    #[test]
    fn replications_vary_and_summarise() {
        let summary = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(40.0))
            .seed(30)
            .run_replications(5)
            .unwrap();
        assert_eq!(summary.replications, 5);
        assert_eq!(summary.results.len(), 5);
        // Different seeds produce different outcomes...
        assert!(summary.raw_record_count.sample_variance() > 0.0);
        // ...whose spread matches a Poisson-ish scale (std << mean).
        assert!(summary.encounter_rate.std_dev() < summary.encounter_rate.mean());
        // The first replication equals a plain run with the same seed.
        let single = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(40.0))
            .seed(30)
            .run()
            .unwrap();
        assert_eq!(summary.results[0], single);
        assert!(summary.to_string().contains("5 replications"));
        // The shared pool's throughput covers all replications at once,
        // so it lives on the summary only; attaching it to individual
        // results would overstate their work n-fold.
        assert!(summary.results.iter().all(|r| r.throughput.is_none()));
        assert_eq!(summary.throughput.shifts, 5 * 4);
        assert!(single.throughput.is_some());
    }

    #[test]
    fn zero_replications_is_an_error() {
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(10.0))
            .run_replications(0);
        assert!(err.is_err());
    }

    #[test]
    fn counting_replications_match_recorded_replications() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let campaign = || {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(40.0))
                .seed(30)
        };
        let counting = campaign().run_replications_counting(&c, 5).unwrap();
        assert_eq!(counting.replications, 5);
        assert_eq!(counting.results.len(), 5);
        assert!(counting.results.iter().all(|r| r.throughput.is_none()));
        assert_eq!(counting.throughput.shifts, 5 * 4);
        assert!(counting.to_string().contains("5 counting replications"));
        // Every leaf of the classification has a spread entry with one
        // sample per replication — even never-observed types.
        assert_eq!(counting.incident_rates.len(), c.leaves().len());
        for stats in counting.incident_rates.values() {
            assert_eq!(stats.count(), 5);
        }
        // Replication by replication, the streamed counts equal
        // classifying the recorded campaign's records after the fact.
        let recorded = campaign().run_replications(5).unwrap();
        for (count_rep, record_rep) in counting.results.iter().zip(&recorded.results) {
            let (measured, non_incidents) = record_rep.measured(&c);
            assert_eq!(count_rep.measured, measured);
            assert_eq!(count_rep.non_incidents as usize, non_incidents);
            assert_eq!(count_rep.encounters, record_rep.encounters);
        }
        // The headline spreads agree with the recorded engine's.
        assert_eq!(counting.encounter_rate, recorded.encounter_rate);
        assert_eq!(counting.hard_brake_rate, recorded.hard_brake_rate);
    }

    #[test]
    fn counting_replications_are_worker_count_independent() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let run = |workers| {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(60.0))
                .seed(8)
                .workers(workers)
                .run_replications_counting(&c, 3)
                .unwrap()
        };
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn zero_counting_replications_is_an_error() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(10.0))
            .run_replications_counting(&c, 0);
        assert!(err.is_err());
    }

    #[test]
    fn counting_evidence_mirrors_measured_counts() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let result = Campaign::new(mixed_scenario().unwrap(), ReactivePolicy::default())
            .hours(h(200.0))
            .seed(13)
            .run_counting(&c)
            .unwrap();
        let ev = &result.evidence;
        // Global row: exact unit-weight counts over the exact exposure.
        assert_eq!(ev.exposure().to_bits(), result.exposure().value().to_bits());
        for leaf in c.leaves() {
            let count = ev.count(leaf.id().as_str());
            assert!(count.is_unweighted(), "{}", leaf.id());
            assert_eq!(count.observations(), result.measured.count(leaf.id()));
        }
        assert_eq!(ev.unclassified().observations(), result.non_incidents);
        // Zone refinement rows partition the exposure and the counts.
        let zone_exposure: f64 = ev
            .named_contexts()
            .map(|(_, row)| row.exposure_hours())
            .sum();
        assert!((zone_exposure - result.exposure().value()).abs() < 1e-6);
        for leaf in c.leaves() {
            let zone_sum: u64 = ev
                .named_contexts()
                .map(|(_, row)| row.count(leaf.id().as_str()).observations())
                .sum();
            assert_eq!(zone_sum, result.measured.count(leaf.id()), "{}", leaf.id());
        }
        let zone_unclassified: u64 = ev
            .named_contexts()
            .map(|(_, row)| row.unclassified().observations())
            .sum();
        assert_eq!(zone_unclassified, result.non_incidents);
    }

    #[test]
    fn recording_evidence_matches_counting_global_row() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let campaign = || {
            Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
                .hours(h(120.0))
                .seed(13)
                .workers(5)
        };
        let recorded = campaign().run().unwrap().evidence(&c);
        let counted = campaign().run_counting(&c).unwrap().evidence;
        assert_eq!(recorded.exposure().to_bits(), counted.exposure().to_bits());
        for kind in counted.kinds() {
            assert_eq!(
                recorded.count(kind).observations(),
                counted.count(kind).observations(),
                "{kind}"
            );
        }
        assert_eq!(
            recorded.unclassified().observations(),
            counted.unclassified().observations()
        );
    }

    #[test]
    fn replication_evidence_merges_across_seeds() {
        let c = qrn_core::examples::paper_classification().unwrap();
        let summary = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(40.0))
            .seed(30)
            .run_replications_counting(&c, 3)
            .unwrap();
        let combined = summary.combined_evidence();
        assert!((combined.exposure() - 120.0).abs() < 1e-9);
        for leaf in c.leaves() {
            let per_rep: u64 = summary
                .results
                .iter()
                .map(|r| r.measured.count(leaf.id()))
                .sum();
            assert_eq!(combined.count(leaf.id().as_str()).observations(), per_rep);
        }
        // Eq. (1) verification consumes the pooled ledger directly.
        let norm = qrn_core::examples::paper_norm().unwrap();
        let allocation = qrn_core::examples::paper_allocation(&c).unwrap();
        let report =
            qrn_core::verification::verify_evidence(&norm, &allocation, &combined, 0.95).unwrap();
        assert_eq!(report.goals.len(), allocation.budgets().count());
    }

    #[test]
    fn per_zone_exposure_sums_to_total() {
        let result = Campaign::new(mixed_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(100.0))
            .seed(6)
            .run()
            .unwrap();
        let total: f64 = result
            .zones()
            .map(|z| result.zone_exposure(z).value())
            .sum();
        assert!((total - result.exposure().value()).abs() < 1e-6);
        // dwell ratios respected: highway 0.3 vs residential 0.2 of each cycle
        let highway = result.zone_exposure("highway").value();
        let residential = result.zone_exposure("residential").value();
        assert!((highway / residential - 1.5).abs() < 0.05);
    }

    #[test]
    fn zone_encounter_rates_reflect_the_exposure_model() {
        // In the mixed scenario the school zone does not exist but the
        // residential zone has base pedestrian pressure, while the highway
        // suppresses pedestrians (x0.01) but boosts leads, animals and
        // cut-ins. Net: both see encounters, but with different mixes —
        // and the *school* multiplier is testable in the urban scenario.
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(400.0))
            .seed(7)
            .run()
            .unwrap();
        let school = result.zone_encounter_rate("school").unwrap().as_per_hour();
        let residential = result
            .zone_encounter_rate("residential")
            .unwrap()
            .as_per_hour();
        // school zone: pedestrians at 8x -> encounter rate several times higher
        assert!(
            school > 3.0 * residential,
            "school {school}/h vs residential {residential}/h"
        );
        assert_eq!(result.zone_encounter_rate("nonexistent"), None);
    }

    #[test]
    fn zero_hours_is_an_error() {
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(Hours::ZERO)
            .run();
        assert!(err.is_err());
    }

    #[test]
    fn zero_workers_is_an_error() {
        let err = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .workers(0)
            .run();
        match err {
            Err(UnitError::OutOfRange { quantity, .. }) => {
                assert_eq!(quantity, "campaign workers");
            }
            other => panic!("expected an out-of-range error, got {other:?}"),
        }
    }

    /// A million simulated hours through the counting path — streaming
    /// memory only. Run explicitly (release mode recommended):
    /// `cargo test -p qrn-sim --release -- --ignored million_hours`.
    #[test]
    #[ignore = "long-running scale demonstration"]
    fn million_hours_stream_through_counting() {
        let classification = qrn_core::examples::paper_classification().unwrap();
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(h(1_000_000.0))
            .seed(99)
            .run_counting(&classification)
            .unwrap();
        assert!((result.exposure().value() - 1_000_000.0).abs() < 1e-3);
        assert_eq!(
            result
                .throughput
                .as_ref()
                .expect("run_counting owns its pool")
                .shifts,
            100_000
        );
        assert!(result.measured.total() > 0);
    }
}
