//! Encounter micro-simulation: one conflicting object, integrated at 10 ms
//! steps until resolution or collision.
//!
//! An encounter starts when a challenge spawns ahead of the ego vehicle
//! (pedestrian stepping out, lead vehicle braking hard, animal on the
//! road). The ego's perception has to *see* it (range + per-scan misses),
//! the policy decides how hard to brake, and plain kinematics decide
//! whether the episode ends as a pass, a near-miss or a collision with a
//! specific impact speed — the quantity the QRN's tolerance margins are
//! written in.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qrn_core::object::ObjectType;
use qrn_stats::rng::uniform;
use qrn_units::{Acceleration, Meters, Speed};

use crate::faults::ActiveFaults;
use crate::perception::PerceptionParams;
use crate::policy::TacticalPolicy;
use crate::scenario::{ChallengeTemplate, ObjectMotion};
use crate::vehicle::VehicleParams;

/// Integration step, seconds.
const DT: f64 = 0.01;
/// The integration step, exposed so cost accounting (one step = this many
/// simulated seconds) stays in one place.
pub const STEP_SECONDS: f64 = DT;
/// Hard cap on encounter duration, seconds.
const MAX_DURATION_S: f64 = 120.0;

/// A concrete spawned challenge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Challenge {
    /// The object category ahead.
    pub object: ObjectType,
    /// Initial gap to the object.
    pub initial_gap: Meters,
    /// The object's initial speed (along the corridor).
    pub object_speed: Speed,
    /// The object's deceleration until standstill, m/s².
    pub object_decel: f64,
    /// Time after which the object clears the corridor (crossing
    /// pedestrians and animals leave; obstacles never do).
    pub clears_after_s: f64,
}

impl Challenge {
    /// Samples a challenge from a template, given the ego's current speed
    /// (a braking lead starts at the ego's speed).
    pub fn sample<R: Rng + ?Sized>(
        template: &ChallengeTemplate,
        ego_speed: Speed,
        rng: &mut R,
    ) -> Challenge {
        let initial_gap = Meters::new(uniform(rng, template.gap_range_m.0, template.gap_range_m.1))
            .expect("template gap ranges are valid");
        match template.motion {
            ObjectMotion::Stationary => Challenge {
                object: template.object,
                initial_gap,
                object_speed: Speed::ZERO,
                object_decel: 0.0,
                clears_after_s: match template.object {
                    // Crossing VRUs and animals leave the corridor.
                    ObjectType::Vru => uniform(rng, 1.0, 4.0),
                    ObjectType::Animal => uniform(rng, 0.5, 5.0),
                    _ => f64::INFINITY,
                },
            },
            ObjectMotion::CutIn {
                min_speed_fraction,
                max_speed_fraction,
            } => {
                let fraction = uniform(rng, min_speed_fraction, max_speed_fraction);
                Challenge {
                    object: template.object,
                    initial_gap,
                    object_speed: Speed::from_mps(ego_speed.as_mps() * fraction)
                        .expect("fraction of a valid speed"),
                    object_decel: 0.0,
                    clears_after_s: f64::INFINITY,
                }
            }
            ObjectMotion::LeadBraking {
                min_decel,
                max_decel,
            } => {
                // A lead is followed at a time headway, so the gap scales
                // with speed; the template's minimum gap is the floor.
                let headway_s = uniform(rng, 1.0, 2.5);
                let gap = (ego_speed.as_mps() * headway_s).max(template.gap_range_m.0);
                Challenge {
                    object: template.object,
                    initial_gap: Meters::new(gap).expect("non-negative gap"),
                    object_speed: ego_speed,
                    object_decel: uniform(rng, min_decel, max_decel),
                    clears_after_s: f64::INFINITY,
                }
            }
        }
    }
}

/// How an encounter ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EncounterOutcome {
    /// The ego hit the object at the given impact (relative) speed.
    Collision {
        /// Relative speed at contact.
        impact_speed: Speed,
    },
    /// No contact; the closest approach and the closing speed at that
    /// moment (what near-miss tolerance margins are written in).
    Resolved {
        /// Minimum gap reached.
        min_gap: Meters,
        /// Closing speed when the minimum gap occurred.
        closing_at_min: Speed,
    },
}

/// Side measurements of one encounter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncounterStats {
    /// Largest deceleration the policy commanded.
    pub max_commanded_brake: Acceleration,
    /// Whether perception ever detected the object.
    pub detected: bool,
    /// Episode duration, seconds.
    pub duration_s: f64,
}

/// One encounter as a steppable, cloneable state machine.
///
/// [`run_encounter`] drives it to completion in one call; the
/// multilevel-splitting engine ([`crate::splitting`]) instead advances a
/// simulation until its [severity](EncounterSim::severity) crosses a level,
/// clones it, and continues the copies with independent RNG substreams.
/// All randomness flows through the `rng` handed to [`step`](Self::step),
/// so a clone is a complete snapshot of the trajectory.
///
/// Fault factors are folded in at construction; the *world* resolves
/// physics with the degraded braking either way, while the policy also
/// plans with the degraded capability (the ADS knows its actual
/// capability, Sec. II-B.3).
#[derive(Debug, Clone)]
pub struct EncounterSim {
    perception: PerceptionParams,
    capability: Acceleration,
    object_decel: f64,
    clears_after_s: f64,
    gap: f64,
    ve: f64,
    vo: f64,
    t: f64,
    next_scan: f64,
    detected_at: Option<f64>,
    max_cmd: f64,
    min_gap: f64,
    closing_at_min: f64,
    danger: f64,
}

impl EncounterSim {
    /// Prepares an encounter with the faults already applied.
    pub fn new(
        challenge: &Challenge,
        ego_speed: Speed,
        vehicle: &VehicleParams,
        perception: &PerceptionParams,
        faults: &ActiveFaults,
    ) -> Self {
        let perception = perception.with_range_factor(faults.sensor_factor);
        let capability = vehicle
            .max_brake
            .scaled(faults.brake_factor)
            .expect("fault factors are non-negative");
        let gap = challenge.initial_gap.value();
        let ve = ego_speed.as_mps();
        let vo = challenge.object_speed.as_mps();
        let mut sim = EncounterSim {
            perception,
            capability,
            object_decel: challenge.object_decel,
            clears_after_s: challenge.clears_after_s,
            gap,
            ve,
            vo,
            t: 0.0,
            next_scan: 0.0,
            detected_at: None,
            max_cmd: 0.0,
            min_gap: gap,
            closing_at_min: (ve - vo).max(0.0),
            danger: 0.0,
        };
        sim.danger = sim.danger_now();
        sim
    }

    /// The instantaneous danger ratio: the deceleration needed to stop the
    /// closing speed within the remaining gap, as a fraction of the
    /// braking capability, `closing² / (2 · gap · capability)`.
    fn danger_now(&self) -> f64 {
        let closing = self.ve - self.vo;
        if closing <= 0.0 || self.gap <= 0.0 {
            return if self.gap <= 0.0 { f64::INFINITY } else { 0.0 };
        }
        closing * closing / (2.0 * self.gap * self.capability.value().max(0.1))
    }

    /// Trajectory severity: the running maximum of the danger ratio
    /// `closing² / (2 · gap · capability)` — how much of the braking
    /// capability a full stop within the remaining gap would have needed at
    /// the worst moment so far. It is monotonically non-decreasing along a
    /// trajectory by construction, stays well below 1 for comfortable
    /// resolutions (the built-in policies plan with margin), exceeds 1
    /// exactly when a stop became kinematically impossible, and diverges as
    /// the gap closes at speed — which makes increasing severity levels
    /// valid waypoints for multilevel splitting ([`crate::splitting`]):
    /// every collision trajectory crosses every finite level first.
    pub fn severity(&self) -> f64 {
        self.danger
    }

    /// Whether perception has detected the object (detection latches, so
    /// a detected trajectory has no scan randomness left — only its
    /// deterministic dynamics and any post-terminal sampling).
    pub fn is_detected(&self) -> bool {
        self.detected_at.is_some()
    }

    /// Advances one `DT` step. Returns the outcome when the encounter
    /// terminates on this step, `None` while it is still running.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        policy: &dyn TacticalPolicy,
        vehicle: &VehicleParams,
        rng: &mut R,
    ) -> Option<EncounterOutcome> {
        // Perception scans at the configured period.
        if self.t >= self.next_scan {
            self.next_scan += self.perception.scan_period_s;
            if self.detected_at.is_none()
                && self.perception.in_range_raw(self.gap.max(0.0))
                && self.perception.scan_detects(rng)
            {
                self.detected_at = Some(self.t);
            }
        }

        // Braking is authorized after detection plus the reaction time.
        let braking_authorized = self
            .detected_at
            .is_some_and(|t0| self.t >= t0 + vehicle.reaction_time_s);
        let closing = self.ve - self.vo;
        let cmd = if braking_authorized && closing > 0.0 {
            policy.commanded_brake_raw(
                self.gap.max(0.0),
                self.ve,
                self.vo,
                vehicle,
                self.capability,
            )
        } else {
            0.0
        };
        self.max_cmd = self.max_cmd.max(cmd);

        // Integrate one step (semi-implicit Euler).
        self.ve = (self.ve - cmd * DT).max(0.0);
        self.vo = (self.vo - self.object_decel * DT).max(0.0);
        self.gap -= (self.ve - self.vo) * DT;
        self.t += DT;

        let closing_now = self.ve - self.vo;
        if self.gap < self.min_gap {
            self.min_gap = self.gap;
            self.closing_at_min = closing_now.max(0.0);
        }
        self.danger = self.danger.max(self.danger_now());

        // Collision?
        if self.gap <= 0.0 {
            return Some(EncounterOutcome::Collision {
                impact_speed: Speed::from_mps(closing_now.max(0.0)).expect("non-negative"),
            });
        }

        // Object cleared the corridor?
        let resolved = self.t >= self.clears_after_s
            // No longer closing and some gap left.
            || (closing_now <= 0.0 && self.gap > 0.0)
            // Both at rest.
            || (self.ve == 0.0 && self.vo == 0.0)
            || self.t >= MAX_DURATION_S;
        if resolved {
            return Some(EncounterOutcome::Resolved {
                min_gap: Meters::new(self.min_gap.max(0.0)).expect("clamped"),
                closing_at_min: Speed::from_mps(self.closing_at_min).expect("non-negative"),
            });
        }
        None
    }

    /// Side measurements of the trajectory so far.
    pub fn stats(&self) -> EncounterStats {
        EncounterStats {
            max_commanded_brake: Acceleration::new(self.max_cmd).expect("bounded"),
            detected: self.detected_at.is_some(),
            duration_s: self.t,
        }
    }
}

/// Runs one encounter to completion.
///
/// `faults` must already be sampled; see [`EncounterSim`] for how they are
/// applied.
pub fn run_encounter<R: Rng + ?Sized>(
    challenge: &Challenge,
    ego_speed: Speed,
    policy: &dyn TacticalPolicy,
    vehicle: &VehicleParams,
    perception: &PerceptionParams,
    faults: &ActiveFaults,
    rng: &mut R,
) -> (EncounterOutcome, EncounterStats) {
    let mut sim = EncounterSim::new(challenge, ego_speed, vehicle, perception, faults);
    loop {
        if let Some(outcome) = sim.step(policy, vehicle, rng) {
            return (outcome, sim.stats());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CautiousPolicy, ReactivePolicy};
    use qrn_stats::rng::seeded;

    fn stationary_vru(gap: f64) -> Challenge {
        Challenge {
            object: ObjectType::Vru,
            initial_gap: Meters::new(gap).unwrap(),
            object_speed: Speed::ZERO,
            object_decel: 0.0,
            clears_after_s: f64::INFINITY,
        }
    }

    fn perfect_perception() -> PerceptionParams {
        PerceptionParams {
            detection_range: Meters::new(200.0).unwrap(),
            miss_probability: qrn_units::Probability::ZERO,
            scan_period_s: 0.1,
        }
    }

    #[test]
    fn ample_gap_resolves_without_contact() {
        let mut rng = seeded(1);
        let (outcome, stats) = run_encounter(
            &stationary_vru(100.0),
            Speed::from_kmh(50.0).unwrap(),
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        assert!(matches!(outcome, EncounterOutcome::Resolved { .. }));
        assert!(stats.detected);
        if let EncounterOutcome::Resolved { min_gap, .. } = outcome {
            assert!(min_gap.value() > 0.5, "min gap {min_gap}");
        }
    }

    #[test]
    fn impossible_gap_collides_at_high_speed() {
        let mut rng = seeded(2);
        // 5 m gap at 80 km/h: physically unavoidable.
        let (outcome, _) = run_encounter(
            &stationary_vru(5.0),
            Speed::from_kmh(80.0).unwrap(),
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        match outcome {
            EncounterOutcome::Collision { impact_speed } => {
                assert!(impact_speed.as_kmh() > 60.0, "impact {impact_speed}");
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn impact_speed_never_exceeds_initial_closing_speed() {
        let mut rng = seeded(3);
        for gap in [3.0, 10.0, 25.0, 60.0] {
            for v in [20.0, 50.0, 90.0] {
                let (outcome, _) = run_encounter(
                    &stationary_vru(gap),
                    Speed::from_kmh(v).unwrap(),
                    &ReactivePolicy::default(),
                    &VehicleParams::typical(),
                    &perfect_perception(),
                    &ActiveFaults::healthy(),
                    &mut rng,
                );
                if let EncounterOutcome::Collision { impact_speed } = outcome {
                    assert!(impact_speed.as_kmh() <= v + 1e-6);
                }
            }
        }
    }

    #[test]
    fn degraded_brakes_turn_resolution_into_collision() {
        let mut seeds = 0..50u64;
        let run = |brake_factor: f64, seed: u64| {
            let mut rng = seeded(seed);
            let faults = ActiveFaults {
                brake_factor,
                sensor_factor: 1.0,
            };
            run_encounter(
                &stationary_vru(35.0),
                Speed::from_kmh(70.0).unwrap(),
                &ReactivePolicy::default(),
                &VehicleParams::typical(),
                &perfect_perception(),
                &faults,
                &mut rng,
            )
            .0
        };
        let healthy_collisions = seeds
            .clone()
            .filter(|&s| matches!(run(1.0, s), EncounterOutcome::Collision { .. }))
            .count();
        let degraded_collisions = seeds
            .by_ref()
            .filter(|&s| matches!(run(0.3, s), EncounterOutcome::Collision { .. }))
            .count();
        assert!(
            degraded_collisions > healthy_collisions,
            "degraded {degraded_collisions} vs healthy {healthy_collisions}"
        );
    }

    #[test]
    fn blind_perception_never_brakes() {
        let mut rng = seeded(5);
        let blind = PerceptionParams {
            miss_probability: qrn_units::Probability::ONE,
            ..perfect_perception()
        };
        let (outcome, stats) = run_encounter(
            &stationary_vru(50.0),
            Speed::from_kmh(50.0).unwrap(),
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &blind,
            &ActiveFaults::healthy(),
            &mut rng,
        );
        assert!(!stats.detected);
        assert_eq!(stats.max_commanded_brake, Acceleration::ZERO);
        assert!(matches!(outcome, EncounterOutcome::Collision { .. }));
    }

    #[test]
    fn crossing_object_that_clears_yields_near_miss_with_speed() {
        let mut rng = seeded(6);
        // Pedestrian clears after 1 s; ego too close to stop fully but the
        // pedestrian leaves: near-miss with residual closing speed.
        let challenge = Challenge {
            clears_after_s: 1.2,
            ..stationary_vru(18.0)
        };
        let (outcome, _) = run_encounter(
            &challenge,
            Speed::from_kmh(60.0).unwrap(),
            &ReactivePolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        match outcome {
            EncounterOutcome::Resolved {
                min_gap,
                closing_at_min,
            } => {
                assert!(min_gap.value() < 10.0);
                assert!(closing_at_min.as_kmh() > 0.0);
            }
            EncounterOutcome::Collision { .. } => {
                panic!("object cleared before contact was possible")
            }
        }
    }

    #[test]
    fn braking_lead_resolves_for_attentive_ego() {
        let mut rng = seeded(7);
        let challenge = Challenge {
            object: ObjectType::Car,
            initial_gap: Meters::new(40.0).unwrap(),
            object_speed: Speed::from_kmh(60.0).unwrap(),
            object_decel: 4.0,
            clears_after_s: f64::INFINITY,
        };
        let (outcome, stats) = run_encounter(
            &challenge,
            Speed::from_kmh(60.0).unwrap(),
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        assert!(
            matches!(outcome, EncounterOutcome::Resolved { .. }),
            "{outcome:?} after {}s",
            stats.duration_s
        );
    }

    #[test]
    fn cut_in_resolves_when_ego_matches_speed() {
        let mut rng = seeded(9);
        // A car cuts in at 70% of ego speed, 12 m ahead: the ego must slow
        // to match; with healthy perception and brakes this resolves.
        let ego = Speed::from_kmh(80.0).unwrap();
        let challenge = Challenge {
            object: ObjectType::Car,
            initial_gap: Meters::new(12.0).unwrap(),
            object_speed: Speed::from_mps(ego.as_mps() * 0.7).unwrap(),
            object_decel: 0.0,
            clears_after_s: f64::INFINITY,
        };
        let (outcome, stats) = run_encounter(
            &challenge,
            ego,
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        assert!(
            matches!(outcome, EncounterOutcome::Resolved { .. }),
            "{outcome:?} after {}s",
            stats.duration_s
        );
        assert!(stats.max_commanded_brake > Acceleration::ZERO);
    }

    #[test]
    fn challenge_sampling_covers_cut_in_motion() {
        use crate::scenario::{ChallengeTemplate, ObjectMotion};
        use qrn_odd::exposure::SituationalFactor;
        let template = ChallengeTemplate {
            factor: SituationalFactor::new("cut_in"),
            object: ObjectType::Car,
            gap_range_m: (6.0, 20.0),
            motion: ObjectMotion::CutIn {
                min_speed_fraction: 0.6,
                max_speed_fraction: 0.95,
            },
        };
        let mut rng = seeded(10);
        let ego = Speed::from_kmh(100.0).unwrap();
        for _ in 0..100 {
            let c = Challenge::sample(&template, ego, &mut rng);
            assert!(c.object_speed < ego);
            assert!(c.object_speed.as_mps() >= ego.as_mps() * 0.6 - 1e-9);
            assert!((6.0..20.0).contains(&c.initial_gap.value()));
            assert_eq!(c.object_decel, 0.0);
        }
    }

    #[test]
    fn encounter_terminates_within_cap() {
        let mut rng = seeded(8);
        let challenge = Challenge {
            object: ObjectType::StaticObject,
            initial_gap: Meters::new(150.0).unwrap(),
            object_speed: Speed::ZERO,
            object_decel: 0.0,
            clears_after_s: f64::INFINITY,
        };
        let (_, stats) = run_encounter(
            &challenge,
            Speed::from_kmh(30.0).unwrap(),
            &CautiousPolicy::default(),
            &VehicleParams::typical(),
            &perfect_perception(),
            &ActiveFaults::healthy(),
            &mut rng,
        );
        assert!(stats.duration_s <= MAX_DURATION_S + 1.0);
    }
}
