//! The HARA table: hazardous events, their classification, and the
//! qualitative safety goals a classical analysis elicits.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::asil::{determine_asil, Asil};
use crate::hazard::Hazard;
use crate::severity::{Controllability, Exposure, Severity};
use crate::situation::OperationalSituation;

/// A hazardous event: a hazard in an operational situation, classified with
/// S / E / C and the resulting ASIL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HazardousEvent {
    /// The malfunction-level hazard.
    pub hazard: Hazard,
    /// The operational situation in which it occurs.
    pub situation: OperationalSituation,
    /// Assessed severity.
    pub severity: Severity,
    /// Assessed exposure of the situation.
    pub exposure: Exposure,
    /// Assessed controllability.
    pub controllability: Controllability,
}

impl HazardousEvent {
    /// Creates a classified hazardous event.
    pub fn new(
        hazard: Hazard,
        situation: OperationalSituation,
        severity: Severity,
        exposure: Exposure,
        controllability: Controllability,
    ) -> Self {
        HazardousEvent {
            hazard,
            situation,
            severity,
            exposure,
            controllability,
        }
    }

    /// The ASIL determined for this event by ISO 26262-3 Table 4.
    pub fn asil(&self) -> Asil {
        determine_asil(self.severity, self.exposure, self.controllability)
    }
}

impl fmt::Display for HazardousEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} [{} {} {}] -> {}",
            self.hazard,
            self.situation,
            self.severity,
            self.exposure,
            self.controllability,
            self.asil()
        )
    }
}

/// A qualitative safety goal as a classical HARA produces it: prevent a
/// hazard, at the highest ASIL over all its hazardous events.
///
/// Contrast with the QRN safety goal (`qrn-core`), which restricts an
/// *incident type* to a *frequency* instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitativeSafetyGoal {
    /// Identifier, e.g. `SG-H3`.
    pub id: String,
    /// The hazard this goal prevents.
    pub hazard: Hazard,
    /// The highest ASIL over the hazard's hazardous events.
    pub asil: Asil,
    /// How many hazardous events contributed.
    pub event_count: usize,
}

impl fmt::Display for QualitativeSafetyGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: prevent \"{} {}\" ({}, from {} hazardous events)",
            self.id,
            self.hazard.function(),
            self.hazard.guideword(),
            self.asil,
            self.event_count
        )
    }
}

/// Assumptions a classical HARA must assert for its output to be a valid
/// safety argument — exactly the assumptions Sec. II-B of the paper attacks
/// for an ADS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompletenessAssumption {
    /// All relevant operational situations were identified (Sec. II-B.1:
    /// intractable for an ADS).
    SituationsComplete,
    /// Exposure is an input independent of the analysed function
    /// (Sec. II-B.2: false when tactical decisions steer exposure).
    ExposureIsGivenInput,
    /// Hazards can be identified separately from situations as the source
    /// of harm (Sec. II-B.3: breaks when capability is negotiable).
    HazardsSeparable,
    /// Situational frequencies are globally valid constants
    /// (Sec. II-B.4: they vary in time and space).
    FrequenciesGloballyValid,
}

impl CompletenessAssumption {
    /// All assumptions a classical HARA relies on.
    pub const ALL: [CompletenessAssumption; 4] = [
        CompletenessAssumption::SituationsComplete,
        CompletenessAssumption::ExposureIsGivenInput,
        CompletenessAssumption::HazardsSeparable,
        CompletenessAssumption::FrequenciesGloballyValid,
    ];

    /// The section of the paper that challenges this assumption for an ADS.
    pub fn challenged_in(self) -> &'static str {
        match self {
            CompletenessAssumption::SituationsComplete => "Sec. II-B.1",
            CompletenessAssumption::ExposureIsGivenInput => "Sec. II-B.2",
            CompletenessAssumption::HazardsSeparable => "Sec. II-B.3",
            CompletenessAssumption::FrequenciesGloballyValid => "Sec. II-B.4",
        }
    }
}

/// A classical HARA: a set of classified hazardous events and the safety
/// goals derived from them.
///
/// # Examples
///
/// ```
/// use qrn_hara::analysis::Hara;
/// use qrn_hara::hazard::{Guideword, Hazard};
/// use qrn_hara::severity::{Controllability, Exposure, Severity};
/// use qrn_hara::situation::{SituationDimension, SituationSpace};
/// use qrn_hara::asil::Asil;
///
/// let space = SituationSpace::new(vec![
///     SituationDimension::new("road", ["urban", "highway"]),
/// ]);
/// let hazard = Hazard::new("H1", "braking", Guideword::TooLittle);
///
/// let mut hara = Hara::new("brake-by-wire item");
/// for situation in space.iter() {
///     hara.add_event(qrn_hara::analysis::HazardousEvent::new(
///         hazard.clone(), situation,
///         Severity::S3, Exposure::E4, Controllability::C3,
///     ));
/// }
/// let goals = hara.safety_goals();
/// assert_eq!(goals.len(), 1);
/// assert_eq!(goals[0].asil, Asil::D);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hara {
    item: String,
    events: Vec<HazardousEvent>,
}

impl Hara {
    /// Creates an empty HARA for the named item.
    pub fn new(item: impl Into<String>) -> Self {
        Hara {
            item: item.into(),
            events: Vec::new(),
        }
    }

    /// The analysed item's name.
    pub fn item(&self) -> &str {
        &self.item
    }

    /// Adds a classified hazardous event.
    pub fn add_event(&mut self, event: HazardousEvent) {
        self.events.push(event);
    }

    /// The hazardous events recorded so far.
    pub fn events(&self) -> &[HazardousEvent] {
        &self.events
    }

    /// Derives one qualitative safety goal per hazard, at the maximum ASIL
    /// over that hazard's events (ISO 26262-3, clause 6.4.6.1). Hazards
    /// whose every event is QM produce no safety goal.
    pub fn safety_goals(&self) -> Vec<QualitativeSafetyGoal> {
        let mut per_hazard: BTreeMap<String, (Hazard, Asil, usize)> = BTreeMap::new();
        for ev in &self.events {
            let entry = per_hazard
                .entry(ev.hazard.id().to_string())
                .or_insert_with(|| (ev.hazard.clone(), Asil::QM, 0));
            entry.1 = entry.1.max(ev.asil());
            entry.2 += 1;
        }
        per_hazard
            .into_values()
            .filter(|(_, asil, _)| *asil > Asil::QM)
            .map(|(hazard, asil, event_count)| QualitativeSafetyGoal {
                id: format!("SG-{}", hazard.id()),
                hazard,
                asil,
                event_count,
            })
            .collect()
    }

    /// The highest ASIL over all events, or QM for an empty analysis.
    pub fn max_asil(&self) -> Asil {
        self.events
            .iter()
            .map(HazardousEvent::asil)
            .max()
            .unwrap_or(Asil::QM)
    }

    /// Count of events per ASIL, for reporting.
    pub fn asil_histogram(&self) -> BTreeMap<Asil, usize> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            *out.entry(ev.asil()).or_insert(0) += 1;
        }
        out
    }

    /// The assumptions this analysis rests on. Always all four — the point
    /// of exposing them is that a reviewer must discharge each, and for an
    /// ADS the paper argues they cannot all be discharged.
    pub fn completeness_assumptions(&self) -> &'static [CompletenessAssumption] {
        &CompletenessAssumption::ALL
    }

    /// Renders the HARA table as markdown, for review packages.
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "# HARA: {}\n", self.item).expect("string write");
        writeln!(out, "| hazard | situation | S | E | C | ASIL |").expect("string write");
        writeln!(out, "|---|---|---|---|---|---|").expect("string write");
        for ev in &self.events {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                ev.hazard,
                ev.situation,
                ev.severity,
                ev.exposure,
                ev.controllability,
                ev.asil(),
            )
            .expect("string write");
        }
        writeln!(out, "\n## Safety goals\n").expect("string write");
        for goal in self.safety_goals() {
            writeln!(out, "- {goal}").expect("string write");
        }
        writeln!(out, "\n## Completeness assumptions (to be discharged)\n").expect("string write");
        for assumption in self.completeness_assumptions() {
            writeln!(
                out,
                "- {assumption:?} — challenged for an ADS in {}",
                assumption.challenged_in()
            )
            .expect("string write");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::Guideword;
    use crate::situation::{SituationDimension, SituationSpace};

    fn situation(road: &str) -> OperationalSituation {
        SituationSpace::new(vec![SituationDimension::new("road", [road])])
            .iter()
            .next()
            .unwrap()
    }

    fn brake_hazard() -> Hazard {
        Hazard::new("H1", "braking", Guideword::TooLittle)
    }

    #[test]
    fn event_asil_uses_table_4() {
        let ev = HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S3,
            Exposure::E4,
            Controllability::C3,
        );
        assert_eq!(ev.asil(), Asil::D);
    }

    #[test]
    fn one_goal_per_hazard_at_max_asil() {
        let mut hara = Hara::new("item");
        hara.add_event(HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S3,
            Exposure::E4,
            Controllability::C3, // D
        ));
        hara.add_event(HazardousEvent::new(
            brake_hazard(),
            situation("rural"),
            Severity::S1,
            Exposure::E2,
            Controllability::C2, // QM
        ));
        hara.add_event(HazardousEvent::new(
            Hazard::new("H2", "steering", Guideword::Unintended),
            situation("urban"),
            Severity::S2,
            Exposure::E3,
            Controllability::C3, // B
        ));
        let goals = hara.safety_goals();
        assert_eq!(goals.len(), 2);
        let g1 = goals.iter().find(|g| g.id == "SG-H1").unwrap();
        assert_eq!(g1.asil, Asil::D);
        assert_eq!(g1.event_count, 2);
        let g2 = goals.iter().find(|g| g.id == "SG-H2").unwrap();
        assert_eq!(g2.asil, Asil::B);
    }

    #[test]
    fn all_qm_hazard_produces_no_goal() {
        let mut hara = Hara::new("item");
        hara.add_event(HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S1,
            Exposure::E1,
            Controllability::C1,
        ));
        assert!(hara.safety_goals().is_empty());
        assert_eq!(hara.max_asil(), Asil::QM);
    }

    #[test]
    fn histogram_counts_events() {
        let mut hara = Hara::new("item");
        for _ in 0..3 {
            hara.add_event(HazardousEvent::new(
                brake_hazard(),
                situation("urban"),
                Severity::S3,
                Exposure::E4,
                Controllability::C3,
            ));
        }
        let hist = hara.asil_histogram();
        assert_eq!(hist.get(&Asil::D), Some(&3));
    }

    #[test]
    fn assumptions_cover_all_four_critiques() {
        let hara = Hara::new("item");
        let sections: Vec<&str> = hara
            .completeness_assumptions()
            .iter()
            .map(|a| a.challenged_in())
            .collect();
        assert_eq!(
            sections,
            ["Sec. II-B.1", "Sec. II-B.2", "Sec. II-B.3", "Sec. II-B.4"]
        );
    }

    #[test]
    fn markdown_export_covers_events_goals_and_assumptions() {
        let mut hara = Hara::new("brake item");
        hara.add_event(HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S3,
            Exposure::E4,
            Controllability::C3,
        ));
        let doc = hara.render_markdown();
        for needle in [
            "# HARA: brake item",
            "| hazard | situation |",
            "ASIL D",
            "## Safety goals",
            "SG-H1",
            "## Completeness assumptions",
            "Sec. II-B.1",
        ] {
            assert!(doc.contains(needle), "missing {needle:?}");
        }
    }

    #[test]
    fn display_is_informative() {
        let ev = HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S3,
            Exposure::E4,
            Controllability::C3,
        );
        let text = ev.to_string();
        assert!(text.contains("ASIL D"));
        assert!(text.contains("braking"));
    }

    #[test]
    fn serde_round_trip() {
        let ev = HazardousEvent::new(
            brake_hazard(),
            situation("urban"),
            Severity::S2,
            Exposure::E3,
            Controllability::C2,
        );
        let back: HazardousEvent =
            serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(ev, back);
    }
}
