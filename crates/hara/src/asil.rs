//! ASIL determination (ISO 26262-3:2018 Table 4) and the quantitative risk
//! model behind the paper's Fig. 1.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::Frequency;

use crate::severity::{Controllability, Exposure, Severity};

/// Automotive Safety Integrity Level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Asil {
    /// Quality management: no safety requirement beyond normal quality
    /// processes.
    QM,
    /// ASIL A, the lowest integrity level.
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D, the highest integrity level.
    D,
}

impl Asil {
    /// All levels in increasing order of integrity.
    pub const ALL: [Asil; 5] = [Asil::QM, Asil::A, Asil::B, Asil::C, Asil::D];

    /// Indicative random-hardware-fault rate target associated with the
    /// level (the PMHF targets of ISO 26262-5 Table 6), or `None` for
    /// QM / ASIL A where the standard sets no target.
    ///
    /// Sec. V of the paper uses exactly these orders of magnitude when
    /// arguing that redundant "QM-range" channels can compose to ASIL-D
    /// -range integrity under a quantitative framework.
    pub fn random_hw_fault_target(self) -> Option<Frequency> {
        let per_hour = match self {
            Asil::QM | Asil::A => return None,
            Asil::B | Asil::C => 1e-7,
            Asil::D => 1e-8,
        };
        Some(Frequency::per_hour(per_hour).expect("static target rates are valid"))
    }

    /// Number of integrity steps above QM (QM → 0 … D → 4).
    pub fn rank(self) -> u8 {
        match self {
            Asil::QM => 0,
            Asil::A => 1,
            Asil::B => 2,
            Asil::C => 3,
            Asil::D => 4,
        }
    }
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asil::QM => f.write_str("QM"),
            Asil::A => f.write_str("ASIL A"),
            Asil::B => f.write_str("ASIL B"),
            Asil::C => f.write_str("ASIL C"),
            Asil::D => f.write_str("ASIL D"),
        }
    }
}

/// Determines the ASIL of a hazardous event from its S / E / C
/// classification, per ISO 26262-3:2018 Table 4.
///
/// The table is exactly reproduced by the level sum `S + E + C`:
/// 10 → D, 9 → C, 8 → B, 7 → A, below → QM; and any factor at level 0
/// (S0, E0 or C0) means no ASIL is assigned.
///
/// # Examples
///
/// ```
/// use qrn_hara::asil::{determine_asil, Asil};
/// use qrn_hara::severity::{Controllability, Exposure, Severity};
///
/// assert_eq!(determine_asil(Severity::S3, Exposure::E4, Controllability::C3), Asil::D);
/// assert_eq!(determine_asil(Severity::S1, Exposure::E1, Controllability::C1), Asil::QM);
/// ```
pub fn determine_asil(s: Severity, e: Exposure, c: Controllability) -> Asil {
    if s == Severity::S0 || e == Exposure::E0 || c == Controllability::C0 {
        return Asil::QM;
    }
    match s.level() + e.level() + c.level() {
        10 => Asil::D,
        9 => Asil::C,
        8 => Asil::B,
        7 => Asil::A,
        _ => Asil::QM,
    }
}

/// One row of the Fig. 1 risk-reduction waterfall: how the frequency of a
/// potential accident is reduced from the raw hazard rate down to the
/// acceptable level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskWaterfall {
    /// Severity of the potential accident.
    pub severity: Severity,
    /// Risk-reduction factor credited to limited exposure.
    pub exposure_reduction: f64,
    /// Risk-reduction factor credited to controllability.
    pub controllability_reduction: f64,
    /// The ASIL assigned to close the remaining gap.
    pub asil: Asil,
}

/// Computes the Fig. 1 waterfall for one hazardous event classification.
///
/// The reductions are the indicative fractions of the E and C classes: a
/// situation occurring 1% of the time (E3) cuts the hazard's accident
/// frequency by 100×, and a 90%-controllable hazard (C2) by a further 10×.
/// The residual gap to the severity's acceptable frequency is what the
/// ASIL's E/E risk reduction must close.
pub fn risk_waterfall(s: Severity, e: Exposure, c: Controllability) -> RiskWaterfall {
    RiskWaterfall {
        severity: s,
        exposure_reduction: if e.indicative_fraction() > 0.0 {
            1.0 / e.indicative_fraction()
        } else {
            f64::INFINITY
        },
        controllability_reduction: 1.0 / c.indicative_failure_probability(),
        asil: determine_asil(s, e, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full ISO 26262-3:2018 Table 4 (S1..S3 × E1..E4 × C1..C3),
    /// transcribed independently of the sum rule to guard against encoding
    /// mistakes.
    const TABLE4: [(u8, u8, u8, Asil); 36] = [
        (1, 1, 1, Asil::QM),
        (1, 1, 2, Asil::QM),
        (1, 1, 3, Asil::QM),
        (1, 2, 1, Asil::QM),
        (1, 2, 2, Asil::QM),
        (1, 2, 3, Asil::QM),
        (1, 3, 1, Asil::QM),
        (1, 3, 2, Asil::QM),
        (1, 3, 3, Asil::A),
        (1, 4, 1, Asil::QM),
        (1, 4, 2, Asil::A),
        (1, 4, 3, Asil::B),
        (2, 1, 1, Asil::QM),
        (2, 1, 2, Asil::QM),
        (2, 1, 3, Asil::QM),
        (2, 2, 1, Asil::QM),
        (2, 2, 2, Asil::QM),
        (2, 2, 3, Asil::A),
        (2, 3, 1, Asil::QM),
        (2, 3, 2, Asil::A),
        (2, 3, 3, Asil::B),
        (2, 4, 1, Asil::A),
        (2, 4, 2, Asil::B),
        (2, 4, 3, Asil::C),
        (3, 1, 1, Asil::QM),
        (3, 1, 2, Asil::QM),
        (3, 1, 3, Asil::A),
        (3, 2, 1, Asil::QM),
        (3, 2, 2, Asil::A),
        (3, 2, 3, Asil::B),
        (3, 3, 1, Asil::A),
        (3, 3, 2, Asil::B),
        (3, 3, 3, Asil::C),
        (3, 4, 1, Asil::B),
        (3, 4, 2, Asil::C),
        (3, 4, 3, Asil::D),
    ];

    fn severity(level: u8) -> Severity {
        Severity::ALL[level as usize]
    }

    fn exposure(level: u8) -> Exposure {
        Exposure::ALL[level as usize]
    }

    fn controllability(level: u8) -> Controllability {
        Controllability::ALL[level as usize]
    }

    #[test]
    fn matches_full_table_4() {
        for &(s, e, c, expect) in &TABLE4 {
            let got = determine_asil(severity(s), exposure(e), controllability(c));
            assert_eq!(got, expect, "S{s} E{e} C{c}");
        }
    }

    #[test]
    fn zero_levels_mean_no_asil() {
        assert_eq!(
            determine_asil(Severity::S0, Exposure::E4, Controllability::C3),
            Asil::QM
        );
        assert_eq!(
            determine_asil(Severity::S3, Exposure::E0, Controllability::C3),
            Asil::QM
        );
        assert_eq!(
            determine_asil(Severity::S3, Exposure::E4, Controllability::C0),
            Asil::QM
        );
    }

    #[test]
    fn asil_is_monotone_in_each_factor() {
        for s in 1..=3u8 {
            for e in 1..=4u8 {
                for c in 1..=3u8 {
                    let base = determine_asil(severity(s), exposure(e), controllability(c));
                    if s < 3 {
                        let up = determine_asil(severity(s + 1), exposure(e), controllability(c));
                        assert!(up >= base);
                    }
                    if e < 4 {
                        let up = determine_asil(severity(s), exposure(e + 1), controllability(c));
                        assert!(up >= base);
                    }
                    if c < 3 {
                        let up = determine_asil(severity(s), exposure(e), controllability(c + 1));
                        assert!(up >= base);
                    }
                }
            }
        }
    }

    #[test]
    fn hw_targets_match_iso_26262_5() {
        assert_eq!(Asil::QM.random_hw_fault_target(), None);
        assert_eq!(Asil::A.random_hw_fault_target(), None);
        assert_eq!(
            Asil::D.random_hw_fault_target().unwrap().as_per_hour(),
            1e-8
        );
        assert_eq!(
            Asil::B.random_hw_fault_target().unwrap().as_per_hour(),
            1e-7
        );
    }

    #[test]
    fn ranks_are_ordered() {
        for pair in Asil::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].rank() < pair[1].rank());
        }
    }

    #[test]
    fn waterfall_reductions_increase_for_rarer_situations() {
        let common = risk_waterfall(Severity::S3, Exposure::E4, Controllability::C3);
        let rare = risk_waterfall(Severity::S3, Exposure::E1, Controllability::C3);
        assert!(rare.exposure_reduction > common.exposure_reduction);
        assert!(rare.asil < common.asil);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Asil::QM.to_string(), "QM");
        assert_eq!(Asil::D.to_string(), "ASIL D");
    }
}
