//! HAZOP-style hazard identification over item functions.
//!
//! ISO 26262 hazard identification commonly applies HAZOP (IEC 61882)
//! guidewords to each function of the item: "braking" × "too little" →
//! "insufficient deceleration". The paper argues this failure-mode framing
//! fits a conventional driver-assistance feature but not an ADS whose
//! promise is the whole dynamic driving task (Sec. II-B.3); this module
//! exists so the baseline can be run and compared.

use std::fmt;

use serde::{Deserialize, Serialize};

/// HAZOP guideword applied to an item function (IEC 61882 selection
/// commonly used in automotive practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Guideword {
    /// The function is not provided when demanded (omission).
    NotProvided,
    /// The function is provided when not demanded (commission).
    Unintended,
    /// The function is provided with too much magnitude.
    TooMuch,
    /// The function is provided with too little magnitude.
    TooLittle,
    /// The function is provided too early.
    TooEarly,
    /// The function is provided too late.
    TooLate,
    /// The function acts in the wrong direction.
    Reversed,
    /// The function is stuck at its current output.
    Stuck,
}

impl Guideword {
    /// All guidewords, in declaration order.
    pub const ALL: [Guideword; 8] = [
        Guideword::NotProvided,
        Guideword::Unintended,
        Guideword::TooMuch,
        Guideword::TooLittle,
        Guideword::TooEarly,
        Guideword::TooLate,
        Guideword::Reversed,
        Guideword::Stuck,
    ];
}

impl fmt::Display for Guideword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Guideword::NotProvided => "not provided",
            Guideword::Unintended => "unintended",
            Guideword::TooMuch => "too much",
            Guideword::TooLittle => "too little",
            Guideword::TooEarly => "too early",
            Guideword::TooLate => "too late",
            Guideword::Reversed => "reversed",
            Guideword::Stuck => "stuck",
        };
        f.write_str(text)
    }
}

/// A malfunction-level hazard: a function of the item combined with a
/// deviation guideword.
///
/// # Examples
///
/// ```
/// use qrn_hara::hazard::{Guideword, Hazard};
///
/// let h = Hazard::new("H1", "braking", Guideword::TooLittle)
///     .with_description("deceleration limited to 4 m/s^2");
/// assert_eq!(h.to_string(), "H1: braking too little");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hazard {
    id: String,
    function: String,
    guideword: Guideword,
    description: String,
}

impl Hazard {
    /// Creates a hazard for `function` deviating per `guideword`.
    pub fn new(id: impl Into<String>, function: impl Into<String>, guideword: Guideword) -> Self {
        Hazard {
            id: id.into(),
            function: function.into(),
            guideword,
            description: String::new(),
        }
    }

    /// Attaches a free-text description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The hazard's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The item function that deviates.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The deviation guideword.
    pub fn guideword(&self) -> Guideword {
        self.guideword
    }

    /// The free-text description (possibly empty).
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} {}", self.id, self.function, self.guideword)
    }
}

/// Generates the full HAZOP hazard matrix for a set of item functions:
/// one hazard per (function, guideword) pair, with ids `H1, H2, …`.
///
/// # Examples
///
/// ```
/// use qrn_hara::hazard::hazop_matrix;
///
/// let hazards = hazop_matrix(&["braking", "steering"]);
/// assert_eq!(hazards.len(), 16); // 2 functions x 8 guidewords
/// ```
pub fn hazop_matrix(functions: &[&str]) -> Vec<Hazard> {
    let mut out = Vec::with_capacity(functions.len() * Guideword::ALL.len());
    let mut n = 0;
    for function in functions {
        for gw in Guideword::ALL {
            n += 1;
            out.push(Hazard::new(format!("H{n}"), *function, gw));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let h = Hazard::new("H9", "steering", Guideword::Reversed)
            .with_description("left command yields right torque");
        assert_eq!(h.id(), "H9");
        assert_eq!(h.function(), "steering");
        assert_eq!(h.guideword(), Guideword::Reversed);
        assert!(h.description().contains("torque"));
    }

    #[test]
    fn matrix_covers_all_pairs() {
        let hazards = hazop_matrix(&["braking", "steering", "propulsion"]);
        assert_eq!(hazards.len(), 24);
        // ids unique
        let mut ids: Vec<&str> = hazards.iter().map(Hazard::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        // every guideword appears for every function
        for f in ["braking", "steering", "propulsion"] {
            for gw in Guideword::ALL {
                assert!(hazards
                    .iter()
                    .any(|h| h.function() == f && h.guideword() == gw));
            }
        }
    }

    #[test]
    fn empty_function_list_is_empty_matrix() {
        assert!(hazop_matrix(&[]).is_empty());
    }

    #[test]
    fn display_reads_naturally() {
        let h = Hazard::new("H1", "braking", Guideword::TooLittle);
        assert_eq!(h.to_string(), "H1: braking too little");
    }

    #[test]
    fn serde_round_trip() {
        let h = Hazard::new("H1", "braking", Guideword::TooLate);
        let back: Hazard = serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(h, back);
    }
}
