//! ASIL decomposition and inheritance (ISO 26262-9), plus the bookkeeping
//! that exposes their limits for complex ADS architectures.
//!
//! Sec. V of the paper makes two observations this module supports
//! quantitatively (together with `qrn-quant`):
//!
//! * **Decomposition is coarse.** The standard only allows a fixed menu of
//!   splits (D → C+A | B+B | D+QM, …) over *independent* elements. It
//!   cannot credit, say, three diverse QM-grade perception channels whose
//!   combined failure rate is lower than an ASIL-D target.
//! * **Inheritance ignores fan-out.** Every element a safety goal's
//!   realization touches inherits the full ASIL; with thousands of
//!   contributing elements the implicit "limited complexity" assumption
//!   breaks, yet the qualitative calculus never notices.

use serde::{Deserialize, Serialize};

use crate::asil::Asil;

/// The decomposition schemes ISO 26262-9 clause 5 permits, as (parent,
/// redundant requirement pair) relations.
///
/// Each pair must be allocated to sufficiently independent elements; the
/// notation "B(D)" of the standard (decomposed ASIL with original in
/// parentheses) is represented by the pair members.
pub fn valid_decompositions(parent: Asil) -> Vec<(Asil, Asil)> {
    match parent {
        Asil::QM => vec![],
        Asil::A => vec![(Asil::A, Asil::QM)],
        Asil::B => vec![(Asil::B, Asil::QM), (Asil::A, Asil::A)],
        Asil::C => vec![(Asil::C, Asil::QM), (Asil::B, Asil::A)],
        Asil::D => vec![(Asil::D, Asil::QM), (Asil::C, Asil::A), (Asil::B, Asil::B)],
    }
}

/// Returns `true` when decomposing `parent` into `(a, b)` (in either order)
/// is one of the schemes permitted by ISO 26262-9.
///
/// # Examples
///
/// ```
/// use qrn_hara::asil::Asil;
/// use qrn_hara::decomposition::is_valid_decomposition;
///
/// assert!(is_valid_decomposition(Asil::D, Asil::B, Asil::B));
/// assert!(is_valid_decomposition(Asil::D, Asil::C, Asil::A));
/// assert!(!is_valid_decomposition(Asil::D, Asil::A, Asil::A));
/// ```
pub fn is_valid_decomposition(parent: Asil, a: Asil, b: Asil) -> bool {
    valid_decompositions(parent)
        .into_iter()
        .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
}

/// A node in a qualitative refinement tree: a requirement with an ASIL,
/// refined into children that either *inherit* the ASIL or split it by a
/// permitted *decomposition*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// Requirement identifier.
    pub id: String,
    /// The ASIL carried by this requirement.
    pub asil: Asil,
    /// Refined sub-requirements.
    pub children: Vec<Requirement>,
}

/// Error applying a decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompositionError {
    /// Parent ASIL that was being decomposed.
    pub parent: Asil,
    /// The attempted pair.
    pub attempted: (Asil, Asil),
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cannot be decomposed into {} + {} under ISO 26262-9",
            self.parent, self.attempted.0, self.attempted.1
        )
    }
}

impl std::error::Error for DecompositionError {}

impl Requirement {
    /// Creates a leaf requirement.
    pub fn new(id: impl Into<String>, asil: Asil) -> Self {
        Requirement {
            id: id.into(),
            asil,
            children: Vec::new(),
        }
    }

    /// Refines this requirement into `n` children that all inherit the
    /// parent ASIL (ISO 26262-8 clause 6: a safety requirement inherits the
    /// ASIL of the requirement it is derived from).
    pub fn inherit(&mut self, n: usize) -> &mut Self {
        for i in 0..n {
            self.children.push(Requirement::new(
                format!("{}.{}", self.id, i + 1),
                self.asil,
            ));
        }
        self
    }

    /// Refines this requirement into a redundant pair per a permitted
    /// decomposition scheme.
    ///
    /// # Errors
    ///
    /// Returns [`DecompositionError`] when `(a, b)` is not a permitted
    /// split of the parent ASIL.
    pub fn decompose(&mut self, a: Asil, b: Asil) -> Result<&mut Self, DecompositionError> {
        if !is_valid_decomposition(self.asil, a, b) {
            return Err(DecompositionError {
                parent: self.asil,
                attempted: (a, b),
            });
        }
        self.children
            .push(Requirement::new(format!("{}.r1", self.id), a));
        self.children
            .push(Requirement::new(format!("{}.r2", self.id), b));
        Ok(self)
    }

    /// All leaf requirements of the tree.
    pub fn leaves(&self) -> Vec<&Requirement> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Requirement>) {
        if self.children.is_empty() {
            out.push(self);
        } else {
            for c in &self.children {
                c.collect_leaves(out);
            }
        }
    }

    /// Number of leaf requirements carrying at least the given ASIL.
    ///
    /// This is the Sec.-V blow-up metric: a goal refined by inheritance into
    /// `n` elements yields `n` leaves still carrying the full ASIL, however
    /// large `n` grows — the qualitative calculus places no bound and loses
    /// no strength, which is exactly the implicit assumption the paper
    /// challenges.
    pub fn leaves_at_or_above(&self, asil: Asil) -> usize {
        self.leaves().iter().filter(|r| r.asil >= asil).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_menu_matches_standard() {
        assert_eq!(
            valid_decompositions(Asil::D),
            vec![(Asil::D, Asil::QM), (Asil::C, Asil::A), (Asil::B, Asil::B)]
        );
        assert_eq!(
            valid_decompositions(Asil::C),
            vec![(Asil::C, Asil::QM), (Asil::B, Asil::A)]
        );
        assert_eq!(
            valid_decompositions(Asil::B),
            vec![(Asil::B, Asil::QM), (Asil::A, Asil::A)]
        );
        assert_eq!(valid_decompositions(Asil::A), vec![(Asil::A, Asil::QM)]);
        assert!(valid_decompositions(Asil::QM).is_empty());
    }

    #[test]
    fn validity_is_order_insensitive() {
        assert!(is_valid_decomposition(Asil::D, Asil::A, Asil::C));
        assert!(is_valid_decomposition(Asil::D, Asil::C, Asil::A));
        assert!(!is_valid_decomposition(Asil::C, Asil::B, Asil::B));
    }

    #[test]
    fn decompose_rejects_illegal_split() {
        let mut req = Requirement::new("SG1", Asil::D);
        let err = req.decompose(Asil::A, Asil::A).unwrap_err();
        assert_eq!(err.parent, Asil::D);
        assert!(err.to_string().contains("ASIL D"));
    }

    #[test]
    fn decompose_builds_redundant_pair() {
        let mut req = Requirement::new("SG1", Asil::D);
        req.decompose(Asil::B, Asil::B).unwrap();
        assert_eq!(req.children.len(), 2);
        assert!(req.children.iter().all(|c| c.asil == Asil::B));
    }

    #[test]
    fn inheritance_never_weakens() {
        let mut req = Requirement::new("SG1", Asil::D);
        req.inherit(1000);
        assert_eq!(req.leaves().len(), 1000);
        assert_eq!(req.leaves_at_or_above(Asil::D), 1000);
    }

    #[test]
    fn nested_refinement_counts_leaves() {
        let mut req = Requirement::new("SG1", Asil::D);
        req.decompose(Asil::C, Asil::A).unwrap();
        req.children[0].inherit(3); // three ASIL C leaves
        assert_eq!(req.leaves().len(), 4);
        assert_eq!(req.leaves_at_or_above(Asil::C), 3);
        assert_eq!(req.leaves_at_or_above(Asil::A), 4);
        assert_eq!(req.leaves_at_or_above(Asil::D), 0);
    }

    #[test]
    fn leaf_ids_track_paths() {
        let mut req = Requirement::new("SG1", Asil::B);
        req.inherit(2);
        let ids: Vec<&str> = req.leaves().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["SG1.1", "SG1.2"]);
    }

    #[test]
    fn serde_round_trip() {
        let mut req = Requirement::new("SG1", Asil::D);
        req.decompose(Asil::B, Asil::B).unwrap();
        let back: Requirement =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(req, back);
    }
}
