//! Operational-situation spaces and their combinatorial growth.
//!
//! A classical HARA enumerates the operational situations in which each
//! hazard could occur. Sec. II-B.1 of the paper argues this is intractable
//! for an ADS: "the number of situations to consider is virtually infinite,
//! unless the feature has a very limited ODD". This module makes the
//! argument executable: a [`SituationSpace`] is a cartesian product of
//! situation dimensions, its [`SituationSpace::cardinality`] is the exact
//! number of distinct situations, and [`SituationSpace::iter`] enumerates
//! them (lazily — actually walking the product is precisely what becomes
//! infeasible, and the experiment binary shows the wall clamping down).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One dimension of the operational-situation classification, e.g.
/// `road_type ∈ {urban, rural, highway}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SituationDimension {
    name: String,
    options: Vec<String>,
}

impl SituationDimension {
    /// Creates a dimension with the given option labels.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty — a dimension with no options would
    /// make the whole space empty, which is never what a HARA means.
    pub fn new<I, S>(name: impl Into<String>, options: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let options: Vec<String> = options.into_iter().map(Into::into).collect();
        assert!(
            !options.is_empty(),
            "a situation dimension needs at least one option"
        );
        SituationDimension {
            name: name.into(),
            options,
        }
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's option labels.
    pub fn options(&self) -> &[String] {
        &self.options
    }
}

/// A concrete operational situation: one option chosen per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperationalSituation {
    /// `(dimension name, chosen option)` pairs in dimension order.
    pub choices: Vec<(String, String)>,
}

impl fmt::Display for OperationalSituation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .choices
            .iter()
            .map(|(d, o)| format!("{d}={o}"))
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

/// A cartesian product of situation dimensions.
///
/// # Examples
///
/// ```
/// use qrn_hara::situation::{SituationDimension, SituationSpace};
///
/// let space = SituationSpace::new(vec![
///     SituationDimension::new("road", ["urban", "rural", "highway"]),
///     SituationDimension::new("weather", ["dry", "wet", "snow", "fog"]),
/// ]);
/// assert_eq!(space.cardinality(), 12);
/// assert_eq!(space.iter().count(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SituationSpace {
    dimensions: Vec<SituationDimension>,
}

impl SituationSpace {
    /// Creates a space over the given dimensions.
    pub fn new(dimensions: Vec<SituationDimension>) -> Self {
        SituationSpace { dimensions }
    }

    /// The dimensions of the space.
    pub fn dimensions(&self) -> &[SituationDimension] {
        &self.dimensions
    }

    /// Exact number of distinct situations, saturating at `u128::MAX`.
    ///
    /// The saturation is not theoretical: 40 dimensions of 10 options each
    /// already exceed `u128` when combined with a second such space.
    pub fn cardinality(&self) -> u128 {
        self.dimensions
            .iter()
            .fold(1u128, |acc, d| acc.saturating_mul(d.options.len() as u128))
    }

    /// Lazily enumerates every situation in lexicographic order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            space: self,
            indices: vec![0; self.dimensions.len()],
            done: self.dimensions.is_empty(),
            first: true,
        }
    }

    /// The situation at a given lexicographic index, or `None` when out of
    /// range. Useful for sampling huge spaces without enumerating them.
    pub fn situation_at(&self, mut index: u128) -> Option<OperationalSituation> {
        if index >= self.cardinality() {
            return None;
        }
        let mut choices = Vec::with_capacity(self.dimensions.len());
        for dim in self.dimensions.iter().rev() {
            let n = dim.options.len() as u128;
            let choice = (index % n) as usize;
            index /= n;
            choices.push((dim.name.clone(), dim.options[choice].clone()));
        }
        choices.reverse();
        Some(OperationalSituation { choices })
    }
}

/// Lazy iterator over a [`SituationSpace`]; see [`SituationSpace::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    space: &'a SituationSpace,
    indices: Vec<usize>,
    done: bool,
    first: bool,
}

impl Iterator for Iter<'_> {
    type Item = OperationalSituation;

    fn next(&mut self) -> Option<OperationalSituation> {
        if self.done {
            return None;
        }
        if !self.first {
            // Advance odometer-style from the last dimension.
            let mut pos = self.indices.len();
            loop {
                if pos == 0 {
                    self.done = true;
                    return None;
                }
                pos -= 1;
                self.indices[pos] += 1;
                if self.indices[pos] < self.space.dimensions[pos].options.len() {
                    break;
                }
                self.indices[pos] = 0;
            }
        }
        self.first = false;
        let choices = self
            .space
            .dimensions
            .iter()
            .zip(&self.indices)
            .map(|(d, &i)| (d.name.clone(), d.options[i].clone()))
            .collect();
        Some(OperationalSituation { choices })
    }
}

/// A representative catalogue of ADS situation dimensions, used by the
/// intractability experiment. `detail` scales the option counts: even at
/// modest detail the product is astronomically beyond enumeration.
pub fn ads_situation_dimensions(detail: usize) -> Vec<SituationDimension> {
    let detail = detail.max(1);
    let numbered = |prefix: &str, n: usize| -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    };
    vec![
        SituationDimension::new("road_type", numbered("road", 3 * detail)),
        SituationDimension::new("speed_zone", numbered("zone", 4 * detail)),
        SituationDimension::new("weather", numbered("weather", 3 * detail)),
        SituationDimension::new("lighting", numbered("light", 2 * detail)),
        SituationDimension::new("surface", numbered("surface", 3 * detail)),
        SituationDimension::new("traffic_density", numbered("density", 3 * detail)),
        SituationDimension::new("lead_vehicle", numbered("lead", 4 * detail)),
        SituationDimension::new("vru_presence", numbered("vru", 4 * detail)),
        SituationDimension::new("junction_type", numbered("junction", 5 * detail)),
        SituationDimension::new("road_geometry", numbered("geometry", 4 * detail)),
        SituationDimension::new("work_zone", numbered("work", 2 * detail)),
        SituationDimension::new("special_event", numbered("event", 3 * detail)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> SituationSpace {
        SituationSpace::new(vec![
            SituationDimension::new("road", ["urban", "rural"]),
            SituationDimension::new("weather", ["dry", "wet", "snow"]),
        ])
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(small_space().cardinality(), 6);
    }

    #[test]
    fn iterator_yields_exactly_cardinality_unique_items() {
        let space = small_space();
        let all: Vec<OperationalSituation> = space.iter().collect();
        assert_eq!(all.len(), 6);
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        // first and last in lexicographic order
        assert_eq!(all[0].choices[0].1, "urban");
        assert_eq!(all[0].choices[1].1, "dry");
        assert_eq!(all[5].choices[0].1, "rural");
        assert_eq!(all[5].choices[1].1, "snow");
    }

    #[test]
    fn situation_at_matches_iteration_order() {
        let space = small_space();
        for (i, situation) in space.iter().enumerate() {
            assert_eq!(space.situation_at(i as u128), Some(situation));
        }
        assert_eq!(space.situation_at(6), None);
    }

    #[test]
    fn empty_space_yields_nothing() {
        let space = SituationSpace::new(vec![]);
        assert_eq!(space.cardinality(), 1); // the empty product
        assert_eq!(space.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn dimension_needs_options() {
        SituationDimension::new("empty", Vec::<String>::new());
    }

    #[test]
    fn cardinality_saturates_instead_of_overflowing() {
        let dims: Vec<SituationDimension> = (0..50)
            .map(|i| SituationDimension::new(format!("d{i}"), (0..1000).map(|j| j.to_string())))
            .collect();
        let space = SituationSpace::new(dims);
        assert_eq!(space.cardinality(), u128::MAX);
    }

    #[test]
    fn ads_dimensions_explode_combinatorially() {
        let d1 = SituationSpace::new(ads_situation_dimensions(1));
        let d2 = SituationSpace::new(ads_situation_dimensions(2));
        assert!(d1.cardinality() > 1_000_000);
        // doubling per-dimension detail multiplies cardinality by 2^12
        assert_eq!(d2.cardinality() / d1.cardinality(), 1 << 12);
    }

    #[test]
    fn display_reads_naturally() {
        let s = small_space().situation_at(0).unwrap();
        assert_eq!(s.to_string(), "[road=urban, weather=dry]");
    }

    #[test]
    fn serde_round_trip() {
        let space = small_space();
        let back: SituationSpace =
            serde_json::from_str(&serde_json::to_string(&space).unwrap()).unwrap();
        assert_eq!(space, back);
    }
}
