//! The qualitative S / E / C classification of ISO 26262-3:2018.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Severity of potential harm (ISO 26262-3, clause 6.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// No injuries.
    S0,
    /// Light and moderate injuries.
    S1,
    /// Severe and life-threatening injuries (survival probable).
    S2,
    /// Life-threatening injuries (survival uncertain), fatal injuries.
    S3,
}

impl Severity {
    /// All severity classes in increasing order.
    pub const ALL: [Severity; 4] = [Severity::S0, Severity::S1, Severity::S2, Severity::S3];

    /// Numeric level (S0 → 0 … S3 → 3) used by the ASIL determination sum.
    pub fn level(self) -> u8 {
        match self {
            Severity::S0 => 0,
            Severity::S1 => 1,
            Severity::S2 => 2,
            Severity::S3 => 3,
        }
    }

    /// Standard description of the class.
    pub fn description(self) -> &'static str {
        match self {
            Severity::S0 => "no injuries",
            Severity::S1 => "light and moderate injuries",
            Severity::S2 => "severe injuries, survival probable",
            Severity::S3 => "life-threatening or fatal injuries",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.level())
    }
}

/// Probability of exposure to an operational situation (ISO 26262-3,
/// clause 6.4.3.6). E1–E4 map informally onto fractions of operating time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Exposure {
    /// Incredible: not further considered.
    E0,
    /// Very low probability.
    E1,
    /// Low probability (once a year or less for most drivers).
    E2,
    /// Medium probability (once a month or more for an average driver).
    E3,
    /// High probability (during almost every drive on average).
    E4,
}

impl Exposure {
    /// All exposure classes in increasing order.
    pub const ALL: [Exposure; 5] = [
        Exposure::E0,
        Exposure::E1,
        Exposure::E2,
        Exposure::E3,
        Exposure::E4,
    ];

    /// Numeric level (E0 → 0 … E4 → 4) used by the ASIL determination sum.
    pub fn level(self) -> u8 {
        match self {
            Exposure::E0 => 0,
            Exposure::E1 => 1,
            Exposure::E2 => 2,
            Exposure::E3 => 3,
            Exposure::E4 => 4,
        }
    }

    /// Indicative fraction of operating time for the class, following the
    /// informative annex of ISO 26262-3 (E4 > 10%, each step roughly an
    /// order of magnitude). Used only to draw the Fig. 1 waterfall.
    pub fn indicative_fraction(self) -> f64 {
        match self {
            Exposure::E0 => 0.0,
            Exposure::E1 => 1e-4,
            Exposure::E2 => 1e-3,
            Exposure::E3 => 1e-2,
            Exposure::E4 => 1e-1,
        }
    }

    /// Standard description of the class.
    pub fn description(self) -> &'static str {
        match self {
            Exposure::E0 => "incredible",
            Exposure::E1 => "very low probability",
            Exposure::E2 => "low probability",
            Exposure::E3 => "medium probability",
            Exposure::E4 => "high probability",
        }
    }
}

impl fmt::Display for Exposure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.level())
    }
}

/// Controllability by the driver or other persons at risk (ISO 26262-3,
/// clause 6.4.3.8).
///
/// The paper notes this factor is already awkward for an ADS: "human
/// passengers would not be ready and able to mitigate a failure" (Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Controllability {
    /// Controllable in general.
    C0,
    /// Simply controllable (99% or more of drivers can act to avoid harm).
    C1,
    /// Normally controllable (90% or more).
    C2,
    /// Difficult to control or uncontrollable (fewer than 90%).
    C3,
}

impl Controllability {
    /// All controllability classes in increasing order of difficulty.
    pub const ALL: [Controllability; 4] = [
        Controllability::C0,
        Controllability::C1,
        Controllability::C2,
        Controllability::C3,
    ];

    /// Numeric level (C0 → 0 … C3 → 3) used by the ASIL determination sum.
    pub fn level(self) -> u8 {
        match self {
            Controllability::C0 => 0,
            Controllability::C1 => 1,
            Controllability::C2 => 2,
            Controllability::C3 => 3,
        }
    }

    /// Indicative probability that the persons involved *fail* to control
    /// the situation. Used only to draw the Fig. 1 waterfall.
    pub fn indicative_failure_probability(self) -> f64 {
        match self {
            Controllability::C0 => 1e-3,
            Controllability::C1 => 1e-2,
            Controllability::C2 => 1e-1,
            Controllability::C3 => 1.0,
        }
    }

    /// Standard description of the class.
    pub fn description(self) -> &'static str {
        match self {
            Controllability::C0 => "controllable in general",
            Controllability::C1 => "simply controllable",
            Controllability::C2 => "normally controllable",
            Controllability::C3 => "difficult to control or uncontrollable",
        }
    }
}

impl fmt::Display for Controllability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_levels() {
        assert!(Severity::S0 < Severity::S3);
        assert!(Exposure::E1 < Exposure::E4);
        assert!(Controllability::C1 < Controllability::C3);
    }

    #[test]
    fn levels_are_dense() {
        for (i, s) in Severity::ALL.iter().enumerate() {
            assert_eq!(s.level() as usize, i);
        }
        for (i, e) in Exposure::ALL.iter().enumerate() {
            assert_eq!(e.level() as usize, i);
        }
        for (i, c) in Controllability::ALL.iter().enumerate() {
            assert_eq!(c.level() as usize, i);
        }
    }

    #[test]
    fn exposure_fractions_monotone() {
        let mut prev = -1.0;
        for e in Exposure::ALL {
            assert!(e.indicative_fraction() > prev || e == Exposure::E0);
            prev = e.indicative_fraction();
        }
    }

    #[test]
    fn controllability_failure_probability_monotone() {
        let mut prev = 0.0;
        for c in Controllability::ALL {
            assert!(c.indicative_failure_probability() > prev);
            prev = c.indicative_failure_probability();
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Severity::S2.to_string(), "S2");
        assert_eq!(Exposure::E4.to_string(), "E4");
        assert_eq!(Controllability::C3.to_string(), "C3");
    }

    #[test]
    fn descriptions_nonempty() {
        for s in Severity::ALL {
            assert!(!s.description().is_empty());
        }
        for e in Exposure::ALL {
            assert!(!e.description().is_empty());
        }
        for c in Controllability::ALL {
            assert!(!c.description().is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        let s: Severity =
            serde_json::from_str(&serde_json::to_string(&Severity::S3).unwrap()).unwrap();
        assert_eq!(s, Severity::S3);
    }
}
