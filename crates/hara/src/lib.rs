//! ISO 26262:2018 hazard analysis and risk assessment (HARA) — the
//! *baseline* the QRN paper argues against.
//!
//! The Quantitative Risk Norm is proposed as a *tailoring* that replaces
//! this classical activity for an ADS, so a faithful reproduction has to
//! contain the thing being replaced: the qualitative severity / exposure /
//! controllability (S/E/C) classification, the ASIL determination table,
//! the hazardous-event elicitation over operational situations, and the
//! ASIL decomposition and inheritance rules whose shortcomings Sec. V of
//! the paper discusses.
//!
//! Two modules directly power paper artefacts:
//!
//! * [`situation`] — cartesian operational-situation spaces, whose
//!   cardinality explosion is the paper's intractability argument
//!   (Sec. II-B.1, experiment `exp_intractability`);
//! * [`asil`] — the risk model behind the paper's Fig. 1 (acceptable
//!   frequency decreasing with severity, with exposure / controllability /
//!   ASIL as successive risk-reduction steps).
//!
//! # Examples
//!
//! ```
//! use qrn_hara::asil::{determine_asil, Asil};
//! use qrn_hara::severity::{Controllability, Exposure, Severity};
//!
//! // The classic worst case: life-threatening, high exposure, uncontrollable.
//! let asil = determine_asil(Severity::S3, Exposure::E4, Controllability::C3);
//! assert_eq!(asil, Asil::D);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod asil;
pub mod decomposition;
pub mod hazard;
pub mod severity;
pub mod situation;

pub use analysis::{Hara, HazardousEvent, QualitativeSafetyGoal};
pub use asil::{determine_asil, Asil};
pub use hazard::{Guideword, Hazard};
pub use severity::{Controllability, Exposure, Severity};
pub use situation::{OperationalSituation, SituationDimension, SituationSpace};

#[cfg(test)]
mod proptests;
