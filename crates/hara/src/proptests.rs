//! Property-based tests for the HARA baseline invariants.

use proptest::prelude::*;

use crate::asil::{determine_asil, Asil};
use crate::decomposition::{is_valid_decomposition, valid_decompositions, Requirement};
use crate::severity::{Controllability, Exposure, Severity};
use crate::situation::{SituationDimension, SituationSpace};

fn severity() -> impl Strategy<Value = Severity> {
    proptest::sample::select(Severity::ALL.to_vec())
}

fn exposure() -> impl Strategy<Value = Exposure> {
    proptest::sample::select(Exposure::ALL.to_vec())
}

fn controllability() -> impl Strategy<Value = Controllability> {
    proptest::sample::select(Controllability::ALL.to_vec())
}

fn asil() -> impl Strategy<Value = Asil> {
    proptest::sample::select(Asil::ALL.to_vec())
}

fn space() -> impl Strategy<Value = SituationSpace> {
    proptest::collection::vec(1usize..5, 1..5).prop_map(|sizes| {
        SituationSpace::new(
            sizes
                .into_iter()
                .enumerate()
                .map(|(i, n)| {
                    SituationDimension::new(format!("d{i}"), (0..n).map(|j| format!("o{j}")))
                })
                .collect(),
        )
    })
}

proptest! {
    /// ASIL never decreases when any single factor increases.
    #[test]
    fn asil_is_monotone(s in severity(), e in exposure(), c in controllability()) {
        let base = determine_asil(s, e, c);
        for s2 in Severity::ALL.into_iter().filter(|x| *x >= s) {
            prop_assert!(determine_asil(s2, e, c) >= base);
        }
        for e2 in Exposure::ALL.into_iter().filter(|x| *x >= e) {
            prop_assert!(determine_asil(s, e2, c) >= base);
        }
        for c2 in Controllability::ALL.into_iter().filter(|x| *x >= c) {
            prop_assert!(determine_asil(s, e, c2) >= base);
        }
    }

    /// Any zero factor kills the ASIL entirely.
    #[test]
    fn zero_factor_means_qm(e in exposure(), c in controllability()) {
        prop_assert_eq!(determine_asil(Severity::S0, e, c), Asil::QM);
    }

    /// Every permitted decomposition pair is symmetric-validated and never
    /// produces a member above the parent.
    #[test]
    fn decompositions_never_exceed_parent(parent in asil()) {
        for (a, b) in valid_decompositions(parent) {
            prop_assert!(a <= parent);
            prop_assert!(b <= parent);
            prop_assert!(is_valid_decomposition(parent, a, b));
            prop_assert!(is_valid_decomposition(parent, b, a));
        }
    }

    /// Inheritance produces exactly n leaves, all at the parent ASIL.
    #[test]
    fn inheritance_preserves_asil(parent in asil(), n in 1usize..200) {
        let mut requirement = Requirement::new("SG", parent);
        requirement.inherit(n);
        prop_assert_eq!(requirement.leaves().len(), n);
        prop_assert!(requirement.leaves().iter().all(|l| l.asil == parent));
    }

    /// A situation space's iterator yields exactly `cardinality()` unique
    /// situations, and `situation_at` agrees with iteration order.
    #[test]
    fn enumeration_matches_cardinality(space in space()) {
        let all: Vec<_> = space.iter().collect();
        prop_assert_eq!(all.len() as u128, space.cardinality());
        let mut dedup = all.clone();
        dedup.sort_by_key(|s| format!("{s}"));
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len());
        for (i, situation) in all.iter().enumerate() {
            let at = space.situation_at(i as u128);
            prop_assert_eq!(at.as_ref(), Some(situation));
        }
        prop_assert_eq!(space.situation_at(space.cardinality()), None);
    }
}
