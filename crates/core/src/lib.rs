//! The Quantitative Risk Norm (QRN): the primary contribution of
//! *"The Quantitative Risk Norm — A Proposed Tailoring of HARA for ADS"*
//! (Warg et al., DSN-W/SSIV 2020).
//!
//! The QRN method replaces the qualitative hazard analysis of ISO 26262
//! with a quantitative pipeline, and this crate implements each stage as a
//! first-class, checkable object:
//!
//! 1. **[`consequence`] / [`norm`]** — consequence classes spanning quality
//!    (scared pedestrian, material damage) *and* safety (injuries,
//!    fatalities), each with a strict acceptable frequency budget
//!    (the paper's Figs. 2–3).
//! 2. **[`object`] / [`incident`] / [`classification`]** — incidents are
//!    partitioned into incident types, "an interaction between ego vehicle
//!    and `<object_type>` within `<tolerance_margin>`", organised in a
//!    classification that is **MECE by construction** (mutually exclusive,
//!    collectively exhaustive — the paper's Fig. 4) and verified by probing.
//! 3. **[`allocation`]** — each incident type gets a frequency budget and
//!    contribution shares into consequence classes; the fulfilment
//!    inequality (the paper's Eq. 1) `Σ_k f(v_j, I_k) ≤ f_acc(v_j)` is
//!    checked per class, and solvers distribute budgets automatically.
//! 4. **[`safety_goal`]** — every incident type becomes one safety goal
//!    with a quantitative integrity attribute, rendered exactly like the
//!    paper's *SG-I2*, together with a completeness certificate tying the
//!    goal set to the MECE leaves.
//! 5. **[`verification`]** — measured incident counts over fleet exposure
//!    turn into statistically sound verdicts per safety goal and per
//!    consequence class (exact Poisson upper bounds from `qrn-stats`).
//!
//! # Quickstart
//!
//! ```
//! use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let norm = paper_norm()?;
//! let classification = paper_classification()?;
//! let allocation = paper_allocation(&classification)?;
//!
//! // Eq. (1): every consequence class stays within its budget.
//! let report = allocation.check(&norm)?;
//! assert!(report.is_fulfilled());
//!
//! // One safety goal per incident type, completeness certified.
//! let goals = qrn_core::safety_goal::derive_safety_goals(&classification, &allocation)?;
//! assert!(goals.iter().any(|g| g.id() == "SG-I2"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod classification;
pub mod consequence;
pub mod error;
pub mod examples;
pub mod incident;
pub mod norm;
pub mod object;
pub mod report;
pub mod safety_case;
pub mod safety_goal;
pub mod verification;

#[cfg(test)]
mod proptests;

pub use allocation::{
    allocate_proportional, allocate_waterfill, Allocation, FulfilmentReport, ShareMatrix,
};
pub use classification::{GroupRules, IncidentClassification, MeceReport};
pub use consequence::{ConsequenceClass, ConsequenceClassId, ConsequenceDomain};
pub use error::CoreError;
pub use incident::{IncidentKind, IncidentRecord, IncidentType, IncidentTypeId, ToleranceMargin};
pub use norm::QuantitativeRiskNorm;
pub use object::{Involvement, InvolvementClass, ObjectType};
pub use safety_case::{ClaimStatus, SafetyCase};
pub use safety_goal::{derive_safety_goals, CompletenessCertificate, SafetyGoal};
pub use verification::{ClassVerdict, Verdict, VerificationReport};
