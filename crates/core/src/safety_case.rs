//! Safety-case argumentation: assembling the QRN artefacts into the
//! structured argument the paper's method is designed to support.
//!
//! "The risk norm defines what is regarded 'sufficiently safe' in the
//! design-time safety case top claim" (Sec. III-A). The argument shape the
//! method buys is fixed:
//!
//! ```text
//! G0  the ADS is sufficiently safe inside its ODD
//! ├── S1 argue over the quantitative risk norm
//! │   └── G1..Gm  every consequence class v_j stays within f_acc(v_j)
//! │       └── S2 argue over the MECE incident types (Eq. 1)
//! │           └── G(I_k)  every incident type stays within f(I_k)
//! │               └── E  statistical evidence (exact Poisson bound)
//! ├── C1 completeness: the classification is MECE (certificate)
//! └── C2 the evidence exposure was driven inside the ODD
//! ```
//!
//! [`SafetyCase::assemble`] builds that tree from a norm, a
//! classification, an allocation, and a verification report, and
//! [`SafetyCase::status`] folds the evidence into a single supported /
//! undermined / insufficient verdict for the top claim.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;
use crate::classification::IncidentClassification;
use crate::error::CoreError;
use crate::norm::QuantitativeRiskNorm;
use crate::safety_goal::{derive_with_certificate, CompletenessCertificate, SafetyGoal};
use crate::verification::{Verdict, VerificationReport};

/// Support status of a claim after folding in its evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClaimStatus {
    /// All sub-claims and evidence support the claim.
    Supported,
    /// At least one piece of evidence statistically contradicts the claim.
    Undermined,
    /// No contradiction, but some evidence is insufficient so far.
    Insufficient,
}

impl fmt::Display for ClaimStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimStatus::Supported => f.write_str("supported"),
            ClaimStatus::Undermined => f.write_str("UNDERMINED"),
            ClaimStatus::Insufficient => f.write_str("insufficient evidence"),
        }
    }
}

impl ClaimStatus {
    /// Combines the status of sub-claims: any undermined child undermines
    /// the parent; otherwise any insufficient child leaves the parent
    /// insufficient.
    pub fn combine(self, other: ClaimStatus) -> ClaimStatus {
        use ClaimStatus::*;
        match (self, other) {
            (Undermined, _) | (_, Undermined) => Undermined,
            (Insufficient, _) | (_, Insufficient) => Insufficient,
            (Supported, Supported) => Supported,
        }
    }

    fn from_verdict(v: Verdict) -> ClaimStatus {
        match v {
            Verdict::Demonstrated => ClaimStatus::Supported,
            Verdict::Inconclusive => ClaimStatus::Insufficient,
            Verdict::Violated => ClaimStatus::Undermined,
        }
    }
}

/// One node of the argument tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Claim identifier, e.g. `G0`, `G.vS3`, `G.SG-I2`.
    pub id: String,
    /// The claim text.
    pub statement: String,
    /// Status after folding in children and evidence.
    pub status: ClaimStatus,
    /// Sub-claims.
    pub children: Vec<Claim>,
}

impl Claim {
    fn render(&self, indent: usize, out: &mut String) {
        use fmt::Write;
        let pad = "  ".repeat(indent);
        writeln!(
            out,
            "{pad}[{}] {} — {}",
            self.id, self.statement, self.status
        )
        .expect("writing to String cannot fail");
        for child in &self.children {
            child.render(indent + 1, out);
        }
    }

    /// Total number of claims in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Claim::size).sum::<usize>()
    }
}

/// A fully assembled QRN safety case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyCase {
    /// The top-level claim with the full argument beneath it.
    pub top: Claim,
    /// The completeness certificate backing the argument structure.
    pub certificate: CompletenessCertificate,
    /// The safety goals the argument decomposes into.
    pub goals: Vec<SafetyGoal>,
}

impl SafetyCase {
    /// Assembles the argument from the QRN artefacts and a verification
    /// report over them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the artefacts are inconsistent (a leaf
    /// without a budget, shares referencing classes outside the norm).
    pub fn assemble(
        item: &str,
        norm: &QuantitativeRiskNorm,
        classification: &IncidentClassification,
        allocation: &Allocation,
        report: &VerificationReport,
    ) -> Result<SafetyCase, CoreError> {
        let (goals, certificate) = derive_with_certificate(classification, allocation)?;

        let mut class_claims = Vec::new();
        for class in norm.classes() {
            let budget = norm.budget(class.id())?;
            let verdict = report
                .class(class.id())
                .map(|c| c.verdict)
                .unwrap_or(Verdict::Inconclusive);
            // The incident types contributing to this class become the
            // sub-claims, each backed by its goal verdict.
            let mut goal_claims = Vec::new();
            for goal_verdict in &report.goals {
                let share = allocation
                    .shares()
                    .share(&goal_verdict.incident, class.id());
                if share.value() == 0.0 {
                    continue;
                }
                goal_claims.push(Claim {
                    id: format!("G.SG-{}", goal_verdict.incident),
                    statement: format!(
                        "incident {} occurs below {} ({} events over {}, bound {})",
                        goal_verdict.incident,
                        goal_verdict.budget,
                        goal_verdict.observed.count,
                        goal_verdict.observed.exposure,
                        goal_verdict.upper_bound,
                    ),
                    status: ClaimStatus::from_verdict(goal_verdict.verdict),
                    children: Vec::new(),
                });
            }
            let status = goal_claims
                .iter()
                .map(|c| c.status)
                .fold(ClaimStatus::from_verdict(verdict), ClaimStatus::combine);
            class_claims.push(Claim {
                id: format!("G.{}", class.id()),
                statement: format!(
                    "consequences \"{}\" occur below {budget}",
                    class.description()
                ),
                status,
                children: goal_claims,
            });
        }

        let completeness_status = if certificate.holds() {
            ClaimStatus::Supported
        } else {
            ClaimStatus::Undermined
        };
        let completeness = Claim {
            id: "C1".into(),
            statement: format!(
                "the incident classification is MECE ({} probes, {} multi-matches, {} mismatches)",
                certificate.mece.probes,
                certificate.mece.multi_matched,
                certificate.mece.mismatches
            ),
            status: completeness_status,
            children: Vec::new(),
        };

        let top_status = class_claims
            .iter()
            .map(|c| c.status)
            .fold(completeness.status, ClaimStatus::combine);
        let top = Claim {
            id: "G0".into(),
            statement: format!("{item} is sufficiently safe inside its ODD (QRN top claim)"),
            status: top_status,
            children: {
                let mut children = vec![completeness];
                children.extend(class_claims);
                children
            },
        };
        Ok(SafetyCase {
            top,
            certificate,
            goals,
        })
    }

    /// The folded status of the top claim.
    pub fn status(&self) -> ClaimStatus {
        self.top.status
    }

    /// Total number of claims in the argument.
    pub fn size(&self) -> usize {
        self.top.size()
    }
}

impl fmt::Display for SafetyCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.top.render(0, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_allocation, paper_classification, paper_norm};
    use crate::verification::{verify, MeasuredIncidents};
    use qrn_units::Hours;
    use std::collections::BTreeMap;

    fn artefacts() -> (QuantitativeRiskNorm, IncidentClassification, Allocation) {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        (norm, classification, allocation)
    }

    fn case_with(measured: MeasuredIncidents) -> SafetyCase {
        let (norm, classification, allocation) = artefacts();
        let report = verify(&norm, &allocation, &measured, 0.95).unwrap();
        SafetyCase::assemble("example ADS", &norm, &classification, &allocation, &report).unwrap()
    }

    #[test]
    fn clean_long_campaign_supports_the_top_claim() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e13).unwrap());
        let case = case_with(measured);
        assert_eq!(case.status(), ClaimStatus::Supported);
        assert!(case.certificate.holds());
    }

    #[test]
    fn short_campaign_is_insufficient() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(10.0).unwrap());
        let case = case_with(measured);
        assert_eq!(case.status(), ClaimStatus::Insufficient);
    }

    #[test]
    fn violations_undermine_the_top_claim() {
        let counts: BTreeMap<_, u64> = [("I3".into(), 500u64)].into();
        let measured = MeasuredIncidents::new(counts, Hours::new(1000.0).unwrap());
        let case = case_with(measured);
        assert_eq!(case.status(), ClaimStatus::Undermined);
        // The undermined path is visible: the vS3 class claim is undermined.
        let vs3 = case.top.children.iter().find(|c| c.id == "G.vS3").unwrap();
        assert_eq!(vs3.status, ClaimStatus::Undermined);
    }

    #[test]
    fn argument_has_one_subclaim_per_class_plus_completeness() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e12).unwrap());
        let case = case_with(measured);
        let (norm, ..) = artefacts();
        assert_eq!(case.top.children.len(), norm.len() + 1);
        assert!(case.size() > norm.len() + 2);
    }

    #[test]
    fn class_claims_nest_their_contributing_goals() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e12).unwrap());
        let case = case_with(measured);
        let vq1 = case.top.children.iter().find(|c| c.id == "G.vQ1").unwrap();
        // I1 contributes to vQ1, so its goal claim nests here.
        assert!(vq1.children.iter().any(|c| c.id == "G.SG-I1"));
        // I3 does not contribute to vQ1.
        assert!(!vq1.children.iter().any(|c| c.id == "G.SG-I3"));
    }

    #[test]
    fn status_combination_is_pessimistic() {
        use ClaimStatus::*;
        assert_eq!(Supported.combine(Supported), Supported);
        assert_eq!(Supported.combine(Insufficient), Insufficient);
        assert_eq!(Insufficient.combine(Undermined), Undermined);
        assert_eq!(Undermined.combine(Supported), Undermined);
    }

    #[test]
    fn display_renders_the_tree() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e12).unwrap());
        let case = case_with(measured);
        let text = case.to_string();
        assert!(text.contains("[G0]"));
        assert!(text.contains("[C1]"));
        assert!(text.contains("[G.vS3]"));
        assert!(text.contains("[G.SG-I2]"));
    }

    #[test]
    fn serde_round_trip() {
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e12).unwrap());
        let case = case_with(measured);
        let back: SafetyCase =
            serde_json::from_str(&serde_json::to_string(&case).unwrap()).unwrap();
        assert_eq!(case, back);
    }
}
