//! The paper's running example, built out of the library's pieces.
//!
//! All numbers are **illustrative**, mirroring the paper's own footnote 3:
//! "all examples in this paper are made up for illustrative purposes only
//! and not based on actual statistics, hence they should not be used in a
//! real safety case!" What matters — and what the tests pin down — is the
//! *structure*: six consequence classes spanning quality and safety
//! (Fig. 2), a MECE incident classification (Fig. 4), the Ego↔VRU
//! elaboration into I1/I2/I3 with a tail band I4 (Fig. 5; the paper stops
//! at 70 km/h because its ODD does, so the ≥ 70 band exists with a
//! near-zero weight), and an allocation fulfilling Eq. (1).

use std::collections::BTreeMap;

use qrn_units::{Frequency, Meters, Probability, Speed};

use crate::allocation::{allocate_proportional, Allocation, ShareMatrix, ShareMatrixBuilder};
use crate::classification::{GroupRules, IncidentClassification};
use crate::consequence::{ConsequenceClass, ConsequenceDomain};
use crate::error::CoreError;
use crate::incident::{IncidentTypeId, ToleranceMargin};
use crate::norm::QuantitativeRiskNorm;
use crate::object::InvolvementClass;

/// The six-class example norm of Fig. 2 / Fig. 3: three quality classes
/// (perceived safety, forced emergency manoeuvre, material damage) and
/// three safety classes (light-to-moderate, severe, life-threatening
/// injuries), with budgets decreasing by severity.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates constructor checks.
pub fn paper_norm() -> Result<QuantitativeRiskNorm, CoreError> {
    let fph = |x: f64| Frequency::per_hour(x).map_err(CoreError::from);
    QuantitativeRiskNorm::builder()
        .class(
            ConsequenceClass::new(
                "vQ1",
                ConsequenceDomain::Quality,
                0,
                "perceived safety (e.g. scared pedestrian or passenger)",
            ),
            fph(1e-2)?,
        )
        .class(
            ConsequenceClass::new(
                "vQ2",
                ConsequenceDomain::Quality,
                1,
                "emergency manoeuvre forced on another road user",
            ),
            fph(1e-3)?,
        )
        .class(
            ConsequenceClass::new(
                "vQ3",
                ConsequenceDomain::Quality,
                2,
                "material damage (e.g. bodywork damage)",
            ),
            fph(1e-4)?,
        )
        .class(
            ConsequenceClass::new(
                "vS1",
                ConsequenceDomain::Safety,
                3,
                "light to moderate injuries",
            ),
            fph(1e-5)?,
        )
        .class(
            ConsequenceClass::new("vS2", ConsequenceDomain::Safety, 4, "severe injuries"),
            fph(1e-6)?,
        )
        .class(
            ConsequenceClass::new(
                "vS3",
                ConsequenceDomain::Safety,
                5,
                "life-threatening or fatal injuries",
            ),
            fph(1e-8)?,
        )
        .build()
}

/// The Fig. 4 classification with the Fig. 5 Ego↔VRU elaboration.
///
/// The Ego↔VRU group carries the paper's named types:
///
/// * `I1` — approach within 1 m at Δv ≥ 10 km/h (quality incident);
/// * `I2` — collision with 0 ≤ Δv < 10 km/h;
/// * `I3` — collision with 10 ≤ Δv < 70 km/h;
/// * `I4` — collision with Δv ≥ 70 km/h (the mandatory unbounded tail;
///   inside the paper's urban ODD its budget is driven to near zero).
///
/// Every other group gets banded margins in the same style, so the whole
/// classification is MECE by construction.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates constructor checks.
pub fn paper_classification() -> Result<IncidentClassification, CoreError> {
    let kmh = |v: f64| Speed::from_kmh(v).map_err(CoreError::from);
    let m = |d: f64| Meters::new(d).map_err(CoreError::from);

    let ego_vru = GroupRules::builder()
        .collision_band_below(kmh(10.0)?, "I2")
        .collision_band_below(kmh(70.0)?, "I3")
        .collision_tail("I4")
        .near_miss_within(m(1.0)?)
        .near_miss_band_from(kmh(10.0)?, "I1")
        .build()?;

    let banded = |prefix: &str,
                  bounds: &[f64],
                  near_miss: Option<(f64, f64)>|
     -> Result<GroupRules, CoreError> {
        let mut b = GroupRules::builder();
        for (i, hi) in bounds.iter().enumerate() {
            b = b.collision_band_below(kmh(*hi)?, format!("{prefix}/C{i}"));
        }
        b = b.collision_tail(format!("{prefix}/C{}", bounds.len()));
        if let Some((dist, from)) = near_miss {
            b = b
                .near_miss_within(m(dist)?)
                .near_miss_band_from(kmh(from)?, format!("{prefix}/NM"));
        }
        b.build()
    };

    IncidentClassification::builder()
        .group(InvolvementClass::EgoVru, ego_vru)
        .group(
            InvolvementClass::EgoCar,
            banded("EgoCar", &[15.0, 50.0], Some((0.5, 20.0)))?,
        )
        .group(
            InvolvementClass::EgoTruck,
            banded("EgoTruck", &[15.0, 50.0], Some((0.5, 20.0)))?,
        )
        .group(
            InvolvementClass::EgoAnimal,
            banded("EgoAnimal", &[30.0], None)?,
        )
        .group(
            InvolvementClass::EgoStatic,
            banded("EgoStatic", &[15.0], None)?,
        )
        .group(
            InvolvementClass::EgoOther,
            banded("EgoOther", &[15.0], None)?,
        )
        .group(
            InvolvementClass::InducedVru,
            banded("InducedVru", &[10.0], None)?,
        )
        .group(
            InvolvementClass::InducedOther,
            banded("InducedOther", &[30.0], None)?,
        )
        .build()
}

/// The contribution shares of the example: the Fig. 5 assignments for
/// I1–I4 (70% / 30% of I1 into vQ1 / vQ2, …) plus generic severity-graded
/// shares for every other leaf, derived from its margin.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates constructor checks.
pub fn paper_shares(classification: &IncidentClassification) -> Result<ShareMatrix, CoreError> {
    let p = |x: f64| Probability::new(x).map_err(CoreError::from);
    let mut b: ShareMatrixBuilder = ShareMatrix::builder();

    for leaf in classification.leaves() {
        let id = leaf.id().as_str();
        b = match id {
            // Fig. 5: I1 contributes a percentage each to vQ1 and vQ2.
            "I1" => b.share("I1", "vQ1", p(0.7)?).share("I1", "vQ2", p(0.3)?),
            // I2: light (vS1) or moderate — we fold moderate into vS1 per
            // the vS1 class definition, with a small severe (vS2) share.
            "I2" => b.share("I2", "vS1", p(0.6)?).share("I2", "vS2", p(0.05)?),
            // I3: spans light, severe, and fatality (vS3).
            "I3" => b
                .share("I3", "vS1", p(0.3)?)
                .share("I3", "vS2", p(0.4)?)
                .share("I3", "vS3", p(0.15)?),
            // I4: high-speed VRU collision is predominantly fatal.
            "I4" => b.share("I4", "vS2", p(0.1)?).share("I4", "vS3", p(0.9)?),
            _ => {
                let id = leaf.id().clone();
                match leaf.margin() {
                    ToleranceMargin::Proximity { .. } => {
                        b.share(id.clone(), "vQ1", p(0.6)?)
                            .share(id, "vQ2", p(0.3)?)
                    }
                    ToleranceMargin::ImpactSpeed { hi: Some(hi), .. } if hi.as_kmh() <= 16.0 => b
                        .share(id.clone(), "vQ3", p(0.6)?)
                        .share(id, "vS1", p(0.1)?),
                    ToleranceMargin::ImpactSpeed { hi: Some(_), .. } => b
                        .share(id.clone(), "vS1", p(0.4)?)
                        .share(id.clone(), "vS2", p(0.25)?)
                        .share(id, "vS3", p(0.05)?),
                    ToleranceMargin::ImpactSpeed { hi: None, .. } => b
                        .share(id.clone(), "vS2", p(0.3)?)
                        .share(id, "vS3", p(0.5)?),
                }
            }
        };
    }
    b.build()
}

/// The allocation weights of the example: quality incidents are tolerated
/// orders of magnitude more often than severe collision bands, and the
/// out-of-ODD tail bands get near-zero weight (the ODD argument keeps them
/// from occurring at all, so almost no budget is spent on them).
pub fn paper_weights(classification: &IncidentClassification) -> BTreeMap<IncidentTypeId, f64> {
    classification
        .leaves()
        .iter()
        .map(|leaf| {
            let w = match leaf.margin() {
                ToleranceMargin::Proximity { .. } => 100.0,
                ToleranceMargin::ImpactSpeed { hi: Some(hi), .. } if hi.as_kmh() <= 16.0 => 10.0,
                ToleranceMargin::ImpactSpeed { hi: Some(_), .. } => 1.0,
                ToleranceMargin::ImpactSpeed { hi: None, .. } => 0.01,
            };
            (leaf.id().clone(), w)
        })
        .collect()
}

/// The example allocation: proportional budgets at 90% utilisation of the
/// binding consequence class, guaranteed to fulfil Eq. (1) against
/// [`paper_norm`].
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates constructor checks.
pub fn paper_allocation(classification: &IncidentClassification) -> Result<Allocation, CoreError> {
    let norm = paper_norm()?;
    let shares = paper_shares(classification)?;
    let weights = paper_weights(classification);
    allocate_proportional(&norm, &shares, &weights, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_has_six_classes_in_two_domains() {
        let norm = paper_norm().unwrap();
        assert_eq!(norm.len(), 6);
        assert_eq!(norm.domain_classes(ConsequenceDomain::Quality).count(), 3);
        assert_eq!(norm.domain_classes(ConsequenceDomain::Safety).count(), 3);
    }

    #[test]
    fn classification_has_named_vru_types() {
        let c = paper_classification().unwrap();
        for id in ["I1", "I2", "I3", "I4"] {
            assert!(c.incident_type(&id.into()).is_some(), "{id}");
        }
    }

    #[test]
    fn shares_cover_every_leaf() {
        let c = paper_classification().unwrap();
        let shares = paper_shares(&c).unwrap();
        for leaf in c.leaves() {
            assert!(
                shares.row(leaf.id()).is_some(),
                "leaf {} has no shares",
                leaf.id()
            );
        }
    }

    #[test]
    fn i1_shares_match_fig5() {
        let c = paper_classification().unwrap();
        let shares = paper_shares(&c).unwrap();
        assert!((shares.share(&"I1".into(), &"vQ1".into()).value() - 0.7).abs() < 1e-12);
        assert!((shares.share(&"I1".into(), &"vQ2".into()).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn allocation_fulfils_the_norm() {
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let report = a.check(&paper_norm().unwrap()).unwrap();
        assert!(report.is_fulfilled(), "{report}");
        // utilisation of the binding class is 90%
        let max_util = report
            .rows()
            .iter()
            .filter_map(|r| r.utilisation)
            .fold(0.0f64, f64::max);
        assert!((max_util - 0.9).abs() < 1e-9);
    }

    #[test]
    fn quality_budgets_exceed_severe_budgets() {
        // Fig. 2's shape: the near-miss type I1 gets a far bigger budget
        // than the severe collision band I3.
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let f_i1 = a.incident_budget(&"I1".into()).unwrap();
        let f_i3 = a.incident_budget(&"I3".into()).unwrap();
        assert!(f_i1.as_per_hour() > 10.0 * f_i3.as_per_hour());
    }

    #[test]
    fn tail_band_budget_is_negligible() {
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let f_i4 = a.incident_budget(&"I4".into()).unwrap();
        let f_i3 = a.incident_budget(&"I3".into()).unwrap();
        assert!(f_i4.as_per_hour() < 0.05 * f_i3.as_per_hour());
    }
}
