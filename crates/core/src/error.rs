//! Error types for the QRN core.

use std::error::Error;
use std::fmt;

use qrn_stats::StatsError;
use qrn_units::UnitError;

/// Error type for constructing and checking QRN artefacts.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A risk norm failed validation.
    InvalidNorm(String),
    /// A classification failed validation (not MECE, bad bands, …).
    InvalidClassification(String),
    /// An allocation failed validation (shares out of range, unknown ids…).
    InvalidAllocation(String),
    /// A referenced identifier does not exist.
    UnknownId {
        /// What kind of identifier was looked up.
        kind: &'static str,
        /// The identifier that was not found.
        id: String,
    },
    /// An underlying quantity was invalid.
    Unit(UnitError),
    /// An underlying statistical computation failed.
    Stats(StatsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidNorm(msg) => write!(f, "invalid risk norm: {msg}"),
            CoreError::InvalidClassification(msg) => {
                write!(f, "invalid incident classification: {msg}")
            }
            CoreError::InvalidAllocation(msg) => write!(f, "invalid allocation: {msg}"),
            CoreError::UnknownId { kind, id } => write!(f, "unknown {kind} id: {id}"),
            CoreError::Unit(e) => write!(f, "unit error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Unit(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitError> for CoreError {
    fn from(e: UnitError) -> Self {
        CoreError::Unit(e)
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = CoreError::UnknownId {
            kind: "incident type",
            id: "I9".into(),
        };
        assert_eq!(e.to_string(), "unknown incident type id: I9");
    }

    #[test]
    fn sources_chain() {
        let ue = qrn_units::Frequency::per_hour(-1.0).unwrap_err();
        let e = CoreError::from(ue);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
