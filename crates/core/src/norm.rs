//! The quantitative risk norm itself: consequence classes with strict
//! frequency budgets.
//!
//! "The risk norm defines what is regarded 'sufficiently safe' in the
//! design-time safety case top claim" (Sec. III-A). It is a *budget*: each
//! consequence class `v_j` gets an acceptable total frequency
//! `f_acc(v_j)`, valid across the entire ODD ("the safety case needs to be
//! valid inside the entire ODD regardless of where, when, and how the
//! feature is used").
//!
//! Validation enforces the one structural property both Fig. 2 and Fig. 3
//! rely on: budgets are **monotone non-increasing in severity** — society
//! tolerates scared pedestrians more often than fatalities.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::Frequency;

use crate::consequence::{ConsequenceClass, ConsequenceClassId, ConsequenceDomain};
use crate::error::CoreError;

/// A validated quantitative risk norm.
///
/// # Examples
///
/// ```
/// use qrn_core::consequence::{ConsequenceClass, ConsequenceDomain};
/// use qrn_core::norm::QuantitativeRiskNorm;
/// use qrn_units::Frequency;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let norm = QuantitativeRiskNorm::builder()
///     .class(
///         ConsequenceClass::new("vQ1", ConsequenceDomain::Quality, 0, "perceived safety"),
///         Frequency::per_hour(1e-2)?,
///     )
///     .class(
///         ConsequenceClass::new("vS3", ConsequenceDomain::Safety, 5, "fatality"),
///         Frequency::per_hour(1e-9)?,
///     )
///     .build()?;
/// assert_eq!(norm.classes().count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantitativeRiskNorm {
    /// Classes sorted by ascending severity rank.
    classes: Vec<ConsequenceClass>,
    budgets: BTreeMap<ConsequenceClassId, Frequency>,
}

impl QuantitativeRiskNorm {
    /// Starts building a norm.
    pub fn builder() -> QrnBuilder {
        QrnBuilder::default()
    }

    /// The consequence classes in ascending severity order.
    pub fn classes(&self) -> impl Iterator<Item = &ConsequenceClass> {
        self.classes.iter()
    }

    /// The class with the given id, if present.
    pub fn class(&self, id: &ConsequenceClassId) -> Option<&ConsequenceClass> {
        self.classes.iter().find(|c| c.id() == id)
    }

    /// The acceptable frequency budget of a class.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownId`] for an id not in the norm.
    pub fn budget(&self, id: &ConsequenceClassId) -> Result<Frequency, CoreError> {
        self.budgets
            .get(id)
            .copied()
            .ok_or_else(|| CoreError::UnknownId {
                kind: "consequence class",
                id: id.as_str().to_string(),
            })
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` for a norm with no classes (never produced by
    /// [`QrnBuilder::build`], which rejects empty norms).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The classes of one domain, in ascending severity order.
    pub fn domain_classes(
        &self,
        domain: ConsequenceDomain,
    ) -> impl Iterator<Item = &ConsequenceClass> {
        self.classes.iter().filter(move |c| c.domain() == domain)
    }

    /// Returns a new norm with one class's budget tightened (multiplied by
    /// `factor ≤ 1`). Loosening is rejected: a published norm is a ceiling,
    /// variants may only be stricter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an unknown id, a factor above 1, or a
    /// tightening that breaks monotonicity.
    pub fn tightened(
        &self,
        id: &ConsequenceClassId,
        factor: f64,
    ) -> Result<QuantitativeRiskNorm, CoreError> {
        if !(factor.is_finite() && (0.0..=1.0).contains(&factor)) {
            return Err(CoreError::InvalidNorm(format!(
                "tightening factor must lie in [0, 1], got {factor}"
            )));
        }
        let current = self.budget(id)?;
        let mut budgets = self.budgets.clone();
        budgets.insert(id.clone(), current.scaled(factor)?);
        QuantitativeRiskNorm::validate(self.classes.clone(), budgets)
    }

    fn validate(
        mut classes: Vec<ConsequenceClass>,
        budgets: BTreeMap<ConsequenceClassId, Frequency>,
    ) -> Result<QuantitativeRiskNorm, CoreError> {
        if classes.is_empty() {
            return Err(CoreError::InvalidNorm(
                "a risk norm needs at least one consequence class".into(),
            ));
        }
        classes.sort_by_key(|c| c.severity_rank());
        // Unique ids and unique ranks.
        for pair in classes.windows(2) {
            if pair[0].severity_rank() == pair[1].severity_rank() {
                return Err(CoreError::InvalidNorm(format!(
                    "classes {} and {} share severity rank {}",
                    pair[0].id(),
                    pair[1].id(),
                    pair[0].severity_rank()
                )));
            }
        }
        let mut ids: Vec<&ConsequenceClassId> = classes.iter().map(|c| c.id()).collect();
        ids.sort();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(CoreError::InvalidNorm(format!(
                    "duplicate consequence class id {}",
                    pair[0]
                )));
            }
        }
        // Quality classes must not be ranked above any safety class
        // (Fig. 2: quality sits on the less severe side of the axis).
        let max_quality = classes
            .iter()
            .filter(|c| c.domain() == ConsequenceDomain::Quality)
            .map(|c| c.severity_rank())
            .max();
        let min_safety = classes
            .iter()
            .filter(|c| c.domain() == ConsequenceDomain::Safety)
            .map(|c| c.severity_rank())
            .min();
        if let (Some(q), Some(s)) = (max_quality, min_safety) {
            if q > s {
                return Err(CoreError::InvalidNorm(format!(
                    "a quality class (rank {q}) is ranked more severe than a safety class (rank {s})"
                )));
            }
        }
        // Every class has a budget; budgets monotone non-increasing.
        let mut prev: Option<(&ConsequenceClass, Frequency)> = None;
        for class in &classes {
            let budget = *budgets.get(class.id()).ok_or_else(|| {
                CoreError::InvalidNorm(format!("class {} has no budget", class.id()))
            })?;
            if let Some((prev_class, prev_budget)) = prev {
                if budget > prev_budget {
                    return Err(CoreError::InvalidNorm(format!(
                        "budget of {} ({budget}) exceeds budget of less severe {} ({prev_budget})",
                        class.id(),
                        prev_class.id()
                    )));
                }
            }
            prev = Some((class, budget));
        }
        if budgets.len() != classes.len() {
            return Err(CoreError::InvalidNorm(
                "budgets reference classes that are not part of the norm".into(),
            ));
        }
        Ok(QuantitativeRiskNorm { classes, budgets })
    }
}

impl fmt::Display for QuantitativeRiskNorm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Quantitative risk norm ({} classes):",
            self.classes.len()
        )?;
        for class in &self.classes {
            let budget = self.budgets[class.id()];
            writeln!(f, "  {class}: at most {budget}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`QuantitativeRiskNorm`].
#[derive(Debug, Clone, Default)]
pub struct QrnBuilder {
    classes: Vec<ConsequenceClass>,
    budgets: BTreeMap<ConsequenceClassId, Frequency>,
}

impl QrnBuilder {
    /// Adds a class with its acceptable frequency budget.
    pub fn class(mut self, class: ConsequenceClass, budget: Frequency) -> Self {
        self.budgets.insert(class.id().clone(), budget);
        self.classes.push(class);
        self
    }

    /// Validates and builds the norm.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidNorm`] for an empty norm, duplicate ids
    /// or ranks, a quality class ranked above a safety class, a missing
    /// budget, or budgets that increase with severity.
    pub fn build(self) -> Result<QuantitativeRiskNorm, CoreError> {
        QuantitativeRiskNorm::validate(self.classes, self.budgets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fph(x: f64) -> Frequency {
        Frequency::per_hour(x).unwrap()
    }

    fn quality(id: &str, rank: u8) -> ConsequenceClass {
        ConsequenceClass::new(id, ConsequenceDomain::Quality, rank, "quality consequence")
    }

    fn safety(id: &str, rank: u8) -> ConsequenceClass {
        ConsequenceClass::new(id, ConsequenceDomain::Safety, rank, "safety consequence")
    }

    fn valid_norm() -> QuantitativeRiskNorm {
        QuantitativeRiskNorm::builder()
            .class(quality("vQ1", 0), fph(1e-2))
            .class(quality("vQ2", 1), fph(1e-3))
            .class(safety("vS1", 2), fph(1e-5))
            .class(safety("vS2", 3), fph(1e-7))
            .class(safety("vS3", 4), fph(1e-9))
            .build()
            .unwrap()
    }

    #[test]
    fn classes_sorted_by_severity() {
        let norm = valid_norm();
        let ranks: Vec<u8> = norm.classes().map(|c| c.severity_rank()).collect();
        assert_eq!(ranks, [0, 1, 2, 3, 4]);
        assert_eq!(norm.len(), 5);
    }

    #[test]
    fn budget_lookup() {
        let norm = valid_norm();
        assert_eq!(norm.budget(&"vS3".into()).unwrap(), fph(1e-9));
        assert!(matches!(
            norm.budget(&"nope".into()),
            Err(CoreError::UnknownId { .. })
        ));
    }

    #[test]
    fn rejects_empty_norm() {
        assert!(QuantitativeRiskNorm::builder().build().is_err());
    }

    #[test]
    fn rejects_non_monotone_budgets() {
        let err = QuantitativeRiskNorm::builder()
            .class(quality("vQ1", 0), fph(1e-5))
            .class(safety("vS1", 1), fph(1e-2)) // more severe but bigger budget
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNorm(_)));
    }

    #[test]
    fn rejects_duplicate_ranks_and_ids() {
        let err = QuantitativeRiskNorm::builder()
            .class(quality("vQ1", 0), fph(1e-2))
            .class(quality("vQ2", 0), fph(1e-2))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNorm(_)));

        let err = QuantitativeRiskNorm::builder()
            .class(quality("vQ1", 0), fph(1e-2))
            .class(quality("vQ1", 1), fph(1e-3))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNorm(_)));
    }

    #[test]
    fn rejects_quality_above_safety() {
        let err = QuantitativeRiskNorm::builder()
            .class(safety("vS1", 0), fph(1e-4))
            .class(quality("vQ1", 1), fph(1e-4))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNorm(_)));
    }

    #[test]
    fn allows_equal_budgets_across_adjacent_classes() {
        // non-increasing, not strictly decreasing
        assert!(QuantitativeRiskNorm::builder()
            .class(quality("vQ1", 0), fph(1e-3))
            .class(quality("vQ2", 1), fph(1e-3))
            .build()
            .is_ok());
    }

    #[test]
    fn domain_classes_filter() {
        let norm = valid_norm();
        assert_eq!(norm.domain_classes(ConsequenceDomain::Quality).count(), 2);
        assert_eq!(norm.domain_classes(ConsequenceDomain::Safety).count(), 3);
    }

    #[test]
    fn tightened_reduces_budget() {
        let norm = valid_norm();
        let tighter = norm.tightened(&"vS1".into(), 0.1).unwrap();
        let b = tighter.budget(&"vS1".into()).unwrap().as_per_hour();
        assert!((b - 1e-6).abs() < 1e-18);
        // loosening rejected
        assert!(norm.tightened(&"vS1".into(), 2.0).is_err());
    }

    #[test]
    fn tightened_cannot_break_monotonicity() {
        // vQ2 budget 1e-3; tightening vQ1 (rank 0) below 1e-3 would make
        // budgets increase with severity between vQ1 and vQ2.
        let norm = valid_norm();
        let err = norm.tightened(&"vQ1".into(), 1e-9).unwrap_err();
        assert!(matches!(err, CoreError::InvalidNorm(_)));
    }

    #[test]
    fn display_lists_classes() {
        let text = valid_norm().to_string();
        assert!(text.contains("vS3"));
        assert!(text.contains("/h"));
    }

    #[test]
    fn serde_round_trip() {
        let norm = valid_norm();
        let back: QuantitativeRiskNorm =
            serde_json::from_str(&serde_json::to_string(&norm).unwrap()).unwrap();
        assert_eq!(norm, back);
    }
}
