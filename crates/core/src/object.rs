//! The `<object_type>` taxonomy and incident involvement.
//!
//! The paper suggests "many of the incident types can be defined as an
//! interaction between ego vehicle and `<object_type>` within
//! `<tolerance_margin>`. The `<object_type>` is a complete and unique set."
//! Completeness and uniqueness are achieved here the Rust way: an
//! exhaustive enum with a catch-all variant, so `match` *proves* that every
//! object lands in exactly one category.
//!
//! Fig. 4 additionally splits the top level into incidents the ego vehicle
//! is *involved in* versus incidents among other road users that the ego
//! vehicle *induced* ("ego vehicle a causing factor in an incident
//! involving other road users"); [`Involvement`] captures that split.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The complete, unique set of object categories an incident can involve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjectType {
    /// Vulnerable road user: pedestrian, cyclist, …
    Vru,
    /// Passenger car.
    Car,
    /// Truck or bus.
    Truck,
    /// Large animal (the paper's elk).
    Animal,
    /// Static object: barrier, parked trailer, debris.
    StaticObject,
    /// Anything not covered above — the catch-all that makes the set
    /// collectively exhaustive by definition.
    Other,
}

impl ObjectType {
    /// All object types.
    pub const ALL: [ObjectType; 6] = [
        ObjectType::Vru,
        ObjectType::Car,
        ObjectType::Truck,
        ObjectType::Animal,
        ObjectType::StaticObject,
        ObjectType::Other,
    ];
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ObjectType::Vru => "VRU",
            ObjectType::Car => "Car",
            ObjectType::Truck => "Truck",
            ObjectType::Animal => "Animal",
            ObjectType::StaticObject => "StaticObject",
            ObjectType::Other => "Other",
        };
        f.write_str(text)
    }
}

/// Who an incident involves: the ego vehicle and an object, or two other
/// actors in an incident the ego vehicle induced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Involvement {
    /// The ego vehicle interacts with an object (`Ego ↔ X`).
    EgoWith(ObjectType),
    /// Two other actors interact, with ego a causing factor (`X ↔ Y`).
    ///
    /// The pair is unordered; [`Involvement::induced`] normalises it so
    /// `Induced(Car, Vru)` and `Induced(Vru, Car)` are the same value.
    Induced(ObjectType, ObjectType),
}

impl Involvement {
    /// Creates an ego-involved interaction.
    pub fn ego_with(object: ObjectType) -> Self {
        Involvement::EgoWith(object)
    }

    /// Creates an induced (ego-caused, ego-uninvolved) interaction with a
    /// normalised actor order.
    pub fn induced(a: ObjectType, b: ObjectType) -> Self {
        if a <= b {
            Involvement::Induced(a, b)
        } else {
            Involvement::Induced(b, a)
        }
    }

    /// The classification group this involvement belongs to — a *total*
    /// function, which is what makes the Fig. 4 top-level split
    /// collectively exhaustive by construction.
    pub fn class(self) -> InvolvementClass {
        match self {
            Involvement::EgoWith(ObjectType::Vru) => InvolvementClass::EgoVru,
            Involvement::EgoWith(ObjectType::Car) => InvolvementClass::EgoCar,
            Involvement::EgoWith(ObjectType::Truck) => InvolvementClass::EgoTruck,
            Involvement::EgoWith(ObjectType::Animal) => InvolvementClass::EgoAnimal,
            Involvement::EgoWith(ObjectType::StaticObject) => InvolvementClass::EgoStatic,
            Involvement::EgoWith(ObjectType::Other) => InvolvementClass::EgoOther,
            Involvement::Induced(a, b) => {
                if a == ObjectType::Vru || b == ObjectType::Vru {
                    InvolvementClass::InducedVru
                } else {
                    InvolvementClass::InducedOther
                }
            }
        }
    }
}

impl fmt::Display for Involvement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Involvement::EgoWith(o) => write!(f, "Ego↔{o}"),
            Involvement::Induced(a, b) => write!(f, "{a}↔{b} (induced)"),
        }
    }
}

/// The groups of the Fig. 4 classification: a finite partition of all
/// possible involvements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InvolvementClass {
    /// Ego vehicle with a vulnerable road user.
    EgoVru,
    /// Ego vehicle with a car.
    EgoCar,
    /// Ego vehicle with a truck or bus.
    EgoTruck,
    /// Ego vehicle with a large animal.
    EgoAnimal,
    /// Ego vehicle with a static object.
    EgoStatic,
    /// Ego vehicle with any other object.
    EgoOther,
    /// Induced incident involving at least one VRU.
    InducedVru,
    /// Induced incident among non-VRU actors.
    InducedOther,
}

impl InvolvementClass {
    /// All involvement classes.
    pub const ALL: [InvolvementClass; 8] = [
        InvolvementClass::EgoVru,
        InvolvementClass::EgoCar,
        InvolvementClass::EgoTruck,
        InvolvementClass::EgoAnimal,
        InvolvementClass::EgoStatic,
        InvolvementClass::EgoOther,
        InvolvementClass::InducedVru,
        InvolvementClass::InducedOther,
    ];

    /// A representative involvement of the class, used by probe generators.
    pub fn representative(self) -> Involvement {
        match self {
            InvolvementClass::EgoVru => Involvement::ego_with(ObjectType::Vru),
            InvolvementClass::EgoCar => Involvement::ego_with(ObjectType::Car),
            InvolvementClass::EgoTruck => Involvement::ego_with(ObjectType::Truck),
            InvolvementClass::EgoAnimal => Involvement::ego_with(ObjectType::Animal),
            InvolvementClass::EgoStatic => Involvement::ego_with(ObjectType::StaticObject),
            InvolvementClass::EgoOther => Involvement::ego_with(ObjectType::Other),
            InvolvementClass::InducedVru => Involvement::induced(ObjectType::Car, ObjectType::Vru),
            InvolvementClass::InducedOther => {
                Involvement::induced(ObjectType::Car, ObjectType::Car)
            }
        }
    }

    /// Short label used in generated incident-type ids, e.g. `EgoVru`.
    pub fn label(self) -> &'static str {
        match self {
            InvolvementClass::EgoVru => "EgoVru",
            InvolvementClass::EgoCar => "EgoCar",
            InvolvementClass::EgoTruck => "EgoTruck",
            InvolvementClass::EgoAnimal => "EgoAnimal",
            InvolvementClass::EgoStatic => "EgoStatic",
            InvolvementClass::EgoOther => "EgoOther",
            InvolvementClass::InducedVru => "InducedVru",
            InvolvementClass::InducedOther => "InducedOther",
        }
    }
}

impl fmt::Display for InvolvementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_pair_is_normalised() {
        assert_eq!(
            Involvement::induced(ObjectType::Vru, ObjectType::Car),
            Involvement::induced(ObjectType::Car, ObjectType::Vru)
        );
    }

    #[test]
    fn every_involvement_has_exactly_one_class() {
        // ego side
        for o in ObjectType::ALL {
            let class = Involvement::ego_with(o).class();
            assert!(InvolvementClass::ALL.contains(&class));
        }
        // induced side: all unordered pairs
        for a in ObjectType::ALL {
            for b in ObjectType::ALL {
                let class = Involvement::induced(a, b).class();
                assert!(matches!(
                    class,
                    InvolvementClass::InducedVru | InvolvementClass::InducedOther
                ));
            }
        }
    }

    #[test]
    fn induced_vru_detection_is_symmetric() {
        assert_eq!(
            Involvement::induced(ObjectType::Truck, ObjectType::Vru).class(),
            InvolvementClass::InducedVru
        );
        assert_eq!(
            Involvement::induced(ObjectType::Vru, ObjectType::Truck).class(),
            InvolvementClass::InducedVru
        );
        assert_eq!(
            Involvement::induced(ObjectType::Truck, ObjectType::Car).class(),
            InvolvementClass::InducedOther
        );
    }

    #[test]
    fn representatives_map_back_to_their_class() {
        for class in InvolvementClass::ALL {
            assert_eq!(class.representative().class(), class);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            Involvement::ego_with(ObjectType::Vru).to_string(),
            "Ego↔VRU"
        );
        assert!(Involvement::induced(ObjectType::Car, ObjectType::Truck)
            .to_string()
            .contains("induced"));
    }

    #[test]
    fn serde_round_trip() {
        let i = Involvement::induced(ObjectType::Car, ObjectType::Vru);
        let back: Involvement = serde_json::from_str(&serde_json::to_string(&i).unwrap()).unwrap();
        assert_eq!(i, back);
    }
}
