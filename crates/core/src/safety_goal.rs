//! Safety goals with quantitative integrity attributes, and the
//! completeness certificate.
//!
//! "We can now formulate the safety goals for each of the defined
//! incidents. For instance, the SG for incident I2 … would look like this:
//! *SG-I2: Avoid collision Ego↔VRU, with 0 < Δv_collision < 10 km/h, to
//! below f_I2*" (Sec. III-B). Because the goals are derived one-per-leaf
//! from a MECE classification, completeness of the goal set reduces to two
//! checkable facts: the classification is MECE, and every leaf has a
//! budgeted goal — which is what [`CompletenessCertificate`] records.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::Frequency;

use crate::allocation::Allocation;
use crate::classification::{IncidentClassification, MeceReport};
use crate::error::CoreError;
use crate::incident::{IncidentType, IncidentTypeId, ToleranceMargin};

/// A safety goal: avoid one incident type beyond its allotted frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyGoal {
    id: String,
    incident: IncidentType,
    budget: Frequency,
}

impl SafetyGoal {
    /// Creates a goal for an incident type with its frequency budget.
    pub fn new(incident: IncidentType, budget: Frequency) -> Self {
        SafetyGoal {
            id: format!("SG-{}", incident.id()),
            incident,
            budget,
        }
    }

    /// The goal identifier, `SG-<incident id>`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The incident type this goal restricts.
    pub fn incident(&self) -> &IncidentType {
        &self.incident
    }

    /// The quantitative integrity attribute: the maximum tolerated
    /// frequency of violating this goal.
    pub fn budget(&self) -> Frequency {
        self.budget
    }
}

impl fmt::Display for SafetyGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.incident.margin() {
            ToleranceMargin::ImpactSpeed { .. } => "Avoid collision",
            ToleranceMargin::Proximity { .. } => "Avoid approach",
        };
        write!(
            f,
            "{}: {} {}, with {}, to below {}",
            self.id,
            verb,
            self.incident.involvement(),
            self.incident.margin(),
            self.budget
        )
    }
}

/// The completeness argument for a derived set of safety goals.
///
/// The paper's central claim is that "completeness of SGs can be ensured by
/// defining the incident types according to the MECE principle … so that
/// any possible conceivable incident falls into one of the classes". This
/// certificate is that argument as data: it holds exactly when the MECE
/// probe found no violation and every classification leaf produced exactly
/// one budgeted goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletenessCertificate {
    /// Result of probing the classification.
    pub mece: MeceReport,
    /// Number of classification leaves.
    pub leaves: usize,
    /// Number of derived safety goals.
    pub goals: usize,
}

impl CompletenessCertificate {
    /// Returns `true` when the completeness argument holds.
    pub fn holds(&self) -> bool {
        self.mece.is_mece() && self.leaves == self.goals
    }
}

impl fmt::Display for CompletenessCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completeness: {} ({} goals for {} MECE leaves; {} probes, {} multi-matches, {} mismatches)",
            if self.holds() { "HOLDS" } else { "BROKEN" },
            self.goals,
            self.leaves,
            self.mece.probes,
            self.mece.multi_matched,
            self.mece.mismatches,
        )
    }
}

/// Derives one safety goal per classification leaf from an allocation.
///
/// # Errors
///
/// Returns [`CoreError::UnknownId`] when some leaf has no budget in the
/// allocation — an unbudgeted leaf would be an incident type the safety
/// case silently ignores.
///
/// # Examples
///
/// ```
/// use qrn_core::examples::{paper_allocation, paper_classification};
/// use qrn_core::safety_goal::derive_safety_goals;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classification = paper_classification()?;
/// let allocation = paper_allocation(&classification)?;
/// let goals = derive_safety_goals(&classification, &allocation)?;
/// assert_eq!(goals.len(), classification.leaves().len());
/// # Ok(())
/// # }
/// ```
pub fn derive_safety_goals(
    classification: &IncidentClassification,
    allocation: &Allocation,
) -> Result<Vec<SafetyGoal>, CoreError> {
    classification
        .leaves()
        .iter()
        .map(|leaf| {
            let budget = allocation.incident_budget(leaf.id())?;
            Ok(SafetyGoal::new(leaf.clone(), budget))
        })
        .collect()
}

/// Derives the goals *and* the completeness certificate in one step.
///
/// # Errors
///
/// Same as [`derive_safety_goals`].
pub fn derive_with_certificate(
    classification: &IncidentClassification,
    allocation: &Allocation,
) -> Result<(Vec<SafetyGoal>, CompletenessCertificate), CoreError> {
    let goals = derive_safety_goals(classification, allocation)?;
    let certificate = CompletenessCertificate {
        mece: classification.verify_mece(),
        leaves: classification.leaves().len(),
        goals: goals.len(),
    };
    Ok((goals, certificate))
}

/// Finds the goal restricting a given incident type, if present.
pub fn goal_for<'a>(goals: &'a [SafetyGoal], id: &IncidentTypeId) -> Option<&'a SafetyGoal> {
    goals.iter().find(|g| g.incident().id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_allocation, paper_classification};
    use crate::object::{Involvement, ObjectType};
    use qrn_units::Speed;

    #[test]
    fn sg_i2_renders_like_the_paper() {
        let i2 = IncidentType::new(
            "I2",
            Involvement::ego_with(ObjectType::Vru),
            ToleranceMargin::ImpactSpeed {
                lo: Speed::ZERO,
                hi: Some(Speed::from_kmh(10.0).unwrap()),
            },
        );
        let sg = SafetyGoal::new(i2, Frequency::per_hour(1e-6).unwrap());
        let text = sg.to_string();
        assert!(text.starts_with("SG-I2: Avoid collision Ego↔VRU"));
        assert!(text.contains("0 ≤ Δv_collision < 10 km/h"));
        assert!(text.contains("to below 1e-6/h"));
    }

    #[test]
    fn near_miss_goal_uses_approach_wording() {
        let i1 = IncidentType::new(
            "I1",
            Involvement::ego_with(ObjectType::Vru),
            ToleranceMargin::Proximity {
                max_distance: qrn_units::Meters::new(1.0).unwrap(),
                lo: Speed::from_kmh(10.0).unwrap(),
                hi: None,
            },
        );
        let sg = SafetyGoal::new(i1, Frequency::per_hour(1e-3).unwrap());
        assert!(sg.to_string().contains("Avoid approach"));
    }

    #[test]
    fn one_goal_per_leaf() {
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let goals = derive_safety_goals(&c, &a).unwrap();
        assert_eq!(goals.len(), c.leaves().len());
        assert!(goal_for(&goals, &"I2".into()).is_some());
        assert!(goal_for(&goals, &"missing".into()).is_none());
    }

    #[test]
    fn missing_budget_is_an_error() {
        let c = paper_classification().unwrap();
        let empty = Allocation::new(
            Default::default(),
            crate::allocation::ShareMatrix::builder().build().unwrap(),
        )
        .unwrap();
        assert!(matches!(
            derive_safety_goals(&c, &empty),
            Err(CoreError::UnknownId { .. })
        ));
    }

    #[test]
    fn certificate_holds_for_paper_setup() {
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let (_, cert) = derive_with_certificate(&c, &a).unwrap();
        assert!(cert.holds(), "{cert}");
        assert!(cert.to_string().contains("HOLDS"));
    }

    #[test]
    fn certificate_breaks_when_goals_missing() {
        let cert = CompletenessCertificate {
            mece: MeceReport {
                probes: 10,
                classified: 10,
                non_incidents: 0,
                multi_matched: 0,
                mismatches: 0,
                unreached_leaves: vec![],
            },
            leaves: 5,
            goals: 4,
        };
        assert!(!cert.holds());
    }

    #[test]
    fn serde_round_trip() {
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        let goals = derive_safety_goals(&c, &a).unwrap();
        let back: Vec<SafetyGoal> =
            serde_json::from_str(&serde_json::to_string(&goals).unwrap()).unwrap();
        assert_eq!(goals, back);
    }
}
