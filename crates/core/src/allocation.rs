//! Frequency allocation: incident budgets, contribution shares, and the
//! fulfilment inequality (the paper's Eq. 1).
//!
//! "We can regard determination of the incident types and their integrity
//! attributes (the limit frequencies) as an allocation process, where we
//! must make sure that the budget we set on each `I` must be such that the
//! total allowed frequency is fulfilled for all `v`" (Sec. III-B):
//!
//! ```text
//!     Σ_k  f(v_j, I_k)  ≤  f_acc(v_j)      for every consequence class v_j
//! ```
//!
//! where `f(v_j, I_k) = f(I_k) · s(k, j)` — the incident type's budget
//! times its *contribution share* into the class (the paper's "70% of f_I1
//! contributes to v_Q1 and 30% to v_Q2").

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::{Frequency, Probability};

use crate::consequence::ConsequenceClassId;
use crate::error::CoreError;
use crate::incident::IncidentTypeId;
use crate::norm::QuantitativeRiskNorm;

/// Contribution shares `s(k, j)`: for each incident type, the fraction of
/// its occurrences landing in each consequence class.
///
/// Shares per incident type must sum to at most 1; the remainder is the
/// fraction of occurrences with no consequence of interest.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShareMatrix {
    shares: BTreeMap<IncidentTypeId, BTreeMap<ConsequenceClassId, Probability>>,
}

impl ShareMatrix {
    /// Starts building a share matrix.
    pub fn builder() -> ShareMatrixBuilder {
        ShareMatrixBuilder::default()
    }

    /// The share of `incident` into `class` (zero when unset).
    pub fn share(&self, incident: &IncidentTypeId, class: &ConsequenceClassId) -> Probability {
        self.shares
            .get(incident)
            .and_then(|row| row.get(class))
            .copied()
            .unwrap_or(Probability::ZERO)
    }

    /// The incident types with at least one share.
    pub fn incidents(&self) -> impl Iterator<Item = &IncidentTypeId> {
        self.shares.keys()
    }

    /// The share row of one incident type, if present.
    pub fn row(
        &self,
        incident: &IncidentTypeId,
    ) -> Option<&BTreeMap<ConsequenceClassId, Probability>> {
        self.shares.get(incident)
    }

    /// All consequence classes referenced anywhere in the matrix.
    pub fn referenced_classes(&self) -> Vec<&ConsequenceClassId> {
        let mut out: Vec<&ConsequenceClassId> =
            self.shares.values().flat_map(|row| row.keys()).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Incremental builder for [`ShareMatrix`].
#[derive(Debug, Clone, Default)]
pub struct ShareMatrixBuilder {
    shares: BTreeMap<IncidentTypeId, BTreeMap<ConsequenceClassId, Probability>>,
}

impl ShareMatrixBuilder {
    /// Sets the share of `incident` into `class`.
    pub fn share(
        mut self,
        incident: impl Into<IncidentTypeId>,
        class: impl Into<ConsequenceClassId>,
        share: Probability,
    ) -> Self {
        self.shares
            .entry(incident.into())
            .or_default()
            .insert(class.into(), share);
        self
    }

    /// Validates (row sums ≤ 1) and builds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAllocation`] when a row sums above 1.
    pub fn build(self) -> Result<ShareMatrix, CoreError> {
        for (incident, row) in &self.shares {
            let total: f64 = row.values().map(|p| p.value()).sum();
            if total > 1.0 + 1e-12 {
                return Err(CoreError::InvalidAllocation(format!(
                    "shares of incident {incident} sum to {total}, exceeding 1"
                )));
            }
        }
        Ok(ShareMatrix {
            shares: self.shares,
        })
    }
}

/// Fulfilment status of one consequence class under an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFulfilment {
    /// The consequence class.
    pub class: ConsequenceClassId,
    /// Its acceptable budget from the norm.
    pub budget: Frequency,
    /// Total allocated load `Σ_k f(I_k) · s(k, j)`.
    pub load: Frequency,
    /// `load / budget`, or `None` for a zero budget.
    pub utilisation: Option<f64>,
}

impl ClassFulfilment {
    /// Returns `true` when the load stays within the budget.
    ///
    /// A relative tolerance of 1e-12 absorbs floating-point noise so that a
    /// load analytically equal to the budget (e.g. shares summing exactly
    /// to the class budget) is not reported as a violation.
    pub fn is_fulfilled(&self) -> bool {
        self.load.as_per_hour() <= self.budget.as_per_hour() * (1.0 + 1e-12)
    }

    /// Remaining headroom (zero when over budget).
    pub fn slack(&self) -> Frequency {
        self.budget.saturating_sub(self.load)
    }
}

/// The Eq. (1) check over all consequence classes of a norm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FulfilmentReport {
    rows: Vec<ClassFulfilment>,
}

impl FulfilmentReport {
    /// Returns `true` when every class is within budget.
    pub fn is_fulfilled(&self) -> bool {
        self.rows.iter().all(ClassFulfilment::is_fulfilled)
    }

    /// Per-class rows in ascending severity order.
    pub fn rows(&self) -> &[ClassFulfilment] {
        &self.rows
    }

    /// The row for one class, if present.
    pub fn class(&self, id: &ConsequenceClassId) -> Option<&ClassFulfilment> {
        self.rows.iter().find(|r| &r.class == id)
    }
}

impl fmt::Display for FulfilmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Eq. (1) fulfilment:")?;
        for row in &self.rows {
            writeln!(
                f,
                "  {}: load {} / budget {} -> {}",
                row.class,
                row.load,
                row.budget,
                if row.is_fulfilled() { "OK" } else { "VIOLATED" }
            )?;
        }
        Ok(())
    }
}

/// An allocation: a frequency budget per incident type plus the share
/// matrix distributing those budgets into consequence classes.
///
/// # Examples
///
/// ```
/// use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let norm = paper_norm()?;
/// let allocation = paper_allocation(&paper_classification()?)?;
/// assert!(allocation.check(&norm)?.is_fulfilled());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    budgets: BTreeMap<IncidentTypeId, Frequency>,
    shares: ShareMatrix,
}

impl Allocation {
    /// Creates an allocation from explicit budgets and shares.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidAllocation`] when a share row references
    /// an incident type that has no budget.
    pub fn new(
        budgets: BTreeMap<IncidentTypeId, Frequency>,
        shares: ShareMatrix,
    ) -> Result<Self, CoreError> {
        for incident in shares.incidents() {
            if !budgets.contains_key(incident) {
                return Err(CoreError::InvalidAllocation(format!(
                    "share matrix references incident {incident} with no budget"
                )));
            }
        }
        Ok(Allocation { budgets, shares })
    }

    /// The budget of one incident type.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownId`] for an unknown incident type.
    pub fn incident_budget(&self, id: &IncidentTypeId) -> Result<Frequency, CoreError> {
        self.budgets
            .get(id)
            .copied()
            .ok_or_else(|| CoreError::UnknownId {
                kind: "incident type",
                id: id.as_str().to_string(),
            })
    }

    /// All incident budgets, in id order.
    pub fn budgets(&self) -> impl Iterator<Item = (&IncidentTypeId, Frequency)> {
        self.budgets.iter().map(|(id, f)| (id, *f))
    }

    /// The share matrix.
    pub fn shares(&self) -> &ShareMatrix {
        &self.shares
    }

    /// The allocated load on one consequence class:
    /// `Σ_k f(I_k) · s(k, j)`.
    pub fn class_load(&self, class: &ConsequenceClassId) -> Frequency {
        self.budgets
            .iter()
            .map(|(incident, budget)| *budget * self.shares.share(incident, class))
            .sum()
    }

    /// Each incident type's contribution to one class, in id order
    /// (the stacked bars of the paper's Fig. 3).
    pub fn class_contributions(
        &self,
        class: &ConsequenceClassId,
    ) -> Vec<(IncidentTypeId, Frequency)> {
        self.budgets
            .iter()
            .map(|(incident, budget)| {
                (
                    incident.clone(),
                    *budget * self.shares.share(incident, class),
                )
            })
            .collect()
    }

    /// Checks the fulfilment inequality (Eq. 1) against every class of the
    /// norm.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownId`] when the share matrix references a
    /// class that is not part of the norm — such a share would silently
    /// escape the budget check, which is exactly the kind of leak a safety
    /// case must not have.
    pub fn check(&self, norm: &QuantitativeRiskNorm) -> Result<FulfilmentReport, CoreError> {
        for class in self.shares.referenced_classes() {
            if norm.class(class).is_none() {
                return Err(CoreError::UnknownId {
                    kind: "consequence class",
                    id: class.as_str().to_string(),
                });
            }
        }
        let rows = norm
            .classes()
            .map(|c| {
                let budget = norm.budget(c.id()).expect("class is in norm");
                let load = self.class_load(c.id());
                ClassFulfilment {
                    class: c.id().clone(),
                    budget,
                    load,
                    utilisation: load.ratio(budget),
                }
            })
            .collect();
        Ok(FulfilmentReport { rows })
    }

    /// Returns a new allocation with one incident budget scaled by
    /// `factor` — the paper's Fig. 5 what-if: "an improvement of `f_I2`
    /// will reduce the total incident frequency for these two consequence
    /// classes correspondingly, but result in an SG for `I2` which will be
    /// more challenging for the implementation".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an unknown incident type or an invalid
    /// factor.
    pub fn with_scaled_budget(
        &self,
        id: &IncidentTypeId,
        factor: f64,
    ) -> Result<Allocation, CoreError> {
        let current = self.incident_budget(id)?;
        let mut budgets = self.budgets.clone();
        budgets.insert(id.clone(), current.scaled(factor)?);
        Allocation::new(budgets, self.shares.clone())
    }

    /// The incident type contributing the largest fraction of one class's
    /// load, with that fraction — the hook for the paper's ethical
    /// discussion (it would "hardly be acceptable" for one incident type,
    /// e.g. Ego↔Child, to absorb a class's whole budget).
    ///
    /// Returns `None` when the class carries no load.
    pub fn dominant_contributor(
        &self,
        class: &ConsequenceClassId,
    ) -> Option<(IncidentTypeId, f64)> {
        let total = self.class_load(class).as_per_hour();
        if total == 0.0 {
            return None;
        }
        self.class_contributions(class)
            .into_iter()
            .max_by(|a, b| {
                a.1.as_per_hour()
                    .partial_cmp(&b.1.as_per_hour())
                    .expect("frequencies are never NaN")
            })
            .map(|(id, f)| (id, f.as_per_hour() / total))
    }

    /// Checks the dominance (ethics) constraint: no single incident type
    /// may contribute more than `cap` of the class's load.
    pub fn satisfies_dominance_cap(&self, class: &ConsequenceClassId, cap: f64) -> bool {
        match self.dominant_contributor(class) {
            None => true,
            Some((_, fraction)) => fraction <= cap + 1e-12,
        }
    }
}

/// Distributes budgets proportionally to `weights`, scaled so that the
/// worst-utilised consequence class reaches exactly `utilisation_target`
/// of its budget.
///
/// With weights `w_k`, budgets are `f(I_k) = t · w_k` with
/// `t = target · min_j ( f_acc(v_j) / Σ_k w_k · s(k, j) )`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidAllocation`] when weights are invalid, no
/// class receives any load (nothing to scale against), or the share matrix
/// references classes outside the norm.
pub fn allocate_proportional(
    norm: &QuantitativeRiskNorm,
    shares: &ShareMatrix,
    weights: &BTreeMap<IncidentTypeId, f64>,
    utilisation_target: f64,
) -> Result<Allocation, CoreError> {
    if !(utilisation_target.is_finite() && 0.0 < utilisation_target && utilisation_target <= 1.0) {
        return Err(CoreError::InvalidAllocation(format!(
            "utilisation target must lie in (0, 1], got {utilisation_target}"
        )));
    }
    for (id, w) in weights {
        if !(w.is_finite() && *w >= 0.0) {
            return Err(CoreError::InvalidAllocation(format!(
                "weight of incident {id} must be finite and non-negative, got {w}"
            )));
        }
    }
    for class in shares.referenced_classes() {
        if norm.class(class).is_none() {
            return Err(CoreError::UnknownId {
                kind: "consequence class",
                id: class.as_str().to_string(),
            });
        }
    }
    let mut t = f64::INFINITY;
    for class in norm.classes() {
        let denom: f64 = weights
            .iter()
            .map(|(incident, w)| w * shares.share(incident, class.id()).value())
            .sum();
        if denom > 0.0 {
            let budget = norm.budget(class.id()).expect("class is in norm");
            t = t.min(budget.as_per_hour() / denom);
        }
    }
    if !t.is_finite() {
        return Err(CoreError::InvalidAllocation(
            "no consequence class receives any load from the weighted shares".into(),
        ));
    }
    let t = t * utilisation_target;
    let budgets = weights
        .iter()
        .map(|(id, w)| Ok((id.clone(), Frequency::per_hour(t * w)?)))
        .collect::<Result<BTreeMap<_, _>, CoreError>>()?;
    Allocation::new(budgets, shares.clone())
}

/// Distributes budgets by **waterfilling**: every incident budget rises at
/// the same rate until a consequence class becomes binding; the incidents
/// feeding that class freeze, everyone else keeps rising; repeat. The
/// result is max-min fair — no incident's budget can grow without
/// shrinking a smaller one.
///
/// Incidents with an all-zero share row (no consequence of interest, e.g.
/// an out-of-ODD tail band covered by containment evidence instead of
/// driving exposure) are unconstrained by Eq. (1) and receive
/// `unconstrained_budget`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidAllocation`] for an invalid utilisation
/// target, or [`CoreError::UnknownId`] when shares reference classes
/// outside the norm.
pub fn allocate_waterfill(
    norm: &QuantitativeRiskNorm,
    shares: &ShareMatrix,
    incidents: &[IncidentTypeId],
    unconstrained_budget: Frequency,
    utilisation_target: f64,
) -> Result<Allocation, CoreError> {
    if !(utilisation_target.is_finite() && 0.0 < utilisation_target && utilisation_target <= 1.0) {
        return Err(CoreError::InvalidAllocation(format!(
            "utilisation target must lie in (0, 1], got {utilisation_target}"
        )));
    }
    for class in shares.referenced_classes() {
        if norm.class(class).is_none() {
            return Err(CoreError::UnknownId {
                kind: "consequence class",
                id: class.as_str().to_string(),
            });
        }
    }
    let mut levels: BTreeMap<IncidentTypeId, f64> =
        incidents.iter().map(|id| (id.clone(), 0.0)).collect();
    // Incidents with some share participate in the waterfill; the rest get
    // the unconstrained budget directly.
    let mut active: Vec<IncidentTypeId> = incidents
        .iter()
        .filter(|id| {
            shares
                .row(id)
                .is_some_and(|row| row.values().any(|p| p.value() > 0.0))
        })
        .cloned()
        .collect();
    let mut remaining: BTreeMap<ConsequenceClassId, f64> = norm
        .classes()
        .map(|c| {
            let budget = norm.budget(c.id()).expect("class is in norm");
            (c.id().clone(), budget.as_per_hour() * utilisation_target)
        })
        .collect();

    while !active.is_empty() {
        // Growth rate of each class's load while all active incidents rise
        // together.
        let mut t = f64::INFINITY;
        let mut binding: Vec<ConsequenceClassId> = Vec::new();
        for (class, rem) in &remaining {
            let growth: f64 = active
                .iter()
                .map(|id| shares.share(id, class).value())
                .sum();
            if growth > 0.0 {
                let t_class = rem / growth;
                if t_class < t - 1e-18 {
                    t = t_class;
                    binding = vec![class.clone()];
                } else if (t_class - t).abs() <= 1e-18 {
                    binding.push(class.clone());
                }
            }
        }
        if !t.is_finite() {
            // No class constrains the remaining active incidents (their
            // shares all point at already-binding classes with zero
            // remaining growth): freeze them where they are.
            break;
        }
        // Raise every active incident by t and charge the classes.
        for id in &active {
            *levels.get_mut(id).expect("initialised above") += t;
            for (class, rem) in remaining.iter_mut() {
                *rem -= t * shares.share(id, class).value();
            }
        }
        // Freeze incidents feeding a binding class.
        active.retain(|id| {
            !binding
                .iter()
                .any(|class| shares.share(id, class).value() > 0.0)
        });
    }

    let budgets = incidents
        .iter()
        .map(|id| {
            let has_share = shares
                .row(id)
                .is_some_and(|row| row.values().any(|p| p.value() > 0.0));
            let f = if has_share {
                Frequency::per_hour(levels[id].max(0.0))?
            } else {
                unconstrained_budget
            };
            Ok((id.clone(), f))
        })
        .collect::<Result<BTreeMap<_, _>, CoreError>>()?;
    Allocation::new(budgets, shares.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consequence::{ConsequenceClass, ConsequenceDomain};

    fn fph(x: f64) -> Frequency {
        Frequency::per_hour(x).unwrap()
    }

    fn p(x: f64) -> Probability {
        Probability::new(x).unwrap()
    }

    fn norm() -> QuantitativeRiskNorm {
        QuantitativeRiskNorm::builder()
            .class(
                ConsequenceClass::new("vQ1", ConsequenceDomain::Quality, 0, "scare"),
                fph(1e-2),
            )
            .class(
                ConsequenceClass::new("vS1", ConsequenceDomain::Safety, 1, "light"),
                fph(1e-4),
            )
            .class(
                ConsequenceClass::new("vS3", ConsequenceDomain::Safety, 2, "fatal"),
                fph(1e-7),
            )
            .build()
            .unwrap()
    }

    fn shares() -> ShareMatrix {
        ShareMatrix::builder()
            .share("I1", "vQ1", p(0.7))
            .share("I1", "vS1", p(0.1))
            .share("I2", "vS1", p(0.5))
            .share("I2", "vS3", p(0.01))
            .build()
            .unwrap()
    }

    fn allocation() -> Allocation {
        let budgets: BTreeMap<IncidentTypeId, Frequency> =
            [("I1".into(), fph(1e-3)), ("I2".into(), fph(1e-5))].into();
        Allocation::new(budgets, shares()).unwrap()
    }

    #[test]
    fn share_row_sum_validated() {
        let err = ShareMatrix::builder()
            .share("I1", "vQ1", p(0.7))
            .share("I1", "vS1", p(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidAllocation(_)));
    }

    #[test]
    fn unset_share_is_zero() {
        let s = shares();
        assert_eq!(s.share(&"I1".into(), &"vS3".into()), Probability::ZERO);
        assert_eq!(s.share(&"nope".into(), &"vQ1".into()), Probability::ZERO);
    }

    #[test]
    fn class_load_sums_contributions() {
        let a = allocation();
        // vS1: 1e-3 * 0.1 + 1e-5 * 0.5 = 1.05e-4
        assert!((a.class_load(&"vS1".into()).as_per_hour() - 1.05e-4).abs() < 1e-12);
        // vS3: 1e-5 * 0.01 = 1e-7
        assert!((a.class_load(&"vS3".into()).as_per_hour() - 1e-7).abs() < 1e-15);
    }

    #[test]
    fn check_reports_violations_per_class() {
        let a = allocation();
        let report = a.check(&norm()).unwrap();
        // vS1 budget 1e-4 < load 1.05e-4 -> violated
        assert!(!report.is_fulfilled());
        assert!(!report.class(&"vS1".into()).unwrap().is_fulfilled());
        // vQ1 budget 1e-2 >= 7e-4 -> ok
        assert!(report.class(&"vQ1".into()).unwrap().is_fulfilled());
        // vS3 exactly at budget (1e-7 <= 1e-7) -> ok
        assert!(report.class(&"vS3".into()).unwrap().is_fulfilled());
    }

    #[test]
    fn check_rejects_shares_outside_norm() {
        let s = ShareMatrix::builder()
            .share("I1", "vUnknown", p(0.5))
            .build()
            .unwrap();
        let a = Allocation::new([("I1".into(), fph(1e-3))].into(), s).unwrap();
        assert!(matches!(a.check(&norm()), Err(CoreError::UnknownId { .. })));
    }

    #[test]
    fn allocation_requires_budget_for_every_share_row() {
        let err = Allocation::new(BTreeMap::new(), shares()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidAllocation(_)));
    }

    #[test]
    fn scaling_a_budget_reduces_class_loads_proportionally() {
        let a = allocation();
        let improved = a.with_scaled_budget(&"I2".into(), 0.5).unwrap();
        // vS3 load halves: only I2 contributes
        assert!((improved.class_load(&"vS3".into()).as_per_hour() - 0.5e-7).abs() < 1e-15);
        // vQ1 load unchanged: I2 does not contribute there
        assert_eq!(
            improved.class_load(&"vQ1".into()),
            a.class_load(&"vQ1".into())
        );
        // the improved allocation now fulfils the norm
        assert!(!a.check(&norm()).unwrap().is_fulfilled());
        let fixed = a.with_scaled_budget(&"I1".into(), 0.5).unwrap();
        assert!(fixed.check(&norm()).unwrap().is_fulfilled());
    }

    #[test]
    fn dominance_detection() {
        let a = allocation();
        let (dominant, fraction) = a.dominant_contributor(&"vS1".into()).unwrap();
        // I1 contributes 1e-4 of 1.05e-4
        assert_eq!(dominant.as_str(), "I1");
        assert!((fraction - 1e-4 / 1.05e-4).abs() < 1e-9);
        assert!(a.satisfies_dominance_cap(&"vS1".into(), 0.99));
        assert!(!a.satisfies_dominance_cap(&"vS1".into(), 0.5));
        // a class with no load satisfies any cap
        let empty = Allocation::new(
            [("I9".into(), fph(1.0))].into(),
            ShareMatrix::builder().build().unwrap(),
        )
        .unwrap();
        assert!(empty.satisfies_dominance_cap(&"vS3".into(), 0.0));
    }

    #[test]
    fn proportional_allocation_meets_norm_exactly_at_target() {
        let weights: BTreeMap<IncidentTypeId, f64> =
            [("I1".into(), 1.0), ("I2".into(), 1.0)].into();
        let a = allocate_proportional(&norm(), &shares(), &weights, 0.9).unwrap();
        let report = a.check(&norm()).unwrap();
        assert!(report.is_fulfilled());
        // the binding class sits exactly at 90% utilisation
        let max_util = report
            .rows()
            .iter()
            .filter_map(|r| r.utilisation)
            .fold(0.0f64, f64::max);
        assert!((max_util - 0.9).abs() < 1e-9, "max_util={max_util}");
    }

    #[test]
    fn proportional_allocation_scales_with_weights() {
        let weights: BTreeMap<IncidentTypeId, f64> =
            [("I1".into(), 3.0), ("I2".into(), 1.0)].into();
        let a = allocate_proportional(&norm(), &shares(), &weights, 1.0).unwrap();
        let f1 = a.incident_budget(&"I1".into()).unwrap().as_per_hour();
        let f2 = a.incident_budget(&"I2".into()).unwrap().as_per_hour();
        assert!((f1 / f2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_allocation_rejects_degenerate_inputs() {
        let weights: BTreeMap<IncidentTypeId, f64> = [("I1".into(), 1.0)].into();
        assert!(allocate_proportional(&norm(), &shares(), &weights, 0.0).is_err());
        assert!(allocate_proportional(&norm(), &shares(), &weights, 1.5).is_err());
        let bad: BTreeMap<IncidentTypeId, f64> = [("I1".into(), -1.0)].into();
        assert!(allocate_proportional(&norm(), &shares(), &bad, 0.9).is_err());
        // all-zero weights -> no load anywhere
        let zero: BTreeMap<IncidentTypeId, f64> = [("I1".into(), 0.0)].into();
        assert!(allocate_proportional(&norm(), &shares(), &zero, 0.9).is_err());
    }

    #[test]
    fn waterfill_is_max_min_fair() {
        // I1 feeds the loose vQ1 only; I2 feeds the tight vS3: waterfill
        // freezes I2 early and keeps raising I1.
        let s = ShareMatrix::builder()
            .share("I1", "vQ1", p(0.5))
            .share("I2", "vS3", p(0.5))
            .build()
            .unwrap();
        let ids: Vec<IncidentTypeId> = vec!["I1".into(), "I2".into()];
        let a = allocate_waterfill(&norm(), &s, &ids, fph(1e-9), 1.0).unwrap();
        let f1 = a.incident_budget(&"I1".into()).unwrap().as_per_hour();
        let f2 = a.incident_budget(&"I2".into()).unwrap().as_per_hour();
        // I2 binds at vS3: 0.5 * f2 = 1e-7 -> f2 = 2e-7.
        assert!((f2 - 2e-7).abs() < 1e-12, "f2={f2}");
        // I1 keeps rising to vQ1: 0.5 * f1 = 1e-2 -> f1 = 2e-2.
        assert!((f1 - 2e-2).abs() < 1e-8, "f1={f1}");
        assert!(a.check(&norm()).unwrap().is_fulfilled());
    }

    #[test]
    fn waterfill_equalises_symmetric_incidents() {
        let s = ShareMatrix::builder()
            .share("A", "vS3", p(0.25))
            .share("B", "vS3", p(0.25))
            .build()
            .unwrap();
        let ids: Vec<IncidentTypeId> = vec!["A".into(), "B".into()];
        let a = allocate_waterfill(&norm(), &s, &ids, fph(1e-9), 0.9).unwrap();
        let fa = a.incident_budget(&"A".into()).unwrap();
        let fb = a.incident_budget(&"B".into()).unwrap();
        assert_eq!(fa, fb);
        // binding class at exactly 90% utilisation
        let report = a.check(&norm()).unwrap();
        let util = report.class(&"vS3".into()).unwrap().utilisation.unwrap();
        assert!((util - 0.9).abs() < 1e-9);
    }

    #[test]
    fn waterfill_handles_unconstrained_incidents() {
        let s = ShareMatrix::builder()
            .share("A", "vS3", p(0.5))
            .build()
            .unwrap();
        // "Tail" has no shares: it gets the explicit unconstrained budget.
        let ids: Vec<IncidentTypeId> = vec!["A".into(), "Tail".into()];
        let a = allocate_waterfill(&norm(), &s, &ids, fph(3e-9), 1.0).unwrap();
        assert_eq!(a.incident_budget(&"Tail".into()).unwrap(), fph(3e-9));
        assert!(a.check(&norm()).unwrap().is_fulfilled());
    }

    #[test]
    fn waterfill_on_paper_example_fulfils_eq1() {
        let classification = crate::examples::paper_classification().unwrap();
        let norm = crate::examples::paper_norm().unwrap();
        let shares = crate::examples::paper_shares(&classification).unwrap();
        let ids: Vec<IncidentTypeId> = classification
            .leaves()
            .iter()
            .map(|l| l.id().clone())
            .collect();
        let a = allocate_waterfill(&norm, &shares, &ids, fph(1e-12), 0.95).unwrap();
        let report = a.check(&norm).unwrap();
        assert!(report.is_fulfilled(), "{report}");
        // at least one class sits at (about) the target utilisation
        let max_util = report
            .rows()
            .iter()
            .filter_map(|r| r.utilisation)
            .fold(0.0f64, f64::max);
        assert!((max_util - 0.95).abs() < 1e-6, "max_util={max_util}");
        // and waterfill gives every budgeted incident a positive budget
        for leaf in classification.leaves() {
            assert!(a.incident_budget(leaf.id()).unwrap().as_per_hour() > 0.0);
        }
    }

    #[test]
    fn waterfill_rejects_bad_inputs() {
        let ids: Vec<IncidentTypeId> = vec!["I1".into()];
        assert!(allocate_waterfill(&norm(), &shares(), &ids, fph(1e-9), 0.0).is_err());
        let bad = ShareMatrix::builder()
            .share("I1", "vUnknown", p(0.5))
            .build()
            .unwrap();
        assert!(matches!(
            allocate_waterfill(&norm(), &bad, &ids, fph(1e-9), 0.9),
            Err(CoreError::UnknownId { .. })
        ));
    }

    #[test]
    fn report_display_mentions_violations() {
        let text = allocation().check(&norm()).unwrap().to_string();
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("OK"));
    }

    #[test]
    fn serde_round_trip() {
        let a = allocation();
        let back: Allocation = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(a, back);
    }
}
