//! The incident classification: the paper's Fig. 4, made MECE by
//! construction and verified by probing.
//!
//! "We can guarantee completeness by making the classification scheme
//! complete by definition, i.e. every theoretically possible incident
//! belongs to one of the defined incident types" (Sec. III-B). The
//! construction here guarantees exactly that:
//!
//! * The top split is a *total function* from
//!   [`Involvement`](crate::object::Involvement) to
//!   [`InvolvementClass`] (an exhaustive `match` — see `qrn-core::object`),
//!   so no incident can fall outside the group level.
//! * Within a group, **collision** bands must tile `[0, ∞)` over impact
//!   speed: the builder takes ascending upper bounds plus a mandatory
//!   unbounded tail band, so every collision lands in exactly one band.
//! * **Near-miss** bands tile `[s₁, ∞)` over relative speed inside a
//!   distance margin; interactions milder than `s₁` (or farther than the
//!   margin) are *not incidents* — the classification itself defines where
//!   "undesired event" begins, mirroring the paper's quality incidents.
//!
//! Mutual exclusivity and collective exhaustiveness are therefore theorems
//! of the construction. [`IncidentClassification::verify_mece`] re-checks
//! them empirically by probing the whole event space and counting, for
//! each probe, how many leaf predicates match — defence in depth for the
//! safety case, and the generator behind the Fig. 4 experiment.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::{Meters, Speed};

use crate::error::CoreError;
use crate::incident::{
    IncidentKind, IncidentRecord, IncidentType, IncidentTypeId, ToleranceMargin,
};
use crate::object::InvolvementClass;

/// Near-miss (quality incident) banding for one involvement group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearMissRule {
    /// Interactions count only when closer than this (exclusive).
    max_distance: Meters,
    /// Ascending relative-speed band starts; band `i` covers
    /// `[bounds[i], bounds[i+1])`, the last band is unbounded. Relative
    /// speeds below `bounds[0]` are not incidents.
    bounds: Vec<Speed>,
    /// One label per band.
    labels: Vec<String>,
}

/// Banding rules for one involvement group of the classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRules {
    /// Ascending internal impact-speed boundaries; with `n` boundaries the
    /// group has `n + 1` collision bands, the last unbounded.
    collision_bounds: Vec<Speed>,
    /// One label per collision band (`collision_bounds.len() + 1`).
    collision_labels: Vec<String>,
    /// Optional near-miss banding.
    near_miss: Option<NearMissRule>,
}

impl GroupRules {
    /// Starts building rules for a group.
    pub fn builder() -> GroupRulesBuilder {
        GroupRulesBuilder::default()
    }

    /// The collision band index for an impact speed (always succeeds: the
    /// bands tile `[0, ∞)`).
    fn collision_band(&self, v: Speed) -> usize {
        self.collision_bounds
            .iter()
            .position(|b| v < *b)
            .unwrap_or(self.collision_bounds.len())
    }

    /// The near-miss band index, or `None` when the interaction is not an
    /// incident under this group's rules.
    fn near_miss_band(&self, distance: Meters, v: Speed) -> Option<usize> {
        let rule = self.near_miss.as_ref()?;
        if distance >= rule.max_distance {
            return None;
        }
        if v < rule.bounds[0] {
            return None;
        }
        Some(
            rule.bounds
                .iter()
                .skip(1)
                .position(|b| v < *b)
                .unwrap_or(rule.bounds.len() - 1),
        )
    }

    /// Number of leaves (collision bands + near-miss bands) in this group.
    pub fn leaf_count(&self) -> usize {
        self.collision_labels.len() + self.near_miss.as_ref().map_or(0, |r| r.labels.len())
    }
}

/// Incremental builder for [`GroupRules`].
#[derive(Debug, Clone, Default)]
pub struct GroupRulesBuilder {
    collision: Vec<(Option<Speed>, String)>,
    near_miss_distance: Option<Meters>,
    near_miss: Vec<(Speed, String)>,
}

impl GroupRulesBuilder {
    /// Adds a collision band from the previous boundary up to `hi`
    /// (exclusive).
    pub fn collision_band_below(mut self, hi: Speed, label: impl Into<String>) -> Self {
        self.collision.push((Some(hi), label.into()));
        self
    }

    /// Adds the mandatory final collision band (previous boundary to ∞).
    pub fn collision_tail(mut self, label: impl Into<String>) -> Self {
        self.collision.push((None, label.into()));
        self
    }

    /// Enables near-miss incidents within `max_distance`.
    pub fn near_miss_within(mut self, max_distance: Meters) -> Self {
        self.near_miss_distance = Some(max_distance);
        self
    }

    /// Adds a near-miss band starting at relative speed `from` (the band
    /// extends to the next band's start, or ∞ for the last band).
    pub fn near_miss_band_from(mut self, from: Speed, label: impl Into<String>) -> Self {
        self.near_miss.push((from, label.into()));
        self
    }

    /// Validates and builds the group rules.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidClassification`] when the tail band is
    /// missing or not last, boundaries are not strictly ascending, or
    /// near-miss bands were given without a distance margin.
    pub fn build(self) -> Result<GroupRules, CoreError> {
        let invalid = |msg: String| Err(CoreError::InvalidClassification(msg));
        if self.collision.is_empty() {
            return invalid("a group needs at least the unbounded collision tail band".into());
        }
        let (tail, body) = self.collision.split_last().expect("non-empty");
        if tail.0.is_some() {
            return invalid(
                "the last collision band must be unbounded (use collision_tail)".into(),
            );
        }
        let mut bounds = Vec::with_capacity(body.len());
        let mut labels = Vec::with_capacity(self.collision.len());
        for (hi, label) in body {
            let hi = hi.ok_or_else(|| {
                CoreError::InvalidClassification(
                    "only the last collision band may be unbounded".into(),
                )
            })?;
            if let Some(&prev) = bounds.last() {
                if hi <= prev {
                    return invalid(format!(
                        "collision boundaries must be strictly ascending ({} after {})",
                        hi, prev
                    ));
                }
            }
            bounds.push(hi);
            labels.push(label.clone());
        }
        labels.push(tail.1.clone());

        let near_miss = match (self.near_miss_distance, self.near_miss.is_empty()) {
            (None, true) => None,
            (None, false) => {
                return invalid("near-miss bands require near_miss_within(distance)".into())
            }
            (Some(_), true) => {
                return invalid("near_miss_within requires at least one near-miss band".into())
            }
            (Some(max_distance), false) => {
                let mut nm_bounds = Vec::with_capacity(self.near_miss.len());
                let mut nm_labels = Vec::with_capacity(self.near_miss.len());
                for (from, label) in &self.near_miss {
                    if let Some(&prev) = nm_bounds.last() {
                        if *from <= prev {
                            return invalid(format!(
                                "near-miss band starts must be strictly ascending ({} after {})",
                                from, prev
                            ));
                        }
                    }
                    nm_bounds.push(*from);
                    nm_labels.push(label.clone());
                }
                Some(NearMissRule {
                    max_distance,
                    bounds: nm_bounds,
                    labels: nm_labels,
                })
            }
        };

        Ok(GroupRules {
            collision_bounds: bounds,
            collision_labels: labels,
            near_miss,
        })
    }
}

/// The result of empirically probing a classification for the MECE
/// property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeceReport {
    /// Total probe events generated.
    pub probes: usize,
    /// Probes classified to exactly one incident type.
    pub classified: usize,
    /// Probes that are not incidents under the classification (milder than
    /// every quality threshold).
    pub non_incidents: usize,
    /// Probes matched by more than one leaf predicate (must be 0).
    pub multi_matched: usize,
    /// Probes where the set of matching leaf predicates disagreed with
    /// `classify` (must be 0).
    pub mismatches: usize,
    /// Leaves that no probe reached (indicates a probe-coverage gap, not a
    /// MECE violation; empty for the built-in probe set).
    pub unreached_leaves: Vec<IncidentTypeId>,
}

impl MeceReport {
    /// Returns `true` when the probing found no MECE violation.
    pub fn is_mece(&self) -> bool {
        self.multi_matched == 0 && self.mismatches == 0
    }
}

/// A complete incident classification: banding rules for every involvement
/// group, with the leaf incident types precomputed.
///
/// # Examples
///
/// ```
/// use qrn_core::examples::paper_classification;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classification = paper_classification()?;
/// let report = classification.verify_mece();
/// assert!(report.is_mece());
/// assert!(report.unreached_leaves.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentClassification {
    rules: BTreeMap<InvolvementClass, GroupRules>,
    leaves: Vec<IncidentType>,
    /// Per group: leaf index of each collision band.
    collision_leaf_index: BTreeMap<InvolvementClass, Vec<usize>>,
    /// Per group: leaf index of each near-miss band.
    near_miss_leaf_index: BTreeMap<InvolvementClass, Vec<usize>>,
}

impl IncidentClassification {
    /// Starts building a classification.
    pub fn builder() -> IncidentClassificationBuilder {
        IncidentClassificationBuilder::default()
    }

    /// The leaf incident types, in group then band order.
    pub fn leaves(&self) -> &[IncidentType] {
        &self.leaves
    }

    /// Looks up a leaf by id.
    pub fn incident_type(&self, id: &IncidentTypeId) -> Option<&IncidentType> {
        self.leaves.iter().find(|t| t.id() == id)
    }

    /// The rules of one group.
    pub fn group_rules(&self, class: InvolvementClass) -> &GroupRules {
        &self.rules[&class]
    }

    /// Classifies a concrete record to its unique incident type, or `None`
    /// when the event is not an incident (milder than every threshold).
    pub fn classify(&self, record: &IncidentRecord) -> Option<&IncidentType> {
        let class = record.involvement.class();
        let rules = &self.rules[&class];
        let leaf_idx = match record.kind {
            IncidentKind::Collision { impact_speed } => {
                let band = rules.collision_band(impact_speed);
                self.collision_leaf_index[&class][band]
            }
            IncidentKind::NearMiss {
                distance,
                relative_speed,
            } => {
                let band = rules.near_miss_band(distance, relative_speed)?;
                self.near_miss_leaf_index[&class][band]
            }
        };
        Some(&self.leaves[leaf_idx])
    }

    /// Probes the entire event space and checks that every probe matches at
    /// most one leaf predicate, consistently with [`Self::classify`].
    pub fn verify_mece(&self) -> MeceReport {
        let mut report = MeceReport {
            probes: 0,
            classified: 0,
            non_incidents: 0,
            multi_matched: 0,
            mismatches: 0,
            unreached_leaves: Vec::new(),
        };
        let mut reached = vec![false; self.leaves.len()];
        for record in self.probe_records() {
            report.probes += 1;
            let matching: Vec<usize> = self
                .leaves
                .iter()
                .enumerate()
                .filter(|(_, t)| t.matches(&record))
                .map(|(i, _)| i)
                .collect();
            if matching.len() > 1 {
                report.multi_matched += 1;
            }
            let classified = self.classify(&record);
            match (classified, matching.as_slice()) {
                (Some(t), [single]) if self.leaves[*single].id() == t.id() => {
                    report.classified += 1;
                    reached[*single] = true;
                }
                (None, []) => report.non_incidents += 1,
                _ => report.mismatches += 1,
            }
        }
        report.unreached_leaves = reached
            .iter()
            .enumerate()
            .filter(|(_, r)| !**r)
            .map(|(i, _)| self.leaves[i].id().clone())
            .collect();
        report
    }

    /// Generates the probe set: for every involvement group, collision
    /// speeds sweeping 0–200 km/h plus every band boundary ± ε, and
    /// near-miss probes across distance and relative-speed grids.
    fn probe_records(&self) -> Vec<IncidentRecord> {
        let eps = 0.01;
        let mut out = Vec::new();
        for (&class, rules) in &self.rules {
            let involvement = class.representative();
            let mut speeds: Vec<f64> = (0..=200).map(f64::from).collect();
            for b in &rules.collision_bounds {
                speeds.push((b.as_kmh() - eps).max(0.0));
                speeds.push(b.as_kmh());
                speeds.push(b.as_kmh() + eps);
            }
            for v in &speeds {
                out.push(IncidentRecord::collision(
                    involvement,
                    Speed::from_kmh(*v).expect("probe speeds are valid"),
                ));
            }
            if let Some(rule) = &rules.near_miss {
                let d_max = rule.max_distance.value();
                let distances = [
                    0.0,
                    d_max * 0.5,
                    (d_max - 1e-4).max(0.0),
                    d_max,
                    d_max + 0.5,
                ];
                let mut nm_speeds: Vec<f64> = (0..=200).step_by(2).map(f64::from).collect();
                for b in &rule.bounds {
                    nm_speeds.push((b.as_kmh() - eps).max(0.0));
                    nm_speeds.push(b.as_kmh());
                    nm_speeds.push(b.as_kmh() + eps);
                }
                for d in distances {
                    for v in &nm_speeds {
                        out.push(IncidentRecord::near_miss(
                            involvement,
                            Meters::new(d).expect("probe distances are valid"),
                            Speed::from_kmh(*v).expect("probe speeds are valid"),
                        ));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for IncidentClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Incident classification ({} leaves):", self.leaves.len())?;
        for leaf in &self.leaves {
            writeln!(f, "  {leaf}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`IncidentClassification`].
#[derive(Debug, Clone, Default)]
pub struct IncidentClassificationBuilder {
    rules: BTreeMap<InvolvementClass, GroupRules>,
}

impl IncidentClassificationBuilder {
    /// Sets the rules for one involvement group.
    pub fn group(mut self, class: InvolvementClass, rules: GroupRules) -> Self {
        self.rules.insert(class, rules);
        self
    }

    /// Validates and builds the classification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidClassification`] when a group is missing
    /// (collective exhaustiveness requires rules for *every* involvement
    /// class) or when leaf labels collide across groups.
    pub fn build(self) -> Result<IncidentClassification, CoreError> {
        for class in InvolvementClass::ALL {
            if !self.rules.contains_key(&class) {
                return Err(CoreError::InvalidClassification(format!(
                    "missing rules for involvement group {class}; \
                     every group needs rules for the classification to be exhaustive"
                )));
            }
        }
        let mut leaves: Vec<IncidentType> = Vec::new();
        let mut collision_leaf_index = BTreeMap::new();
        let mut near_miss_leaf_index = BTreeMap::new();
        for (&class, rules) in &self.rules {
            let involvement = class.representative();
            let mut collision_idx = Vec::new();
            for (band, label) in rules.collision_labels.iter().enumerate() {
                let lo = if band == 0 {
                    Speed::ZERO
                } else {
                    rules.collision_bounds[band - 1]
                };
                let hi = rules.collision_bounds.get(band).copied();
                collision_idx.push(leaves.len());
                leaves.push(IncidentType::new(
                    label.as_str(),
                    involvement,
                    ToleranceMargin::ImpactSpeed { lo, hi },
                ));
            }
            collision_leaf_index.insert(class, collision_idx);
            let mut nm_idx = Vec::new();
            if let Some(rule) = &rules.near_miss {
                for (band, label) in rule.labels.iter().enumerate() {
                    let lo = rule.bounds[band];
                    let hi = rule.bounds.get(band + 1).copied();
                    nm_idx.push(leaves.len());
                    leaves.push(IncidentType::new(
                        label.as_str(),
                        involvement,
                        ToleranceMargin::Proximity {
                            max_distance: rule.max_distance,
                            lo,
                            hi,
                        },
                    ));
                }
            }
            near_miss_leaf_index.insert(class, nm_idx);
        }
        // Leaf ids must be globally unique.
        let mut ids: Vec<&IncidentTypeId> = leaves.iter().map(IncidentType::id).collect();
        ids.sort();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(CoreError::InvalidClassification(format!(
                    "duplicate incident type label {}",
                    pair[0]
                )));
            }
        }
        Ok(IncidentClassification {
            rules: self.rules,
            leaves,
            collision_leaf_index,
            near_miss_leaf_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_classification;
    use crate::object::{Involvement, ObjectType};

    fn kmh(v: f64) -> Speed {
        Speed::from_kmh(v).unwrap()
    }

    fn m(d: f64) -> Meters {
        Meters::new(d).unwrap()
    }

    #[test]
    fn group_rules_builder_validates() {
        // missing tail
        assert!(GroupRules::builder()
            .collision_band_below(kmh(10.0), "a")
            .build()
            .is_err());
        // non-ascending bounds
        assert!(GroupRules::builder()
            .collision_band_below(kmh(50.0), "a")
            .collision_band_below(kmh(10.0), "b")
            .collision_tail("c")
            .build()
            .is_err());
        // near-miss bands without distance
        assert!(GroupRules::builder()
            .collision_tail("c")
            .near_miss_band_from(kmh(10.0), "nm")
            .build()
            .is_err());
        // distance without bands
        assert!(GroupRules::builder()
            .collision_tail("c")
            .near_miss_within(m(1.0))
            .build()
            .is_err());
        // a valid group
        assert!(GroupRules::builder()
            .collision_band_below(kmh(10.0), "a")
            .collision_tail("b")
            .near_miss_within(m(1.0))
            .near_miss_band_from(kmh(10.0), "nm")
            .build()
            .is_ok());
    }

    #[test]
    fn classification_requires_every_group() {
        let err = IncidentClassification::builder().build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidClassification(_)));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let rules = || {
            GroupRules::builder()
                .collision_tail("same-label")
                .build()
                .unwrap()
        };
        let mut builder = IncidentClassification::builder();
        for class in InvolvementClass::ALL {
            builder = builder.group(class, rules());
        }
        assert!(matches!(
            builder.build(),
            Err(CoreError::InvalidClassification(_))
        ));
    }

    #[test]
    fn paper_classification_classifies_fig5_examples() {
        let c = paper_classification().unwrap();
        let ego_vru = Involvement::ego_with(ObjectType::Vru);
        // I1: near-miss within 1 m at Δv > 10 km/h
        let i1 = c
            .classify(&IncidentRecord::near_miss(ego_vru, m(0.5), kmh(20.0)))
            .unwrap();
        assert_eq!(i1.id().as_str(), "I1");
        // I2: collision below 10 km/h
        let i2 = c
            .classify(&IncidentRecord::collision(ego_vru, kmh(7.0)))
            .unwrap();
        assert_eq!(i2.id().as_str(), "I2");
        // I3: collision in [10, 70)
        let i3 = c
            .classify(&IncidentRecord::collision(ego_vru, kmh(45.0)))
            .unwrap();
        assert_eq!(i3.id().as_str(), "I3");
        // boundary: exactly 10 km/h belongs to I3 (10 ≤ Δv < 70)
        let b = c
            .classify(&IncidentRecord::collision(ego_vru, kmh(10.0)))
            .unwrap();
        assert_eq!(b.id().as_str(), "I3");
    }

    #[test]
    fn mild_interactions_are_not_incidents() {
        let c = paper_classification().unwrap();
        let ego_vru = Involvement::ego_with(ObjectType::Vru);
        // slow pass within the margin: below the 10 km/h quality threshold
        assert!(c
            .classify(&IncidentRecord::near_miss(ego_vru, m(0.5), kmh(5.0)))
            .is_none());
        // fast pass but outside the distance margin
        assert!(c
            .classify(&IncidentRecord::near_miss(ego_vru, m(2.0), kmh(50.0)))
            .is_none());
    }

    #[test]
    fn every_collision_is_an_incident() {
        let c = paper_classification().unwrap();
        for object in ObjectType::ALL {
            for v in [0.0, 5.0, 10.0, 50.0, 150.0, 300.0] {
                let record = IncidentRecord::collision(Involvement::ego_with(object), kmh(v));
                assert!(c.classify(&record).is_some(), "{object:?} at {v} km/h");
            }
        }
        // induced incidents too
        let record = IncidentRecord::collision(
            Involvement::induced(ObjectType::Car, ObjectType::Truck),
            kmh(80.0),
        );
        assert!(c.classify(&record).is_some());
    }

    #[test]
    fn paper_classification_is_mece() {
        let report = paper_classification().unwrap().verify_mece();
        assert!(report.is_mece(), "{report:?}");
        assert_eq!(report.multi_matched, 0);
        assert_eq!(report.mismatches, 0);
        assert!(report.unreached_leaves.is_empty(), "{report:?}");
        assert!(report.probes > 1000);
        assert!(report.non_incidents > 0, "quality thresholds exist");
    }

    #[test]
    fn classify_agrees_with_leaf_predicates() {
        let c = paper_classification().unwrap();
        let record = IncidentRecord::collision(Involvement::ego_with(ObjectType::Car), kmh(33.0));
        let by_classify = c.classify(&record).unwrap();
        let by_predicate: Vec<&IncidentType> =
            c.leaves().iter().filter(|t| t.matches(&record)).collect();
        assert_eq!(by_predicate.len(), 1);
        assert_eq!(by_predicate[0].id(), by_classify.id());
    }

    #[test]
    fn incident_type_lookup() {
        let c = paper_classification().unwrap();
        assert!(c.incident_type(&"I2".into()).is_some());
        assert!(c.incident_type(&"nope".into()).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let c = paper_classification().unwrap();
        let back: IncidentClassification =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(c, back);
    }
}
