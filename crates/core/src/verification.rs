//! Statistical verification of a QRN against measured incident data.
//!
//! A safety goal with a quantitative integrity attribute is *demonstrated*
//! statistically: `k` observed instances of the incident type over fleet
//! exposure `T` give an exact Poisson upper confidence bound on the true
//! rate; if the bound lies below the budget, the goal is demonstrated at
//! that confidence. Class-level verdicts propagate the per-type bounds
//! through the share matrix — conservatively, by summing upper bounds.
//!
//! Evidence arrives as a unified [`EvidenceLedger`] ([`verify_evidence`]):
//! crude campaigns, splitting campaigns and fleet logs all produce one,
//! and ledgers merge, so design-time and operational evidence combine
//! into a single Eq. (1) check. [`verify`] is the integer-count
//! compatibility wrapper over the same logic.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_stats::evidence::EvidenceLedger;
use qrn_stats::poisson::{PoissonRate, WeightedCount, WeightedPoissonRate};
use qrn_stats::special::chi_square_quantile;
use qrn_units::{Frequency, Hours};

use crate::allocation::Allocation;
use crate::classification::IncidentClassification;
use crate::consequence::ConsequenceClassId;
use crate::error::CoreError;
use crate::incident::{IncidentRecord, IncidentTypeId};
use crate::norm::QuantitativeRiskNorm;

/// Measured incident counts over a common exposure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredIncidents {
    counts: BTreeMap<IncidentTypeId, u64>,
    exposure: Hours,
}

impl MeasuredIncidents {
    /// Creates a measurement from explicit per-type counts.
    pub fn new(counts: BTreeMap<IncidentTypeId, u64>, exposure: Hours) -> Self {
        MeasuredIncidents { counts, exposure }
    }

    /// An empty measurement: no counts, zero exposure. The identity of
    /// [`MeasuredIncidents::merge`], and the starting point for streaming
    /// accumulation via [`MeasuredIncidents::observe`].
    pub fn empty() -> Self {
        MeasuredIncidents {
            counts: BTreeMap::new(),
            exposure: Hours::ZERO,
        }
    }

    /// Classifies and tallies one raw record in place. Returns `true` when
    /// the record was an incident under the classification.
    ///
    /// Streaming counterpart of [`MeasuredIncidents::from_records`]: a
    /// campaign can fold millions of records into fixed-size counts
    /// without ever materialising them.
    pub fn observe(
        &mut self,
        classification: &IncidentClassification,
        record: &IncidentRecord,
    ) -> bool {
        match classification.classify(record) {
            Some(t) => {
                *self.counts.entry(t.id().clone()).or_insert(0) += 1;
                true
            }
            None => false,
        }
    }

    /// Extends the exposure under which the counts were observed.
    pub fn add_exposure(&mut self, exposure: Hours) {
        self.exposure = self.exposure + exposure;
    }

    /// Tallies one *already classified* incident in place — the counterpart
    /// of [`MeasuredIncidents::observe`] for callers that classified the
    /// record themselves (to feed several tallies from one classification
    /// pass).
    pub fn tally(&mut self, id: &IncidentTypeId) {
        *self.counts.entry(id.clone()).or_insert(0) += 1;
    }

    /// Converts the measurement into the unified evidence representation:
    /// a global-row-only [`EvidenceLedger`] whose per-kind masses are the
    /// exact unit-weight counts ([`WeightedCount::unit`]). Verifying the
    /// ledger reproduces verifying the measurement bit-for-bit.
    pub fn to_ledger(&self) -> EvidenceLedger {
        let mut ledger = EvidenceLedger::new();
        ledger.add_exposure(None, self.exposure.value());
        for (id, &n) in &self.counts {
            ledger.add_count(None, id.as_str(), &WeightedCount::unit(n));
        }
        ledger
    }

    /// Classifies raw records and tallies them per incident type. Returns
    /// the measurement plus the number of records that were not incidents
    /// under the classification.
    pub fn from_records<'a, I>(
        classification: &IncidentClassification,
        records: I,
        exposure: Hours,
    ) -> (Self, usize)
    where
        I: IntoIterator<Item = &'a IncidentRecord>,
    {
        let mut counts: BTreeMap<IncidentTypeId, u64> = BTreeMap::new();
        let mut non_incidents = 0;
        for record in records {
            match classification.classify(record) {
                Some(t) => *counts.entry(t.id().clone()).or_insert(0) += 1,
                None => non_incidents += 1,
            }
        }
        (MeasuredIncidents { counts, exposure }, non_incidents)
    }

    /// The count of one incident type (zero when never seen).
    pub fn count(&self, id: &IncidentTypeId) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// The common exposure.
    pub fn exposure(&self) -> Hours {
        self.exposure
    }

    /// The Poisson observation of one incident type.
    pub fn observation(&self, id: &IncidentTypeId) -> PoissonRate {
        PoissonRate::new(self.count(id), self.exposure)
    }

    /// Total incident count across all types.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Pools another measurement of the same process in place (counts add,
    /// exposure adds). Associative, so parallel partials can be reduced in
    /// any grouping that preserves order.
    pub fn merge(&mut self, other: &MeasuredIncidents) {
        for (id, n) in &other.counts {
            *self.counts.entry(id.clone()).or_insert(0) += n;
        }
        self.exposure = self.exposure + other.exposure;
    }

    /// Pools another measurement of the same process (counts add, exposure
    /// adds).
    pub fn merged(mut self, other: &MeasuredIncidents) -> MeasuredIncidents {
        self.merge(other);
        self
    }
}

/// Outcome of a statistical check against a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The upper confidence bound lies below the budget: demonstrated.
    Demonstrated,
    /// Neither demonstrated nor violated at this confidence: more exposure
    /// needed.
    Inconclusive,
    /// The lower confidence bound lies above the budget: statistically
    /// established violation.
    Violated,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Demonstrated => f.write_str("demonstrated"),
            Verdict::Inconclusive => f.write_str("inconclusive"),
            Verdict::Violated => f.write_str("violated"),
        }
    }
}

/// Verdict for one safety goal (incident type budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalVerdict {
    /// The incident type.
    pub incident: IncidentTypeId,
    /// Its frequency budget.
    pub budget: Frequency,
    /// Observed count and exposure. For weighted evidence the count is the
    /// number of weighted observations; the bounds then come from
    /// [`GoalVerdict::weighted`] instead.
    pub observed: PoissonRate,
    /// The weighted observation behind the bounds, when the evidence
    /// carried non-unit weights (`None` for exact integer counts, whose
    /// bounds are the classic Garwood ones on `observed`).
    pub weighted: Option<WeightedPoissonRate>,
    /// One-sided upper confidence bound on the true rate.
    pub upper_bound: Frequency,
    /// The verdict.
    pub verdict: Verdict,
}

/// Verdict for one consequence class of the norm.
///
/// The class-level bounds combine per-incident-type bounds through the
/// share matrix. The **upper** bound (used for `Demonstrated`) is a sum of
/// individual upper bounds and therefore *conservative*: if it clears the
/// budget, the class genuinely clears it at ≥ the nominal confidence. The
/// **lower** bound (used for `Violated`) sums individual lower bounds,
/// whose joint confidence is weaker than nominal when many types
/// contribute; treat a class-level `Violated` as a strong flag to
/// investigate the per-goal verdicts (which are individually exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassVerdict {
    /// The consequence class.
    pub class: ConsequenceClassId,
    /// Its acceptable budget.
    pub budget: Frequency,
    /// Point estimate of the class load (sum of point rates × shares).
    pub point_load: Frequency,
    /// Conservative upper bound on the class load (sum of per-type upper
    /// bounds × shares).
    pub load_upper_bound: Frequency,
    /// The verdict.
    pub verdict: Verdict,
}

/// Full verification of a QRN against measured data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// One-sided confidence level used for every bound.
    pub confidence: f64,
    /// Per-safety-goal verdicts, in incident id order.
    pub goals: Vec<GoalVerdict>,
    /// Per-consequence-class verdicts, in severity order.
    pub classes: Vec<ClassVerdict>,
}

impl VerificationReport {
    /// Returns `true` when every goal and every class is demonstrated.
    pub fn all_demonstrated(&self) -> bool {
        self.goals
            .iter()
            .all(|g| g.verdict == Verdict::Demonstrated)
            && self
                .classes
                .iter()
                .all(|c| c.verdict == Verdict::Demonstrated)
    }

    /// Returns `true` when any goal or class is a statistically established
    /// violation.
    pub fn any_violated(&self) -> bool {
        self.goals.iter().any(|g| g.verdict == Verdict::Violated)
            || self.classes.iter().any(|c| c.verdict == Verdict::Violated)
    }

    /// The verdict row of one goal, if present.
    pub fn goal(&self, id: &IncidentTypeId) -> Option<&GoalVerdict> {
        self.goals.iter().find(|g| &g.incident == id)
    }

    /// The verdict row of one class, if present.
    pub fn class(&self, id: &ConsequenceClassId) -> Option<&ClassVerdict> {
        self.classes.iter().find(|c| &c.class == id)
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Verification at {:.0}% confidence:",
            self.confidence * 100.0
        )?;
        for g in &self.goals {
            writeln!(
                f,
                "  SG-{}: {} events, upper bound {} vs budget {} -> {}",
                g.incident, g.observed.count, g.upper_bound, g.budget, g.verdict
            )?;
        }
        for c in &self.classes {
            writeln!(
                f,
                "  {}: load ≤ {} vs budget {} -> {}",
                c.class, c.load_upper_bound, c.budget, c.verdict
            )?;
        }
        Ok(())
    }
}

/// Additional *failure-free* exposure needed before an observation would
/// demonstrate its budget at the given one-sided confidence.
///
/// Solves `χ²(γ; 2k + 2) / (2(T + x)) ≤ budget` for `x`, returning zero
/// when the observation already demonstrates.
///
/// # Errors
///
/// Returns [`CoreError`] for a zero budget or an invalid confidence.
///
/// # Examples
///
/// ```
/// use qrn_core::verification::additional_clean_exposure;
/// use qrn_stats::poisson::PoissonRate;
/// use qrn_units::{Frequency, Hours};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let observed = PoissonRate::new(0, Hours::new(1.0e5)?);
/// let budget = Frequency::per_hour(1e-5)?;
/// let more = additional_clean_exposure(observed, budget, 0.95)?;
/// // ~3/budget total needed, 1e5 already driven:
/// assert!((more.value() - 1.9957e5).abs() / 1.9957e5 < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn additional_clean_exposure(
    observed: PoissonRate,
    budget: Frequency,
    confidence: f64,
) -> Result<Hours, CoreError> {
    if budget.as_per_hour() <= 0.0 {
        return Err(CoreError::InvalidAllocation(
            "a zero budget can never be demonstrated by exposure".into(),
        ));
    }
    if !(confidence.is_finite() && 0.0 < confidence && confidence < 1.0) {
        return Err(CoreError::InvalidAllocation(format!(
            "confidence must lie strictly between 0 and 1, got {confidence}"
        )));
    }
    let q = chi_square_quantile(2.0 * observed.count as f64 + 2.0, confidence)
        .map_err(CoreError::from)?;
    let total_needed = q / (2.0 * budget.as_per_hour());
    Hours::new((total_needed - observed.exposure.value()).max(0.0)).map_err(CoreError::from)
}

impl VerificationReport {
    /// The demonstration plan: for every not-yet-demonstrated goal, the
    /// additional failure-free exposure needed at this report's confidence.
    /// Violated goals are included — their number answers "how much clean
    /// driving would it take to outweigh what we saw", which is exactly
    /// the cost of having observed the events.
    pub fn demonstration_plan(&self) -> Vec<(IncidentTypeId, Hours)> {
        self.goals
            .iter()
            .filter(|g| g.verdict != Verdict::Demonstrated)
            .map(|g| {
                let hours = additional_clean_exposure(g.observed, g.budget, self.confidence)
                    .unwrap_or(Hours::ZERO);
                (g.incident.clone(), hours)
            })
            .collect()
    }
}

/// Verifies measured incident data against the allocation's safety goals
/// and the norm's consequence-class budgets.
///
/// This is the integer-count compatibility path, kept for callers that
/// still hold a [`MeasuredIncidents`]; it simply converts to the unified
/// evidence representation and delegates to [`verify_evidence`], which is
/// what new code should call directly (it accepts weighted evidence and
/// merged ledgers too). The delegation is exact: identical reports,
/// bit-for-bit.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid confidence, zero exposure, or share
/// matrices referencing classes outside the norm.
///
/// # Examples
///
/// ```
/// use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
/// use qrn_core::verification::{verify, MeasuredIncidents};
/// use qrn_units::Hours;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let norm = paper_norm()?;
/// let classification = paper_classification()?;
/// let allocation = paper_allocation(&classification)?;
///
/// // A clean billion-hour fleet campaign demonstrates everything.
/// let measured = MeasuredIncidents::new(Default::default(), Hours::new(1.0e12)?);
/// let report = verify(&norm, &allocation, &measured, 0.95)?;
/// assert!(report.all_demonstrated());
/// # Ok(())
/// # }
/// ```
pub fn verify(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    measured: &MeasuredIncidents,
    confidence: f64,
) -> Result<VerificationReport, CoreError> {
    verify_evidence(norm, allocation, &measured.to_ledger(), confidence)
}

/// Verifies a unified [`EvidenceLedger`] against the allocation's safety
/// goals and the norm's consequence-class budgets — the Eq. (1) check for
/// evidence from *any* producer: crude campaigns, multilevel-splitting
/// campaigns, operational fleet logs, or any merge of them.
///
/// Per safety goal, the ledger's global weighted mass for the incident
/// kind is bounded over the global exposure. Unit-weight masses (the crude
/// and fleet case, [`WeightedCount::is_unweighted`]) take the exact
/// integer Garwood path and reproduce [`verify`] on the corresponding
/// [`MeasuredIncidents`] bit-for-bit; weighted masses use effective-count
/// (Kish) intervals via [`WeightedPoissonRate`], reported in the verdict's
/// [`GoalVerdict::weighted`] field.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid confidence, zero exposure, or share
/// matrices referencing classes outside the norm.
pub fn verify_evidence(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    evidence: &EvidenceLedger,
    confidence: f64,
) -> Result<VerificationReport, CoreError> {
    for class in allocation.shares().referenced_classes() {
        if norm.class(class).is_none() {
            return Err(CoreError::UnknownId {
                kind: "consequence class",
                id: class.as_str().to_string(),
            });
        }
    }
    let exposure = Hours::new(evidence.exposure()).map_err(CoreError::from)?;
    let mut goals = Vec::new();
    let mut upper_bounds: BTreeMap<IncidentTypeId, Frequency> = BTreeMap::new();
    let mut point_rates: BTreeMap<IncidentTypeId, Frequency> = BTreeMap::new();
    let mut lower_bounds: BTreeMap<IncidentTypeId, Frequency> = BTreeMap::new();
    for (incident, budget) in allocation.budgets() {
        let count = evidence.count(incident.as_str());
        let observed = PoissonRate::new(count.observations(), exposure);
        let (weighted, point, upper, lower) = if count.is_unweighted() {
            (
                None,
                observed.point_estimate()?,
                observed.upper_bound(confidence)?,
                observed.lower_bound(confidence)?,
            )
        } else {
            let w = WeightedPoissonRate::new(count, exposure);
            (
                Some(w),
                w.point_estimate()?,
                w.upper_bound(confidence)?,
                w.lower_bound(confidence)?,
            )
        };
        let verdict = if upper <= budget {
            Verdict::Demonstrated
        } else if lower > budget {
            Verdict::Violated
        } else {
            Verdict::Inconclusive
        };
        upper_bounds.insert(incident.clone(), upper);
        point_rates.insert(incident.clone(), point);
        lower_bounds.insert(incident.clone(), lower);
        goals.push(GoalVerdict {
            incident: incident.clone(),
            budget,
            observed,
            weighted,
            upper_bound: upper,
            verdict,
        });
    }
    let classes = norm
        .classes()
        .map(|c| {
            let budget = norm.budget(c.id()).expect("class is in norm");
            let mut upper = Frequency::ZERO;
            let mut point = Frequency::ZERO;
            let mut lower = Frequency::ZERO;
            for (incident, _) in allocation.budgets() {
                let share = allocation.shares().share(incident, c.id());
                upper = upper + upper_bounds[incident] * share;
                point = point + point_rates[incident] * share;
                lower = lower + lower_bounds[incident] * share;
            }
            let verdict = if upper <= budget {
                Verdict::Demonstrated
            } else if lower > budget {
                Verdict::Violated
            } else {
                Verdict::Inconclusive
            };
            ClassVerdict {
                class: c.id().clone(),
                budget,
                point_load: point,
                load_upper_bound: upper,
                verdict,
            }
        })
        .collect();
    Ok(VerificationReport {
        confidence,
        goals,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_allocation, paper_classification, paper_norm};
    use crate::object::{Involvement, ObjectType};
    use qrn_units::Speed;

    fn h(x: f64) -> Hours {
        Hours::new(x).unwrap()
    }

    fn setup() -> (QuantitativeRiskNorm, IncidentClassification, Allocation) {
        let norm = paper_norm().unwrap();
        let c = paper_classification().unwrap();
        let a = paper_allocation(&c).unwrap();
        (norm, c, a)
    }

    #[test]
    fn clean_long_campaign_demonstrates() {
        let (norm, _, a) = setup();
        let measured = MeasuredIncidents::new(Default::default(), h(1e12));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        assert!(report.all_demonstrated());
        assert!(!report.any_violated());
    }

    #[test]
    fn short_campaign_is_inconclusive() {
        let (norm, _, a) = setup();
        let measured = MeasuredIncidents::new(Default::default(), h(10.0));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        assert!(!report.all_demonstrated());
        assert!(!report.any_violated());
        assert!(report
            .goals
            .iter()
            .any(|g| g.verdict == Verdict::Inconclusive));
    }

    #[test]
    fn heavy_incident_load_is_violated() {
        let (norm, _, a) = setup();
        // 1000 severe VRU collisions in 1000 hours: far above any budget.
        let counts: BTreeMap<IncidentTypeId, u64> = [("I3".into(), 1000u64)].into();
        let measured = MeasuredIncidents::new(counts, h(1000.0));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        assert!(report.any_violated());
        assert_eq!(
            report.goal(&"I3".into()).unwrap().verdict,
            Verdict::Violated
        );
        // the classes I3 feeds are violated too
        assert_eq!(
            report.class(&"vS3".into()).unwrap().verdict,
            Verdict::Violated
        );
    }

    #[test]
    fn from_records_classifies_and_counts() {
        let (_, c, _) = setup();
        let ego_vru = Involvement::ego_with(ObjectType::Vru);
        let records = vec![
            IncidentRecord::collision(ego_vru, Speed::from_kmh(5.0).unwrap()),
            IncidentRecord::collision(ego_vru, Speed::from_kmh(30.0).unwrap()),
            IncidentRecord::collision(ego_vru, Speed::from_kmh(7.0).unwrap()),
            // not an incident: slow distant pass
            IncidentRecord::near_miss(
                ego_vru,
                qrn_units::Meters::new(5.0).unwrap(),
                Speed::from_kmh(3.0).unwrap(),
            ),
        ];
        let (measured, non_incidents) = MeasuredIncidents::from_records(&c, &records, h(100.0));
        assert_eq!(measured.count(&"I2".into()), 2);
        assert_eq!(measured.count(&"I3".into()), 1);
        assert_eq!(measured.count(&"I4".into()), 0);
        assert_eq!(measured.total(), 3);
        assert_eq!(non_incidents, 1);
    }

    #[test]
    fn merged_pools_counts_and_exposure() {
        let a = MeasuredIncidents::new([("I2".into(), 2u64)].into(), h(10.0));
        let b = MeasuredIncidents::new([("I2".into(), 3u64), ("I3".into(), 1u64)].into(), h(20.0));
        let m = a.merged(&b);
        assert_eq!(m.count(&"I2".into()), 5);
        assert_eq!(m.count(&"I3".into()), 1);
        assert_eq!(m.exposure(), h(30.0));
    }

    #[test]
    fn class_upper_bound_dominates_point_load() {
        let (norm, _, a) = setup();
        let counts: BTreeMap<IncidentTypeId, u64> = [("I2".into(), 3u64)].into();
        let measured = MeasuredIncidents::new(counts, h(1e7));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        for c in &report.classes {
            assert!(c.load_upper_bound >= c.point_load, "{}", c.class);
        }
    }

    #[test]
    fn invalid_confidence_is_an_error() {
        let (norm, _, a) = setup();
        let measured = MeasuredIncidents::new(Default::default(), h(100.0));
        assert!(verify(&norm, &a, &measured, 1.0).is_err());
    }

    #[test]
    fn display_lists_goals_and_classes() {
        let (norm, _, a) = setup();
        let measured = MeasuredIncidents::new(Default::default(), h(1e12));
        let text = verify(&norm, &a, &measured, 0.95).unwrap().to_string();
        assert!(text.contains("SG-I2"));
        assert!(text.contains("vS3"));
        assert!(text.contains("demonstrated"));
    }

    #[test]
    fn serde_round_trip() {
        let (norm, _, a) = setup();
        let measured = MeasuredIncidents::new(Default::default(), h(1e9));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        let back: VerificationReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn additional_exposure_reaches_exactly_the_demonstration_boundary() {
        let budget = Frequency::per_hour(1e-6).unwrap();
        for k in [0u64, 2, 7] {
            let observed = PoissonRate::new(k, h(1e5));
            let more = additional_clean_exposure(observed, budget, 0.95).unwrap();
            // Driving exactly that much more, cleanly, demonstrates.
            let after = PoissonRate::new(k, h(1e5 + more.value() + 1.0));
            assert!(after.demonstrates_below(budget, 0.95).unwrap(), "k={k}");
            // A little less does not (when more > 0).
            if more.value() > 10.0 {
                let before = PoissonRate::new(k, h(1e5 + more.value() * 0.99));
                assert!(!before.demonstrates_below(budget, 0.95).unwrap(), "k={k}");
            }
        }
    }

    #[test]
    fn additional_exposure_is_zero_once_demonstrated() {
        let budget = Frequency::per_hour(1e-3).unwrap();
        let observed = PoissonRate::new(0, h(1e6));
        assert!(observed.demonstrates_below(budget, 0.95).unwrap());
        let more = additional_clean_exposure(observed, budget, 0.95).unwrap();
        assert_eq!(more, Hours::ZERO);
    }

    #[test]
    fn additional_exposure_rejects_degenerate_inputs() {
        let observed = PoissonRate::new(0, h(1.0));
        assert!(additional_clean_exposure(observed, Frequency::ZERO, 0.95).is_err());
        let budget = Frequency::per_hour(1e-6).unwrap();
        assert!(additional_clean_exposure(observed, budget, 1.0).is_err());
    }

    #[test]
    fn ledger_verification_is_byte_identical_to_measured_path() {
        let (norm, _, a) = setup();
        let cases: Vec<(BTreeMap<IncidentTypeId, u64>, f64)> = vec![
            (Default::default(), 1e12),
            (Default::default(), 10.0),
            ([("I2".into(), 3u64)].into(), 1e7),
            ([("I3".into(), 1000u64)].into(), 1000.0),
        ];
        for (counts, hours) in cases {
            let measured = MeasuredIncidents::new(counts, h(hours));
            let direct = verify(&norm, &a, &measured, 0.95).unwrap();
            let via_ledger = verify_evidence(&norm, &a, &measured.to_ledger(), 0.95).unwrap();
            assert_eq!(direct, via_ledger);
            assert_eq!(
                serde_json::to_string(&direct).unwrap(),
                serde_json::to_string(&via_ledger).unwrap()
            );
            // unit-weight evidence takes the exact integer path
            assert!(via_ledger.goals.iter().all(|g| g.weighted.is_none()));
        }
    }

    #[test]
    fn weighted_evidence_uses_effective_bounds() {
        let (norm, _, a) = setup();
        let mut ledger = EvidenceLedger::new();
        ledger.add_exposure(None, 1.0e6);
        // Importance-weighted splitting mass: 16 observations of 1/8 each.
        for _ in 0..16 {
            ledger.add_incident(None, "I3", 0.125);
        }
        let report = verify_evidence(&norm, &a, &ledger, 0.95).unwrap();
        let goal = report.goal(&"I3".into()).unwrap();
        let w = goal
            .weighted
            .expect("non-unit weights take the weighted path");
        assert_eq!(goal.observed.count, 16);
        assert!((w.count.total() - 2.0).abs() < 1e-12);
        // The effective bound is driven by mass 2 over 1e6 h, not by 16
        // integer events.
        assert!(goal.upper_bound < PoissonRate::new(16, h(1.0e6)).upper_bound(0.95).unwrap());
    }

    #[test]
    fn merged_sim_and_fleet_evidence_verifies_combined_exposure() {
        let (norm, _, a) = setup();
        // Design-time campaign: weighted, with zone refinements.
        let mut sim = EvidenceLedger::new();
        sim.add_exposure(None, 5.0e5);
        sim.add_exposure(Some("urban"), 2.0e5);
        sim.add_incident(None, "I2", 0.25);
        sim.add_incident(Some("urban"), "I2", 0.25);
        // Operational fleet: unit weights, global row only.
        let fleet = MeasuredIncidents::new([("I2".into(), 1u64)].into(), h(5.0e5)).to_ledger();
        let combined = sim.merged(&fleet);
        assert_eq!(combined.exposure(), 1.0e6);
        let report = verify_evidence(&norm, &a, &combined, 0.95).unwrap();
        let goal = report.goal(&"I2".into()).unwrap();
        // Mixed unit + fractional weights: the weighted path.
        assert!(goal.weighted.is_some());
        assert_eq!(goal.observed.exposure, h(1.0e6));
        assert_eq!(goal.observed.count, 2);
    }

    #[test]
    fn demonstration_plan_covers_non_demonstrated_goals() {
        let (norm, _, a) = setup();
        // Short campaign: everything inconclusive.
        let measured = MeasuredIncidents::new(Default::default(), h(100.0));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        let plan = report.demonstration_plan();
        assert_eq!(plan.len(), report.goals.len());
        assert!(plan.iter().all(|(_, hours)| hours.value() > 0.0));
        // Astronomic campaign: everything demonstrated, empty plan.
        let measured = MeasuredIncidents::new(Default::default(), h(1e13));
        let report = verify(&norm, &a, &measured, 0.95).unwrap();
        assert!(report.demonstration_plan().is_empty());
    }
}
