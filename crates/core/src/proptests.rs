//! Property-based tests for the core invariants.
//!
//! The QRN's value as a safety argument rests on a handful of structural
//! properties; these tests attack each with randomized inputs:
//!
//! * any classification built from valid bands is MECE for *any* record;
//! * the proportional solver never violates Eq. (1), at any utilisation;
//! * norm validation accepts exactly the monotone budget vectors;
//! * budget scaling moves class loads linearly and never below zero.

use std::collections::BTreeMap;

use proptest::prelude::*;

use qrn_units::{Frequency, Meters, Probability, Speed};

use crate::allocation::{allocate_proportional, ShareMatrix};
use crate::classification::{GroupRules, IncidentClassification};
use crate::consequence::{ConsequenceClass, ConsequenceDomain};
use crate::examples::{paper_classification, paper_norm, paper_shares, paper_weights};
use crate::incident::{IncidentRecord, IncidentTypeId};
use crate::norm::QuantitativeRiskNorm;
use crate::object::{Involvement, InvolvementClass, ObjectType};

fn kmh(v: f64) -> Speed {
    Speed::from_kmh(v).expect("strategy produces valid speeds")
}

/// Strategy: a random but *valid* classification — every group gets
/// strictly ascending collision boundaries and optionally a near-miss rule.
fn classification_strategy() -> impl Strategy<Value = IncidentClassification> {
    let group = (
        proptest::collection::vec(1.0f64..200.0, 0..4),
        proptest::option::of((0.2f64..3.0, 1.0f64..60.0)),
    );
    proptest::collection::vec(group, 8).prop_map(|groups| {
        let mut builder = IncidentClassification::builder();
        for (class, (mut bounds, near_miss)) in InvolvementClass::ALL.into_iter().zip(groups) {
            bounds.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            bounds.dedup_by(|a, b| (*a - *b).abs() < 0.5);
            let mut rules = GroupRules::builder();
            for (i, b) in bounds.iter().enumerate() {
                rules = rules.collision_band_below(kmh(*b), format!("{class}/C{i}"));
            }
            rules = rules.collision_tail(format!("{class}/tail"));
            if let Some((dist, from)) = near_miss {
                rules = rules
                    .near_miss_within(Meters::new(dist).expect("positive"))
                    .near_miss_band_from(kmh(from), format!("{class}/NM"));
            }
            builder = builder.group(class, rules.build().expect("constructed valid"));
        }
        builder.build().expect("all groups present, unique labels")
    })
}

/// Strategy: an arbitrary incident record.
fn record_strategy() -> impl Strategy<Value = IncidentRecord> {
    let object = proptest::sample::select(ObjectType::ALL.to_vec());
    let involvement = (object.clone(), object, any::<bool>()).prop_map(|(a, b, ego)| {
        if ego {
            Involvement::ego_with(a)
        } else {
            Involvement::induced(a, b)
        }
    });
    (involvement, 0.0f64..250.0, 0.0f64..5.0, any::<bool>()).prop_map(
        |(involvement, speed, dist, collision)| {
            if collision {
                IncidentRecord::collision(involvement, kmh(speed))
            } else {
                IncidentRecord::near_miss(
                    involvement,
                    Meters::new(dist).expect("positive"),
                    kmh(speed),
                )
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutual exclusivity and classify/predicate agreement hold for any
    /// valid classification and any record.
    #[test]
    fn any_valid_classification_is_mece(
        classification in classification_strategy(),
        records in proptest::collection::vec(record_strategy(), 50),
    ) {
        for record in &records {
            let matching: Vec<_> = classification
                .leaves()
                .iter()
                .filter(|t| t.matches(record))
                .collect();
            prop_assert!(matching.len() <= 1, "record {record} matched {}", matching.len());
            match classification.classify(record) {
                Some(t) => {
                    prop_assert_eq!(matching.len(), 1);
                    prop_assert_eq!(matching[0].id(), t.id());
                }
                None => prop_assert!(matching.is_empty()),
            }
        }
    }

    /// Collisions are always incidents: the bands tile [0, inf).
    #[test]
    fn collisions_never_escape_classification(
        classification in classification_strategy(),
        speed in 0.0f64..500.0,
        object in proptest::sample::select(ObjectType::ALL.to_vec()),
    ) {
        let record = IncidentRecord::collision(Involvement::ego_with(object), kmh(speed));
        prop_assert!(classification.classify(&record).is_some());
    }

    /// The proportional solver never violates Eq. (1), for any weights and
    /// any utilisation target in (0, 1].
    #[test]
    fn proportional_solver_respects_eq1(
        seed_weights in proptest::collection::vec(0.0f64..100.0, 22),
        target in 0.01f64..1.0,
    ) {
        let norm = paper_norm().expect("builds");
        let classification = paper_classification().expect("builds");
        let shares = paper_shares(&classification).expect("builds");
        let mut weights: BTreeMap<IncidentTypeId, f64> = paper_weights(&classification);
        for (w, (_, slot)) in seed_weights.iter().zip(weights.iter_mut()) {
            // keep at least one positive weight to avoid the degenerate case
            *slot = *w;
        }
        if weights.values().all(|w| *w == 0.0) {
            *weights.values_mut().next().expect("non-empty") = 1.0;
        }
        let allocation = allocate_proportional(&norm, &shares, &weights, target)
            .expect("solvable for positive weights");
        let report = allocation.check(&norm).expect("classes in norm");
        prop_assert!(report.is_fulfilled(), "{report}");
        // and the binding utilisation is (approximately) the target
        let max_util = report.rows().iter().filter_map(|r| r.utilisation).fold(0.0, f64::max);
        prop_assert!(max_util <= target + 1e-9);
    }

    /// Norm validation accepts monotone budgets and rejects any inversion.
    #[test]
    fn norm_builder_accepts_exactly_monotone_budgets(
        raw in proptest::collection::vec(1e-9f64..1e-2, 2..6),
        invert_at in proptest::option::of(0usize..4),
    ) {
        let mut budgets = raw.clone();
        budgets.sort_by(|a, b| b.partial_cmp(a).expect("no NaN")); // non-increasing
        let inverted = match invert_at {
            Some(i) if i + 1 < budgets.len() && budgets[i] != budgets[i + 1] => {
                budgets.swap(i, i + 1);
                true
            }
            _ => false,
        };
        let mut builder = QuantitativeRiskNorm::builder();
        for (i, b) in budgets.iter().enumerate() {
            builder = builder.class(
                ConsequenceClass::new(
                    format!("v{i}"),
                    ConsequenceDomain::Safety,
                    i as u8,
                    "generated",
                ),
                Frequency::per_hour(*b).expect("positive"),
            );
        }
        let result = builder.build();
        if inverted {
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Scaling one incident budget scales exactly its contributions:
    /// class load deltas equal (1 - factor) * budget * share.
    #[test]
    fn budget_scaling_is_linear(factor in 0.0f64..1.0) {
        let norm = paper_norm().expect("builds");
        let classification = paper_classification().expect("builds");
        let allocation = crate::examples::paper_allocation(&classification).expect("builds");
        let id: IncidentTypeId = "I3".into();
        let budget = allocation.incident_budget(&id).expect("budgeted");
        let scaled = allocation.with_scaled_budget(&id, factor).expect("valid factor");
        for class in norm.classes() {
            let share = allocation.shares().share(&id, class.id()).value();
            let before = allocation.class_load(class.id()).as_per_hour();
            let after = scaled.class_load(class.id()).as_per_hour();
            let expected_delta = budget.as_per_hour() * share * (1.0 - factor);
            prop_assert!(
                ((before - after) - expected_delta).abs() <= 1e-12 * before.max(1e-12),
                "class {}: delta {} vs expected {}",
                class.id(), before - after, expected_delta
            );
        }
    }

    /// Share rows summing above 1 are always rejected; at or below 1
    /// always accepted.
    #[test]
    fn share_matrix_row_sum_rule(shares in proptest::collection::vec(0.0f64..0.5, 1..6)) {
        let total: f64 = shares.iter().sum();
        let mut builder = ShareMatrix::builder();
        for (i, s) in shares.iter().enumerate() {
            builder = builder.share(
                "I1",
                format!("v{i}").as_str(),
                Probability::new(*s).expect("in [0,1]"),
            );
        }
        let result = builder.build();
        if total > 1.0 + 1e-12 {
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_ok());
        }
    }
}
