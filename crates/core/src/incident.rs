//! Incident types, tolerance margins and concrete incident records.
//!
//! An incident type is "an interaction between ego vehicle and
//! `<object_type>` within `<tolerance_margin>`", where the margin "is for
//! accidents telling the impact speed, and for quality-related incidents
//! limits for distance and corresponding relative speed" (Sec. III-B).

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::{Meters, Speed};

use crate::object::Involvement;

/// Identifier of an incident type, e.g. `I2` or `EgoCar/C1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IncidentTypeId(String);

impl IncidentTypeId {
    /// Creates an identifier.
    pub fn new(id: impl Into<String>) -> Self {
        IncidentTypeId(id.into())
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IncidentTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for IncidentTypeId {
    fn from(s: &str) -> Self {
        IncidentTypeId::new(s)
    }
}

impl From<String> for IncidentTypeId {
    fn from(s: String) -> Self {
        IncidentTypeId(s)
    }
}

/// The `<tolerance_margin>` of an incident type.
///
/// Margins are half-open bands so that adjacent bands tile without overlap:
/// a band covers `lo ≤ x < hi`, with `hi = None` meaning unbounded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ToleranceMargin {
    /// An accident band over collision impact speed: `lo ≤ Δv < hi`.
    ImpactSpeed {
        /// Inclusive lower bound of impact speed.
        lo: Speed,
        /// Exclusive upper bound, or `None` for unbounded.
        hi: Option<Speed>,
    },
    /// A quality band over near-miss geometry: passing within
    /// `max_distance` while the relative speed lies in `lo ≤ Δv < hi`.
    Proximity {
        /// The distance below which the interaction counts (exclusive).
        max_distance: Meters,
        /// Inclusive lower bound of relative speed.
        lo: Speed,
        /// Exclusive upper bound of relative speed, or `None` for unbounded.
        hi: Option<Speed>,
    },
}

impl ToleranceMargin {
    /// Returns `true` when the margin matches a concrete incident kind.
    pub fn matches(&self, kind: &IncidentKind) -> bool {
        match (self, kind) {
            (ToleranceMargin::ImpactSpeed { lo, hi }, IncidentKind::Collision { impact_speed }) => {
                in_band(*impact_speed, *lo, *hi)
            }
            (
                ToleranceMargin::Proximity {
                    max_distance,
                    lo,
                    hi,
                },
                IncidentKind::NearMiss {
                    distance,
                    relative_speed,
                },
            ) => distance < max_distance && in_band(*relative_speed, *lo, *hi),
            _ => false,
        }
    }
}

fn in_band(v: Speed, lo: Speed, hi: Option<Speed>) -> bool {
    v >= lo && hi.is_none_or(|h| v < h)
}

impl fmt::Display for ToleranceMargin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToleranceMargin::ImpactSpeed { lo, hi } => match hi {
                Some(hi) => write!(
                    f,
                    "{:.0} ≤ Δv_collision < {:.0} km/h",
                    lo.as_kmh(),
                    hi.as_kmh()
                ),
                None => write!(f, "Δv_collision ≥ {:.0} km/h", lo.as_kmh()),
            },
            ToleranceMargin::Proximity {
                max_distance,
                lo,
                hi,
            } => match hi {
                Some(hi) => write!(
                    f,
                    "0 ≤ d < {} & {:.0} ≤ Δv < {:.0} km/h",
                    max_distance,
                    lo.as_kmh(),
                    hi.as_kmh()
                ),
                None => write!(f, "0 ≤ d < {} & Δv ≥ {:.0} km/h", max_distance, lo.as_kmh()),
            },
        }
    }
}

/// What physically happened in a concrete incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A collision with the given impact speed (relative speed at contact).
    Collision {
        /// Impact speed Δv at contact.
        impact_speed: Speed,
    },
    /// A near-miss: minimum separation and relative speed at that moment.
    NearMiss {
        /// Minimum separation reached.
        distance: Meters,
        /// Relative speed at minimum separation.
        relative_speed: Speed,
    },
}

/// A concrete incident event, as produced by field data or the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncidentRecord {
    /// Who was involved.
    pub involvement: Involvement,
    /// What happened.
    pub kind: IncidentKind,
}

impl IncidentRecord {
    /// Creates a record.
    pub fn new(involvement: Involvement, kind: IncidentKind) -> Self {
        IncidentRecord { involvement, kind }
    }

    /// Convenience constructor for a collision record.
    pub fn collision(involvement: Involvement, impact_speed: Speed) -> Self {
        IncidentRecord::new(involvement, IncidentKind::Collision { impact_speed })
    }

    /// Convenience constructor for a near-miss record.
    pub fn near_miss(involvement: Involvement, distance: Meters, relative_speed: Speed) -> Self {
        IncidentRecord::new(
            involvement,
            IncidentKind::NearMiss {
                distance,
                relative_speed,
            },
        )
    }
}

impl fmt::Display for IncidentRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            IncidentKind::Collision { impact_speed } => {
                write!(f, "collision {} at {}", self.involvement, impact_speed)
            }
            IncidentKind::NearMiss {
                distance,
                relative_speed,
            } => write!(
                f,
                "near-miss {} at {} within {}",
                self.involvement, relative_speed, distance
            ),
        }
    }
}

/// An incident type: involvement + tolerance margin, the unit the QRN
/// allocates budgets to and derives safety goals from.
///
/// # Examples
///
/// ```
/// use qrn_core::incident::{IncidentKind, IncidentRecord, IncidentType, ToleranceMargin};
/// use qrn_core::object::{Involvement, ObjectType};
/// use qrn_units::Speed;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's I2: collision Ego↔VRU with 0 < Δv < 10 km/h.
/// let i2 = IncidentType::new(
///     "I2",
///     Involvement::ego_with(ObjectType::Vru),
///     ToleranceMargin::ImpactSpeed {
///         lo: Speed::ZERO,
///         hi: Some(Speed::from_kmh(10.0)?),
///     },
/// );
/// let hit = IncidentRecord::collision(
///     Involvement::ego_with(ObjectType::Vru),
///     Speed::from_kmh(7.0)?,
/// );
/// assert!(i2.matches(&hit));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentType {
    id: IncidentTypeId,
    involvement: Involvement,
    margin: ToleranceMargin,
    description: String,
}

impl IncidentType {
    /// Creates an incident type.
    pub fn new(
        id: impl Into<IncidentTypeId>,
        involvement: Involvement,
        margin: ToleranceMargin,
    ) -> Self {
        IncidentType {
            id: id.into(),
            involvement,
            margin,
            description: String::new(),
        }
    }

    /// Attaches a free-text description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The type identifier.
    pub fn id(&self) -> &IncidentTypeId {
        &self.id
    }

    /// Who the type involves.
    pub fn involvement(&self) -> Involvement {
        self.involvement
    }

    /// The tolerance margin.
    pub fn margin(&self) -> &ToleranceMargin {
        &self.margin
    }

    /// The free-text description (possibly empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Returns `true` when a concrete record is an instance of this type.
    pub fn matches(&self, record: &IncidentRecord) -> bool {
        record.involvement.class() == self.involvement.class() && self.margin.matches(&record.kind)
    }
}

impl fmt::Display for IncidentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} | {}", self.id, self.involvement, self.margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectType;

    fn kmh(v: f64) -> Speed {
        Speed::from_kmh(v).unwrap()
    }

    fn m(d: f64) -> Meters {
        Meters::new(d).unwrap()
    }

    fn ego_vru() -> Involvement {
        Involvement::ego_with(ObjectType::Vru)
    }

    #[test]
    fn impact_band_is_half_open() {
        let band = ToleranceMargin::ImpactSpeed {
            lo: kmh(10.0),
            hi: Some(kmh(70.0)),
        };
        assert!(band.matches(&IncidentKind::Collision {
            impact_speed: kmh(10.0)
        }));
        assert!(band.matches(&IncidentKind::Collision {
            impact_speed: kmh(69.9)
        }));
        assert!(!band.matches(&IncidentKind::Collision {
            impact_speed: kmh(70.0)
        }));
        assert!(!band.matches(&IncidentKind::Collision {
            impact_speed: kmh(9.9)
        }));
    }

    #[test]
    fn unbounded_band_catches_everything_above() {
        let band = ToleranceMargin::ImpactSpeed {
            lo: kmh(70.0),
            hi: None,
        };
        assert!(band.matches(&IncidentKind::Collision {
            impact_speed: kmh(250.0)
        }));
        assert!(!band.matches(&IncidentKind::Collision {
            impact_speed: kmh(69.0)
        }));
    }

    #[test]
    fn proximity_margin_matches_paper_i1() {
        // I1: Ego approaches VRU with Δv > 10 km/h when closer than 1 m.
        let i1 = ToleranceMargin::Proximity {
            max_distance: m(1.0),
            lo: kmh(10.0),
            hi: None,
        };
        assert!(i1.matches(&IncidentKind::NearMiss {
            distance: m(0.5),
            relative_speed: kmh(15.0)
        }));
        // too far away
        assert!(!i1.matches(&IncidentKind::NearMiss {
            distance: m(1.0),
            relative_speed: kmh(15.0)
        }));
        // too slow
        assert!(!i1.matches(&IncidentKind::NearMiss {
            distance: m(0.5),
            relative_speed: kmh(5.0)
        }));
    }

    #[test]
    fn margin_kinds_never_cross_match() {
        let collision_band = ToleranceMargin::ImpactSpeed {
            lo: Speed::ZERO,
            hi: None,
        };
        assert!(!collision_band.matches(&IncidentKind::NearMiss {
            distance: m(0.1),
            relative_speed: kmh(50.0)
        }));
        let proximity = ToleranceMargin::Proximity {
            max_distance: m(1.0),
            lo: Speed::ZERO,
            hi: None,
        };
        assert!(!proximity.matches(&IncidentKind::Collision {
            impact_speed: kmh(5.0)
        }));
    }

    #[test]
    fn type_matching_requires_same_involvement_class() {
        let i2 = IncidentType::new(
            "I2",
            ego_vru(),
            ToleranceMargin::ImpactSpeed {
                lo: Speed::ZERO,
                hi: Some(kmh(10.0)),
            },
        );
        let vru_hit = IncidentRecord::collision(ego_vru(), kmh(5.0));
        let car_hit = IncidentRecord::collision(Involvement::ego_with(ObjectType::Car), kmh(5.0));
        assert!(i2.matches(&vru_hit));
        assert!(!i2.matches(&car_hit));
    }

    #[test]
    fn display_matches_paper_notation() {
        let i2 = IncidentType::new(
            "I2",
            ego_vru(),
            ToleranceMargin::ImpactSpeed {
                lo: Speed::ZERO,
                hi: Some(kmh(10.0)),
            },
        );
        let text = i2.to_string();
        assert!(text.contains("I2"));
        assert!(text.contains("Ego↔VRU"));
        assert!(text.contains("0 ≤ Δv_collision < 10 km/h"));
    }

    #[test]
    fn record_constructors() {
        let r = IncidentRecord::near_miss(ego_vru(), m(0.8), kmh(20.0));
        assert!(matches!(r.kind, IncidentKind::NearMiss { .. }));
        let c = IncidentRecord::collision(ego_vru(), kmh(30.0));
        assert!(matches!(c.kind, IncidentKind::Collision { .. }));
        assert!(c.to_string().contains("collision"));
    }

    #[test]
    fn serde_round_trip() {
        let i = IncidentType::new(
            "I3",
            ego_vru(),
            ToleranceMargin::ImpactSpeed {
                lo: kmh(10.0),
                hi: Some(kmh(70.0)),
            },
        )
        .with_description("serious VRU collision band");
        let back: IncidentType = serde_json::from_str(&serde_json::to_string(&i).unwrap()).unwrap();
        assert_eq!(i, back);
    }
}
