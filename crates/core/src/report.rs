//! Markdown rendering of the full QRN safety documentation.
//!
//! A safety case is reviewed by humans; this module renders every artefact
//! — norm, classification, allocation, safety goals, verification verdicts
//! and the assembled argument — as one markdown document suitable for a
//! review package or a CI artifact.

use std::fmt::Write;

use crate::allocation::Allocation;
use crate::classification::IncidentClassification;
use crate::error::CoreError;
use crate::norm::QuantitativeRiskNorm;
use crate::object::InvolvementClass;
use crate::safety_case::SafetyCase;
use crate::safety_goal::derive_with_certificate;
use crate::verification::VerificationReport;

/// Renders the complete safety documentation as markdown.
///
/// When a [`VerificationReport`] is supplied, the verdict tables, the
/// demonstration plan and the assembled argument tree are included;
/// without one the document covers the design-time artefacts only.
///
/// # Errors
///
/// Returns [`CoreError`] when the artefacts are inconsistent (a leaf
/// without a budget, shares referencing classes outside the norm).
///
/// # Examples
///
/// ```
/// use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
/// use qrn_core::report::render_markdown;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classification = paper_classification()?;
/// let allocation = paper_allocation(&classification)?;
/// let doc = render_markdown("demo ADS", &paper_norm()?, &classification, &allocation, None)?;
/// assert!(doc.contains("# Safety documentation: demo ADS"));
/// assert!(doc.contains("SG-I2"));
/// # Ok(())
/// # }
/// ```
pub fn render_markdown(
    item: &str,
    norm: &QuantitativeRiskNorm,
    classification: &IncidentClassification,
    allocation: &Allocation,
    verification: Option<&VerificationReport>,
) -> Result<String, CoreError> {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "# Safety documentation: {item}\n").expect("string write");
    writeln!(
        w,
        "Produced by the QRN toolkit (quantitative risk norm tailoring of HARA).\n"
    )
    .expect("string write");

    // --- Norm ----------------------------------------------------------
    writeln!(w, "## 1. Quantitative risk norm\n").expect("string write");
    writeln!(
        w,
        "| class | domain | severity rank | acceptable frequency | description |"
    )
    .expect("string write");
    writeln!(w, "|---|---|---|---|---|").expect("string write");
    for class in norm.classes() {
        writeln!(
            w,
            "| {} | {} | {} | {} | {} |",
            class.id(),
            class.domain(),
            class.severity_rank(),
            norm.budget(class.id())?,
            class.description(),
        )
        .expect("string write");
    }

    // --- Classification --------------------------------------------------
    let mece = classification.verify_mece();
    writeln!(w, "\n## 2. Incident classification (MECE)\n").expect("string write");
    writeln!(
        w,
        "{} incident types over {} involvement groups. MECE probe: {} probes, \
         {} multi-matches, {} mismatches → **{}**.\n",
        classification.leaves().len(),
        InvolvementClass::ALL.len(),
        mece.probes,
        mece.multi_matched,
        mece.mismatches,
        if mece.is_mece() { "MECE" } else { "BROKEN" },
    )
    .expect("string write");
    writeln!(w, "| id | involvement | tolerance margin |").expect("string write");
    writeln!(w, "|---|---|---|").expect("string write");
    for leaf in classification.leaves() {
        writeln!(
            w,
            "| {} | {} | {} |",
            leaf.id(),
            leaf.involvement(),
            leaf.margin(),
        )
        .expect("string write");
    }

    // --- Allocation and Eq. (1) ------------------------------------------
    writeln!(w, "\n## 3. Allocation and fulfilment (Eq. 1)\n").expect("string write");
    let eq1 = allocation.check(norm)?;
    writeln!(
        w,
        "| consequence class | budget | allocated load | utilisation | status |"
    )
    .expect("string write");
    writeln!(w, "|---|---|---|---|---|").expect("string write");
    for row in eq1.rows() {
        writeln!(
            w,
            "| {} | {} | {} | {} | {} |",
            row.class,
            row.budget,
            row.load,
            row.utilisation
                .map(|u| format!("{:.1}%", u * 100.0))
                .unwrap_or_else(|| "—".into()),
            if row.is_fulfilled() {
                "OK"
            } else {
                "**VIOLATED**"
            },
        )
        .expect("string write");
    }
    writeln!(
        w,
        "\nEq. (1) overall: **{}**.",
        if eq1.is_fulfilled() {
            "fulfilled"
        } else {
            "VIOLATED"
        }
    )
    .expect("string write");

    // --- Safety goals -----------------------------------------------------
    let (goals, certificate) = derive_with_certificate(classification, allocation)?;
    writeln!(w, "\n## 4. Safety goals\n").expect("string write");
    for goal in &goals {
        writeln!(w, "- {goal}").expect("string write");
    }
    writeln!(w, "\nCompleteness: {certificate}").expect("string write");

    // --- Verification ------------------------------------------------------
    if let Some(report) = verification {
        writeln!(
            w,
            "\n## 5. Verification at {:.0}% confidence\n",
            report.confidence * 100.0
        )
        .expect("string write");
        writeln!(
            w,
            "| goal | events | exposure | upper bound | budget | verdict |"
        )
        .expect("string write");
        writeln!(w, "|---|---|---|---|---|---|").expect("string write");
        for g in &report.goals {
            writeln!(
                w,
                "| SG-{} | {} | {} | {} | {} | {} |",
                g.incident,
                g.observed.count,
                g.observed.exposure,
                g.upper_bound,
                g.budget,
                g.verdict,
            )
            .expect("string write");
        }
        writeln!(w, "\n| consequence class | load ≤ | budget | verdict |").expect("string write");
        writeln!(w, "|---|---|---|---|").expect("string write");
        for c in &report.classes {
            writeln!(
                w,
                "| {} | {} | {} | {} |",
                c.class, c.load_upper_bound, c.budget, c.verdict,
            )
            .expect("string write");
        }
        let plan = report.demonstration_plan();
        if !plan.is_empty() {
            writeln!(
                w,
                "\n### Demonstration plan (additional failure-free exposure)\n"
            )
            .expect("string write");
            for (incident, hours) in plan {
                writeln!(w, "- SG-{incident}: {hours} more").expect("string write");
            }
        }
        // --- Argument -----------------------------------------------------
        let case = SafetyCase::assemble(item, norm, classification, allocation, report)?;
        writeln!(w, "\n## 6. Assembled argument\n").expect("string write");
        writeln!(w, "```").expect("string write");
        write!(w, "{case}").expect("string write");
        writeln!(w, "```").expect("string write");
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_allocation, paper_classification, paper_norm};
    use crate::verification::{verify, MeasuredIncidents};
    use qrn_units::Hours;

    fn artefacts() -> (QuantitativeRiskNorm, IncidentClassification, Allocation) {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        (norm, classification, allocation)
    }

    #[test]
    fn design_time_document_has_all_sections() {
        let (norm, classification, allocation) = artefacts();
        let doc = render_markdown("item", &norm, &classification, &allocation, None).unwrap();
        for needle in [
            "# Safety documentation: item",
            "## 1. Quantitative risk norm",
            "## 2. Incident classification",
            "## 3. Allocation and fulfilment",
            "## 4. Safety goals",
            "SG-I2",
            "Eq. (1) overall: **fulfilled**",
            "completeness: HOLDS",
        ] {
            assert!(doc.contains(needle), "missing {needle:?}");
        }
        assert!(
            !doc.contains("## 5."),
            "no verification section without a report"
        );
    }

    #[test]
    fn verified_document_includes_verdicts_and_argument() {
        let (norm, classification, allocation) = artefacts();
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(1e12).unwrap());
        let report = verify(&norm, &allocation, &measured, 0.95).unwrap();
        let doc =
            render_markdown("item", &norm, &classification, &allocation, Some(&report)).unwrap();
        for needle in [
            "## 5. Verification at 95% confidence",
            "## 6. Assembled argument",
            "[G0]",
            "demonstrated",
        ] {
            assert!(doc.contains(needle), "missing {needle:?}");
        }
        assert!(
            !doc.contains("Demonstration plan"),
            "everything demonstrated: no plan section"
        );
    }

    #[test]
    fn inconclusive_document_includes_the_plan() {
        let (norm, classification, allocation) = artefacts();
        let measured = MeasuredIncidents::new(Default::default(), Hours::new(10.0).unwrap());
        let report = verify(&norm, &allocation, &measured, 0.95).unwrap();
        let doc =
            render_markdown("item", &norm, &classification, &allocation, Some(&report)).unwrap();
        assert!(doc.contains("Demonstration plan"));
        assert!(doc.contains("more"));
    }

    #[test]
    fn tables_are_well_formed() {
        let (norm, classification, allocation) = artefacts();
        let doc = render_markdown("item", &norm, &classification, &allocation, None).unwrap();
        // every table row in section 1 has exactly 5 columns
        let norm_rows: Vec<&str> = doc
            .lines()
            .skip_while(|l| !l.starts_with("| class"))
            .take_while(|l| l.starts_with('|'))
            .collect();
        assert!(norm_rows.len() >= 2 + norm.len());
        for row in norm_rows {
            assert_eq!(row.matches('|').count(), 6, "bad row: {row}");
        }
    }
}
