//! Consequence classes: the severity axis of the risk norm.
//!
//! The paper's Fig. 2 places *quality*-related consequences (perceived
//! safety, emergency manoeuvres forced on others, material damage) and
//! *safety*-related consequences (injuries of increasing severity) on one
//! common axis, because "light rear-end collisions resulting in bodywork
//! damage … are also about avoiding unwanted traffic events". A
//! [`ConsequenceClass`] is one discrete level `v` of that axis.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether a consequence class concerns quality or safety.
///
/// Quality classes sit at the less severe end of the axis (economic harm,
/// harm to brand); safety classes concern injury to humans and are the
/// traditional scope of functional safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConsequenceDomain {
    /// Economic harm / harm to brand: perceived safety, forced emergency
    /// manoeuvres, material damage.
    Quality,
    /// Harm of injury to humans.
    Safety,
}

impl fmt::Display for ConsequenceDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsequenceDomain::Quality => f.write_str("quality"),
            ConsequenceDomain::Safety => f.write_str("safety"),
        }
    }
}

/// Identifier of a consequence class, e.g. `vQ1` or `vS3`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConsequenceClassId(String);

impl ConsequenceClassId {
    /// Creates an identifier.
    pub fn new(id: impl Into<String>) -> Self {
        ConsequenceClassId(id.into())
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ConsequenceClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ConsequenceClassId {
    fn from(s: &str) -> Self {
        ConsequenceClassId::new(s)
    }
}

impl From<String> for ConsequenceClassId {
    fn from(s: String) -> Self {
        ConsequenceClassId(s)
    }
}

/// One discrete consequence class `v` of the risk norm.
///
/// # Examples
///
/// ```
/// use qrn_core::consequence::{ConsequenceClass, ConsequenceDomain};
///
/// let v_s3 = ConsequenceClass::new(
///     "vS3",
///     ConsequenceDomain::Safety,
///     6,
///     "life-threatening or fatal injuries",
/// );
/// assert_eq!(v_s3.severity_rank(), 6);
/// assert_eq!(v_s3.domain(), ConsequenceDomain::Safety);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsequenceClass {
    id: ConsequenceClassId,
    domain: ConsequenceDomain,
    severity_rank: u8,
    description: String,
}

impl ConsequenceClass {
    /// Creates a consequence class.
    ///
    /// `severity_rank` totally orders classes across both domains: a higher
    /// rank is a worse consequence. Budget monotonicity (worse consequences
    /// get smaller budgets) is validated when the class joins a
    /// [`crate::norm::QuantitativeRiskNorm`].
    pub fn new(
        id: impl Into<ConsequenceClassId>,
        domain: ConsequenceDomain,
        severity_rank: u8,
        description: impl Into<String>,
    ) -> Self {
        ConsequenceClass {
            id: id.into(),
            domain,
            severity_rank,
            description: description.into(),
        }
    }

    /// The class identifier.
    pub fn id(&self) -> &ConsequenceClassId {
        &self.id
    }

    /// Whether this is a quality or safety class.
    pub fn domain(&self) -> ConsequenceDomain {
        self.domain
    }

    /// Position on the common severity axis (higher is worse).
    pub fn severity_rank(&self) -> u8 {
        self.severity_rank
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for ConsequenceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}: {})", self.id, self.domain, self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = ConsequenceClass::new("vQ2", ConsequenceDomain::Quality, 1, "forced manoeuvre");
        assert_eq!(v.id().as_str(), "vQ2");
        assert_eq!(v.domain(), ConsequenceDomain::Quality);
        assert_eq!(v.severity_rank(), 1);
        assert_eq!(v.description(), "forced manoeuvre");
    }

    #[test]
    fn domains_order_quality_before_safety() {
        assert!(ConsequenceDomain::Quality < ConsequenceDomain::Safety);
    }

    #[test]
    fn display_mentions_domain() {
        let v = ConsequenceClass::new("vS1", ConsequenceDomain::Safety, 3, "light injuries");
        assert!(v.to_string().contains("safety"));
        assert!(v.to_string().contains("vS1"));
    }

    #[test]
    fn id_from_str() {
        let id: ConsequenceClassId = "vS3".into();
        assert_eq!(id, ConsequenceClassId::new("vS3"));
    }

    #[test]
    fn serde_round_trip() {
        let v = ConsequenceClass::new("vS1", ConsequenceDomain::Safety, 3, "light injuries");
        let back: ConsequenceClass =
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
