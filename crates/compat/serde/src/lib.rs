//! Offline stand-in for `serde`.
//!
//! The build container cannot fetch crates.io, so the workspace vendors a
//! minimal serde: instead of the visitor-based zero-copy architecture, a
//! [`Value`] tree is the universal data model and [`Serialize`] /
//! [`Deserialize`] convert to and from it. `serde_json` (also vendored)
//! renders the tree as JSON text. The derive macros live in
//! `serde_derive` and cover the shapes this workspace uses: named and
//! tuple structs, enums with unit / newtype / tuple / struct variants, and
//! the `#[serde(try_from = "…", into = "…")]` container attribute.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-like data model every serialisable type converts through.
pub mod json {
    use super::*;

    /// Key–value pairs of an object, in insertion order is not preserved:
    /// keys sort lexicographically (deterministic artefacts).
    pub type Map = BTreeMap<String, Value>;

    /// A JSON number: integers keep their exact representation.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// A non-negative integer.
        PosInt(u64),
        /// A negative integer.
        NegInt(i64),
        /// A binary64 float.
        Float(f64),
    }

    impl Number {
        /// The value as an `f64` (lossy for huge integers).
        pub fn as_f64(&self) -> f64 {
            match *self {
                Number::PosInt(n) => n as f64,
                Number::NegInt(n) => n as f64,
                Number::Float(x) => x,
            }
        }

        /// The value as a `u64`, if exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Number::PosInt(n) => Some(n),
                Number::NegInt(n) => u64::try_from(n).ok(),
                Number::Float(x) if x.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&x) => {
                    Some(x as u64)
                }
                Number::Float(_) => None,
            }
        }

        /// The value as an `i64`, if exactly representable.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Number::PosInt(n) => i64::try_from(n).ok(),
                Number::NegInt(n) => Some(n),
                Number::Float(x)
                    if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) =>
                {
                    Some(x as i64)
                }
                Number::Float(_) => None,
            }
        }
    }

    /// A JSON value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` or `false`.
        Bool(bool),
        /// A number.
        Number(Number),
        /// A string.
        String(String),
        /// An ordered array.
        Array(Vec<Value>),
        /// A string-keyed object.
        Object(Map),
    }

    impl Value {
        /// The object map, if this is an object.
        pub fn as_object(&self) -> Option<&Map> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// A short name of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "boolean",
                Value::Number(_) => "number",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }

        /// Renders compact JSON text.
        pub fn to_json(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Renders pretty-printed JSON text (two-space indent).
        pub fn to_json_pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(2), 0);
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(true) => out.push_str("true"),
                Value::Bool(false) => out.push_str("false"),
                Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
                Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
                Value::Number(Number::Float(x)) => {
                    if x.is_finite() {
                        // Debug formatting is shortest-roundtrip *and*
                        // keeps a trailing `.0` on integral values
                        // (`2.0`, not `2`), matching upstream
                        // serde_json's ryu output so float-typed fields
                        // stay floats for strict downstream parsers.
                        out.push_str(&format!("{x:?}"));
                    } else {
                        // Upstream serde_json renders non-finite floats as
                        // null rather than emitting invalid JSON.
                        out.push_str("null");
                    }
                }
                Value::String(s) => write_escaped(out, s),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        item.write(out, indent, depth + 1);
                    }
                    if !items.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push(']');
                }
                Value::Object(map) => {
                    out.push('{');
                    for (i, (key, value)) in map.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent, depth + 1);
                        write_escaped(out, key);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        value.write(out, indent, depth + 1);
                    }
                    if !map.is_empty() {
                        newline_indent(out, indent, depth);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0c}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.to_json())
        }
    }
}

pub use json::{Map, Number, Value};

/// Serialisation/deserialisation failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Creates a "expected X, found Y while deserialising T" error.
    pub fn expected(what: &str, found: &Value, target: &str) -> Self {
        Error(format!(
            "expected {what} for {target}, found {}",
            found.kind()
        ))
    }

    /// Wraps the error with the field or index it occurred at.
    pub fn at(self, location: impl fmt::Display) -> Self {
        Error(format!("{location}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input. `Option`
    /// overrides this to return `None`; everything else errors.
    #[doc(hidden)]
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{name}`")))
    }
}

/// Deserialisation traits, under the module path upstream serde uses.
pub mod de {
    pub use super::{Deserialize, Error};

    /// Marker for types deserialisable without borrowing from the input.
    /// Our simplified data model never borrows, so every [`Deserialize`]
    /// qualifies.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialisation traits, under the module path upstream serde uses.
pub mod ser {
    pub use super::{Error, Serialize};
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("boolean", other, "bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    Error::expected("unsigned integer", value, stringify!($t))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    Error::expected("integer", value, stringify!($t))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::expected("number", other, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other, "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_value(v).map_err(|e| e.at(format!("[{i}]"))))
                .collect(),
            other => Err(Error::expected("array", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error(format!("expected {N} elements, found {}", v.len())))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(|v| v.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            let key = match k.to_value() {
                Value::String(s) => s,
                other => panic!("map keys must serialise to strings, got {}", other.kind()),
            };
            map.insert(key, v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::String(k.clone()))
                        .map_err(|e| e.at(format!("key {k:?}")))?;
                    let val = V::from_value(v).map_err(|e| e.at(k))?;
                    Ok((key, val))
                })
                .collect(),
            other => Err(Error::expected("object", other, "map")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx]).map_err(|e| e.at($idx))?,)+
                    )),
                    other => Err(Error::expected(
                        concat!("array of length ", $len), other, "tuple",
                    )),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Helpers used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::*;

    /// Deserialises one struct field, delegating absence handling to the
    /// field's type (`Option` fields default to `None`).
    pub fn field<T: Deserialize>(map: &Map, name: &str) -> Result<T, Error> {
        match map.get(name) {
            Some(v) => T::from_value(v).map_err(|e| e.at(format!("field `{name}`"))),
            None => T::missing_field(name),
        }
    }

    /// Clone-and-convert used by `#[serde(into = "…")]` derives; a free
    /// function so lints fire here (once, allowed) rather than in every
    /// expansion site.
    pub fn convert<T: Clone + Into<U>, U>(value: &T) -> U {
        value.clone().into()
    }

    /// Deserialises one element of a tuple struct or tuple variant.
    pub fn element<T: Deserialize>(items: &[Value], idx: usize) -> Result<T, Error> {
        match items.get(idx) {
            Some(v) => T::from_value(v).map_err(|e| e.at(format!("element {idx}"))),
            None => Err(Error::custom(format!("missing element {idx}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&17u64.to_value()), Ok(17));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_distinguishes_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&5u64.to_value()), Ok(Some(5)));
        assert_eq!(Option::<u64>::missing_field("x"), Ok(None));
        assert!(u64::missing_field("x").is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&m.to_value()), Ok(m));
        let t = (1u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn wrong_kind_is_a_clear_error() {
        let err = u64::from_value(&Value::String("no".into())).unwrap_err();
        assert!(err.to_string().contains("unsigned integer"));
    }
}
