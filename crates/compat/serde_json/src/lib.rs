//! Offline in-workspace stand-in for `serde_json`.
//!
//! Provides the subset of the upstream API the QRN workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] / [`to_value`] /
//! [`from_value`], the [`Value`] tree (re-exported from the vendored
//! `serde`), and the [`json!`] macro. JSON text produced here parses with
//! upstream serde_json and vice versa; numbers keep their integer/float
//! distinction and floats round-trip through shortest formatting.

pub use serde::json::{Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// Error raised by JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error(err.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Renders a value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Renders a value as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl fmt::Display) -> Error {
        Error(format!("{msg} at byte offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<()> {
        let end = self.pos + literal.len();
        if self.bytes.get(self.pos..end) == Some(literal.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(self.error(format!("expected literal '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: must be followed by \uXXXX
                                // with the low half.
                                self.expect_literal("\\u")?;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the digits; the
                            // shared increment below is for single-char
                            // escapes, so back up one here.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let unit = u32::from_str_radix(digits, 16)
            .map_err(|_| self.error("invalid unicode escape digits"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(n)));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Number(Number::Float(x))),
            Err(_) => Err(self.error(format!("invalid number '{text}'"))),
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax with interpolated expressions.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($items:tt)* ]) => {
        $crate::json_array!([] $($items)*)
    };
    ({ $($entries:tt)* }) => {
        $crate::json_object!([] $($entries)*)
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

/// Internal TT-muncher for `json!` arrays: accumulates each element's
/// tokens in the bracketed buffer until a top-level comma, then recurses
/// into `json!` for the element.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Finished: no buffered tokens, no input.
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($elems:expr,)* ]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    // Element boundary: flush the buffer through json!.
    ([ $($elems:expr,)* ] @buf($($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_array!([ $($elems,)* $crate::json!($($buf)+), ] $($rest)*)
    };
    // End of input with a buffered final element.
    ([ $($elems:expr,)* ] @buf($($buf:tt)+)) => {
        $crate::json_array!([ $($elems,)* $crate::json!($($buf)+), ])
    };
    // Keep buffering.
    ([ $($elems:expr,)* ] @buf($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array!([ $($elems,)* ] @buf($($buf)* $next) $($rest)*)
    };
    // First token of a new element: open a buffer.
    ([ $($elems:expr,)* ] $next:tt $($rest:tt)*) => {
        $crate::json_array!([ $($elems,)* ] @buf($next) $($rest)*)
    };
}

/// Internal TT-muncher for `json!` objects. Keys must be string literals,
/// which covers every call site in this workspace.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ([ $(($key:literal, $val:expr),)* ]) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert(::std::string::String::from($key), $val);)*
        $crate::Value::Object(map)
    }};
    // Entry boundary: flush the buffered value through json!.
    ([ $($entries:tt)* ] @buf($key:literal; $($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_object!([ $($entries)* ($key, $crate::json!($($buf)+)), ] $($rest)*)
    };
    // End of input with a buffered final entry.
    ([ $($entries:tt)* ] @buf($key:literal; $($buf:tt)+)) => {
        $crate::json_object!([ $($entries)* ($key, $crate::json!($($buf)+)), ])
    };
    // Keep buffering the value tokens.
    ([ $($entries:tt)* ] @buf($key:literal; $($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object!([ $($entries)* ] @buf($key; $($buf)* $next) $($rest)*)
    };
    // Start of a new `"key": value` entry.
    ([ $($entries:tt)* ] $key:literal : $($rest:tt)*) => {
        $crate::json_object!([ $($entries)* ] @buf($key;) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(
            parse("2.5e-3").unwrap(),
            Value::Number(Number::Float(0.0025))
        );
        assert_eq!(
            parse("\"a\\n\\u00e9b\"").unwrap(),
            Value::String(String::from("a\néb"))
        );
    }

    #[test]
    fn round_trips_typed_values() {
        let hours: f64 = from_str(&to_string(&1234.5f64).unwrap()).unwrap();
        assert_eq!(hours, 1234.5);
        let list: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(list, vec![1, 2, 3]);
    }

    #[test]
    fn float_text_is_shortest_roundtrip() {
        let x = 0.1f64 + 0.2f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        // Upstream serde_json (ryu) prints `2.0`, never `2`, for a float
        // value: the integer/float distinction must survive the text.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&4000.0f64).unwrap(), "4000.0");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
        let back = parse("2.0").unwrap();
        assert_eq!(back, Value::Number(Number::Float(2.0)));
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let value = json!({
            "name": "qrn",
            "hours": 12.5,
            "zones": ["urban", "highway"],
            "nested": {"a": 1, "b": null},
        });
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\n  \"hours\": 12.5"));
        let back = parse(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn json_macro_handles_expressions() {
        let n = 3u64;
        let v = json!({ "total": n + 1, "items": [n, 2 * n] });
        assert_eq!(to_string(&v).unwrap(), "{\"items\":[3,6],\"total\":4}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "\u{1f600}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
