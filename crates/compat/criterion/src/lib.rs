//! Offline in-workspace stand-in for `criterion`.
//!
//! Keeps the call-site API of the upstream crate (`Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! but measures with a plain wall-clock loop and prints one line per
//! benchmark: median time per iteration plus throughput when configured.
//! Setting `QRN_BENCH_QUICK=1` shrinks warm-up and sample counts so a full
//! `cargo bench` run doubles as a fast smoke test in CI.

use std::fmt;
use std::time::{Duration, Instant};

/// Work-unit declaration used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the closure under measurement; handed to benchmark functions.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    sample_budget: Duration,
}

impl Bencher<'_> {
    /// Calibrates an iteration count against the per-sample budget, then
    /// records `sample_count` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let calibration = Instant::now();
        std::hint::black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_count: usize,
    sample_budget: Duration,
}

impl Settings {
    fn from_env() -> Self {
        let quick = std::env::var("QRN_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        if quick {
            Settings {
                sample_count: 3,
                sample_budget: Duration::from_millis(2),
            }
        } else {
            Settings {
                sample_count: 15,
                sample_budget: Duration::from_millis(25),
            }
        }
    }
}

/// Entry point mirroring upstream's `Criterion` configuration handle.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.into().id, self.settings, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, count: usize) -> &mut Self {
        // Quick mode keeps its reduced count regardless of the requested
        // sample size, so CI smoke runs stay fast.
        self.settings.sample_count = self.settings.sample_count.min(count.max(1));
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_benchmark(id, self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(id: String, settings: Settings, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_count: settings.sample_count,
        sample_budget: settings.sample_budget,
    };
    f(&mut bencher);

    if samples.is_empty() {
        println!("{id:<50} (no samples recorded)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let per_iter_s = median.as_secs_f64();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("{} elem/s", si(n as f64 / per_iter_s)),
        Throughput::Bytes(n) => format!("{}B/s", si(n as f64 / per_iter_s)),
    });
    match rate {
        Some(rate) => println!("{id:<50} time: {:>12}  thrpt: {rate}", pretty(median)),
        None => println!("{id:<50} time: {:>12}", pretty(median)),
    }
}

fn pretty(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.2} ")
    }
}

/// Declares a function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary. Command-line
/// arguments from `cargo bench` are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            settings: Settings {
                sample_count: 2,
                sample_budget: Duration::from_micros(50),
            },
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 3, "calibration plus two samples");
    }

    #[test]
    fn groups_apply_throughput_and_finish() {
        let mut c = Criterion {
            settings: Settings {
                sample_count: 2,
                sample_budget: Duration::from_micros(50),
            },
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
