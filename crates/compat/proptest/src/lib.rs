//! Offline in-workspace stand-in for `proptest`.
//!
//! Implements the subset of the upstream API this workspace uses:
//! composable [`Strategy`] values (ranges, tuples, `prop_map`, collections,
//! `sample::select`, `option::of`, `prop_oneof!`) and the [`proptest!`]
//! test-harness macro. Unlike upstream there is no shrinking and no
//! persistence of failing seeds; each test draws its cases from a
//! deterministic RNG seeded from the test's name, so failures reproduce
//! exactly on re-run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Random, RngExt, SeedableRng};

pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Per-block test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
///
/// Upstream strategies also describe how to *shrink* counterexamples; this
/// stand-in only generates, which keeps every combinator a one-liner.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let index = rng.random_range(0..self.options.len());
        self.options[index].sample(rng)
    }
}

/// Strategy producing uniformly random values of a primitive type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Random> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Uniformly random value of a primitive type (`any::<bool>()` etc.).
pub fn any<T: Random>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        // random::<f64>() is in [0, 1), so the end bound is approached but
        // hit only through rounding — close enough without shrinking.
        self.start() + rng.random::<f64>() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than the target (e.g.
            // selecting from a short list), so cap the attempts.
            for _ in 0..target.saturating_mul(20).max(20) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

pub mod option {
    use super::*;

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability one half, mirroring upstream's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::*;

    #[derive(Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

/// Deterministic per-test RNG: the seed is a hash of the test's name, so a
/// failing case reproduces on every run without seed persistence.
pub fn test_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_name))
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (@run($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Upstream's early-return assertion; here a plain `assert!`, which is
/// equivalent inside a `#[test]`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => {
        assert!($($tokens)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => {
        assert_eq!($($tokens)*)
    };
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy) as $crate::BoxedStrategy<_>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges_respect_bounds");
        for _ in 0..200 {
            let x = Strategy::sample(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&x));
            let n = Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_rng("collections_hit_requested_sizes");
        let fixed = crate::collection::vec(0u64..10, 8);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 8);
        let ranged = crate::collection::vec(0u64..10, 1..4);
        for _ in 0..50 {
            let v = Strategy::sample(&ranged, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let set = crate::collection::btree_set(0u64..3, 1..4);
        for _ in 0..50 {
            let s = Strategy::sample(&set, &mut rng);
            assert!(!s.is_empty() && s.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, strategies and config together.
        #[test]
        fn macro_samples_all_arguments(
            (a, b) in (0u64..10, 10u64..20),
            flag in any::<bool>(),
            pick in crate::sample::select(vec![1u8, 2, 3]),
            maybe in crate::option::of(0.0f64..1.0),
            mixed in prop_oneof![Just(-1.0f64), 0.0f64..1.0],
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            let _: bool = flag;
            prop_assert!((1..=3).contains(&pick));
            if let Some(p) = maybe {
                prop_assert!((0.0..1.0).contains(&p));
            }
            prop_assert!(mixed == -1.0 || (0.0..1.0).contains(&mixed));
        }
    }

    proptest! {
        /// Default config path (no inner attribute) also expands.
        #[test]
        fn default_config_path(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
