//! Offline stand-in for the `rand` crate, bitstream-compatible with
//! upstream `StdRng`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of the `rand` API it actually uses:
//! [`Rng`], [`RngExt`], [`SeedableRng`] and [`rngs::StdRng`]. Unlike a
//! generic stand-in, this crate reproduces upstream's generator exactly,
//! so seeded results match what the real `rand` crate produces:
//!
//! * [`rngs::StdRng`] is ChaCha with 12 rounds — the algorithm upstream
//!   `rand` uses for `StdRng` — consumed through the same 64-word
//!   (four ChaCha blocks) buffer as `rand_chacha`'s `BlockRng` wrapper,
//!   including its word-straddling rule when a 64-bit read crosses the
//!   buffer boundary;
//! * [`SeedableRng::seed_from_u64`] expands the seed with the PCG32
//!   (XSH-RR 64/32) stream that `rand_core`'s default implementation
//!   uses;
//! * scalar sampling follows upstream's conventions: integers at or below
//!   32 bits, `bool` and `f32` draw one 32-bit word, wider integers and
//!   `f64` draw one 64-bit word, floats use the 53-bit (24-bit for `f32`)
//!   multiply convention;
//! * integer ranges are sampled with Canon's widening-multiply method —
//!   upstream's single-use `sample_single` algorithm, not a modulo —
//!   with spans of `usize` width drawing a 32-bit word when the span fits
//!   in 32 bits (upstream's platform-independent `UniformUsize`).
//!
//! The ChaCha core is validated against the RFC 8439 quarter-round and
//! ChaCha20 keystream vectors (the round count is a parameter; 12 vs 20
//! changes only the loop trip count), and end-to-end by regenerating
//! `results/` artefacts that the seed repository produced with upstream
//! `rand` (see `CHANGELOG.md`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32- and 64-bit words.
pub trait Rng {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`Rng`]'s output.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

// Upstream draws integers at or below 32 bits from one 32-bit word…
macro_rules! impl_random_via_u32 {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

impl_random_via_u32!(u8, u16, u32, i8, i16, i32);

// …and 64-bit (and pointer-width, on 64-bit targets) integers from one
// 64-bit word.
macro_rules! impl_random_via_u64 {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

#[cfg(target_pointer_width = "64")]
impl_random_via_u64!(u64, i64, usize, isize);
#[cfg(not(target_pointer_width = "64"))]
impl_random_via_u64!(u64, i64);
#[cfg(not(target_pointer_width = "64"))]
impl_random_via_u32!(usize, isize);

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Upstream compares against the most significant bit of one
        // 32-bit word (low bits of weak generators can have patterns).
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-order bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high-order bits of one 32-bit word scaled into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Canon's method on a widening multiply, as upstream's
/// `UniformInt::sample_single` implements it: scale one draw into the
/// span via the high half of the 2w-bit product; when the low half lands
/// in the biased window (probability `span / 2^w`), a second draw decides
/// whether to round up. Residual bias is below `2^-w` — no rejection
/// loop, at most two draws.
macro_rules! canon {
    ($fn_name:ident, $w:ty, $wide:ty, $bits:expr, $draw:ident) => {
        fn $fn_name<R: Rng + ?Sized>(rng: &mut R, span: $w) -> $w {
            debug_assert!(span > 0);
            let m = (rng.$draw() as $w as $wide) * (span as $wide);
            let mut result = (m >> $bits) as $w;
            let lo_order = m as $w;
            if lo_order > span.wrapping_neg() {
                let m2 = (rng.$draw() as $w as $wide) * (span as $wide);
                let new_hi = (m2 >> $bits) as $w;
                result += lo_order.checked_add(new_hi).is_none() as $w;
            }
            result
        }
    };
}

canon!(canon_u32, u32, u64, 32, next_u32);
canon!(canon_u64, u64, u128, 64, next_u64);

macro_rules! impl_sample_range_int {
    ($(($t:ty, $u:ty, $large:ty, $canon:ident, $full:ident)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span may exceed the signed type's maximum, so
                // compute it in the unsigned counterpart via wrapping
                // arithmetic.
                let span = self.end.wrapping_sub(self.start) as $u as $large;
                self.start.wrapping_add($canon(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end.wrapping_sub(start) as $u as $large).wrapping_add(1);
                if span == 0 {
                    // Full domain: every draw is acceptable.
                    return rng.$full() as $t;
                }
                start.wrapping_add($canon(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    (u8, u8, u32, canon_u32, next_u32),
    (u16, u16, u32, canon_u32, next_u32),
    (u32, u32, u32, canon_u32, next_u32),
    (i8, u8, u32, canon_u32, next_u32),
    (i16, u16, u32, canon_u32, next_u32),
    (i32, u32, u32, canon_u32, next_u32),
    (u64, u64, u64, canon_u64, next_u64),
    (i64, u64, u64, canon_u64, next_u64)
);

/// Draws from a `usize`-wide span the way upstream's platform-independent
/// `UniformUsize` does: spans that fit in 32 bits consume one 32-bit
/// word, wider spans one 64-bit word, so the stream position agrees
/// between 32- and 64-bit targets. Verified end-to-end: regenerating
/// `results/fig4_classification.json` (300k such draws interleaved with
/// `bool` and `f64` draws, produced by upstream `rand`) is byte-identical.
fn sample_usize_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span <= u32::MAX as u64 {
        canon_u32(rng, span as u32) as u64
    } else {
        canon_u64(rng, span)
    }
}

macro_rules! impl_sample_range_usize {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(sample_usize_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain: every draw is acceptable.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_usize_span(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_usize!((usize, usize), (isize, usize));

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Upstream's sample_single: scale a [0, 1) draw, multiply first.
        f64::random_from(rng) * (self.end - self.start) + self.start
    }
}

/// Convenience sampling methods, mirroring `rand`'s extension trait.
pub trait RngExt: Rng {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a value uniformly from the given range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed.
    ///
    /// The seed is expanded into `Seed` bytes with a PCG32 (XSH-RR 64/32)
    /// stream — the exact default implementation in `rand_core`, so
    /// `seed_from_u64(n)` agrees with upstream for every `n`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// ChaCha quarter round (RFC 8439 §2.1) on four state words.
    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    /// One ChaCha block: 8 key words, a 64-bit block counter and a zero
    /// 64-bit nonce (the `rand_chacha` layout), `rounds` rounds.
    fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
        let state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let mut x = state;
        for _ in 0..rounds / 2 {
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (word, init) in x.iter_mut().zip(&state) {
            *word = word.wrapping_add(*init);
        }
        x
    }

    /// Buffered keystream words per refill: four ChaCha blocks, matching
    /// `rand_chacha`'s wide buffer. The buffer length is observable
    /// through the boundary-straddling rule in [`Rng::next_u64`], so it
    /// must match upstream for bitstream compatibility.
    const BUF_WORDS: usize = 64;

    /// The workspace's standard generator: ChaCha with 12 rounds, the
    /// algorithm upstream `rand` uses for its `StdRng`.
    ///
    /// Word-for-word compatible with upstream for the same seed: the
    /// keystream, the `seed_from_u64` expansion and the `BlockRng`
    /// consumption rules all match (see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        key: [u32; 8],
        /// Block counter of the *next* buffer refill.
        counter: u64,
        buf: [u32; BUF_WORDS],
        /// Next unconsumed word in `buf`; `BUF_WORDS` means exhausted.
        index: usize,
    }

    impl StdRng {
        const ROUNDS: u32 = 12;

        fn refill(&mut self) {
            for block in 0..(BUF_WORDS / 16) as u64 {
                let words =
                    chacha_block(&self.key, self.counter.wrapping_add(block), StdRng::ROUNDS);
                self.buf[block as usize * 16..][..16].copy_from_slice(&words);
            }
            self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
            self.index = 0;
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let word = self.buf[self.index];
            self.index += 1;
            word
        }

        // `rand_core::BlockRng::next_u64`: consume two consecutive words
        // (low then high); when only one word remains in the buffer it
        // becomes the low half and the high half is the first word of the
        // next buffer.
        fn next_u64(&mut self) -> u64 {
            if self.index < BUF_WORDS - 1 {
                let lo = self.buf[self.index] as u64;
                let hi = self.buf[self.index + 1] as u64;
                self.index += 2;
                (hi << 32) | lo
            } else if self.index >= BUF_WORDS {
                self.refill();
                let lo = self.buf[0] as u64;
                let hi = self.buf[1] as u64;
                self.index = 2;
                (hi << 32) | lo
            } else {
                let lo = self.buf[BUF_WORDS - 1] as u64;
                self.refill();
                let hi = self.buf[0] as u64;
                self.index = 1;
                (hi << 32) | lo
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        fn seed_from_u64(state: u64) -> Self {
            // rand_core's default: PCG32 (XSH-RR 64/32), state advanced
            // before each output.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut state = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    #[cfg(test)]
    pub(crate) fn chacha_block_for_tests(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
        chacha_block(key, counter, rounds)
    }

    #[cfg(test)]
    pub(crate) fn quarter_for_tests(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        quarter(x, a, b, c, d);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn quarter_round_matches_rfc8439() {
        // RFC 8439 §2.1.1 test vector.
        let mut x = [0u32; 16];
        x[0] = 0x1111_1111;
        x[1] = 0x0102_0304;
        x[2] = 0x9b8d_6f43;
        x[3] = 0x0123_4567;
        super::rngs::quarter_for_tests(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a_92f4);
        assert_eq!(x[1], 0xcb1c_f8ce);
        assert_eq!(x[2], 0x4581_472e);
        assert_eq!(x[3], 0x5881_c4bb);
    }

    #[test]
    fn chacha20_zero_key_keystream_matches_known_vector() {
        // First ChaCha20 block for an all-zero key, nonce and counter
        // (test vector 1 of draft-agl-tls-chacha20poly1305 /
        // draft-nir-cfrg-chacha20-poly1305, also used by rand_chacha's
        // own test suite). The round count is the only difference between
        // this core and the ChaCha12 used by `StdRng`.
        let words = super::rngs::chacha_block_for_tests(&[0u32; 8], 0, 20);
        let expected: [u32; 16] = [
            0xade0_b876,
            0x903d_f1a0,
            0xe56a_5d40,
            0x28bd_8653,
            0xb819_d2bd,
            0x1aed_8da0,
            0xccef_36a8,
            0xc70d_778b,
            0x7c59_41da,
            0x8d48_5751,
            0x3fe0_2477,
            0x374a_d8b8,
            0xf4b8_436a,
            0x1ca1_1815,
            0x69b6_87c3,
            0x8665_eeb2,
        ];
        assert_eq!(words, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn u32_and_u64_reads_interleave_like_block_rng() {
        // 63 u32 reads leave one word in the buffer; the next u64 must
        // straddle: last word of this buffer (low), first of the next
        // (high). A fresh generator consuming the same words pairwise
        // confirms the straddle picks exactly those words.
        let mut reader32 = StdRng::seed_from_u64(42);
        let words: Vec<u32> = (0..130).map(|_| reader32.next_u32()).collect();

        let mut mixed = StdRng::seed_from_u64(42);
        for word in &words[..63] {
            assert_eq!(mixed.next_u32(), *word);
        }
        let straddled = mixed.next_u64();
        assert_eq!(straddled as u32, words[63]);
        assert_eq!((straddled >> 32) as u32, words[64]);
        // After the straddle the next word is buf[1] of the new buffer.
        assert_eq!(mixed.next_u32(), words[65]);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let i = rng.random_range(0..7usize);
            assert!(i < 7);
        }
        for _ in 0..1000 {
            let i = rng.random_range(-3..=3i32);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn range_sampling_is_unbiased_across_the_span() {
        // A span that does not divide 2^64: a modulo construction would
        // visibly overweight the low residues; Canon's method must not
        // (its residual bias is below 2^-64, invisible to any counter).
        let mut rng = StdRng::seed_from_u64(6);
        let span = 6u64;
        let n = 120_000;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            counts[rng.random_range(0..span) as usize] += 1;
        }
        let expected = n as f64 / span as f64;
        for (value, &count) in counts.iter().enumerate() {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(deviation < 0.05, "value {value}: count {count}");
        }
    }

    #[test]
    fn full_domain_inclusive_range_uses_raw_draws() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut reference = StdRng::seed_from_u64(8);
        let x: u64 = rng.random_range(0..=u64::MAX);
        assert_eq!(x, reference.next_u64());
    }
}
