//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`Rng`], [`RngExt`], [`SeedableRng`] and [`rngs::StdRng`]. `StdRng` is
//! a xoshiro256++ generator — not the same bitstream as upstream's
//! ChaCha12, but every guarantee the QRN code relies on (determinism for a
//! seed, independent substreams, uniform output) holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`Rng`]'s output.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-order bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span may exceed the signed type's maximum, so compute
                // it in the unsigned counterpart via wrapping arithmetic.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random_from(rng)
    }
}

/// Convenience sampling methods, mirroring `rand`'s extension trait.
pub trait RngExt: Rng {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a value uniformly from the given range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a seed, 256-bit state, passes BigCrush; the
    /// upstream `rand::rngs::StdRng` contract (a good unspecified
    /// algorithm, reproducible only against itself) is preserved.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let i = rng.random_range(0..7usize);
            assert!(i < 7);
        }
    }

    #[test]
    fn from_seed_rejects_zero_state() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
