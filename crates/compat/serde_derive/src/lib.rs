//! Derive macros for the vendored `serde` stand-in.
//!
//! `syn` and `quote` are not available offline, so the item is parsed
//! directly from the `proc_macro` token stream and the impls are emitted
//! as formatted source text. Supported shapes — the ones this workspace
//! uses — are named structs, tuple structs, unit structs, and enums whose
//! variants are unit, newtype, tuple or struct-like. The only container
//! attribute honoured is `#[serde(try_from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    try_from: Option<String>,
    into: Option<String>,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    expand_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    expand_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;
    let mut into = None;

    // Leading attributes: doc comments and #[serde(...)].
    while matches!(&tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tts.get(i + 1) {
            parse_serde_attr(g.stream(), &mut try_from, &mut into);
        }
        i += 2;
    }
    // Visibility.
    if matches!(&tts.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tts.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let keyword = ident_at(&tts, i, "struct or enum keyword");
    i += 1;
    let name = ident_at(&tts, i, "type name");
    i += 1;
    if matches!(&tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    };

    Input {
        name,
        try_from,
        into,
        shape,
    }
}

fn ident_at(tts: &[TokenTree], i: usize, what: &str) -> String {
    match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Extracts `try_from = "T"` / `into = "T"` from a `[serde(...)]` group.
fn parse_serde_attr(attr: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let tts: Vec<TokenTree> = attr.into_iter().collect();
    let is_serde = matches!(tts.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = tts.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) = (args.get(j), args.get(j + 1), args.get(j + 2))
        {
            if eq.as_char() == '=' {
                let text = lit.to_string();
                let text = text.trim_matches('"').to_string();
                match key.to_string().as_str() {
                    "try_from" => *try_from = Some(text),
                    "into" => *into = Some(text),
                    other => panic!("unsupported serde attribute `{other}`"),
                }
                j += 3;
                // Optional comma.
                if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                continue;
            }
        }
        panic!("unsupported serde attribute syntax");
    }
}

/// Field names of a named-field body (struct or struct variant).
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    loop {
        i = skip_attrs_and_vis(&tts, i);
        if i >= tts.len() {
            break;
        }
        names.push(ident_at(&tts, i, "field name"));
        i += 1;
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        i = skip_type(&tts, i);
    }
    names
}

/// Number of fields in a tuple body (tuple struct or tuple variant).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    loop {
        i = skip_attrs_and_vis(&tts, i);
        if i >= tts.len() {
            break;
        }
        count += 1;
        i = skip_type(&tts, i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    loop {
        i = skip_attrs_and_vis(&tts, i);
        if i >= tts.len() {
            break;
        }
        let name = ident_at(&tts, i, "variant name");
        i += 1;
        let shape = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip to past the separating comma, if any.
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("expected `,` after variant `{name}`, found {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tts: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tts.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Skips a type, stopping after the separating top-level comma (or at the
/// end of the stream). Angle brackets are punctuation, not groups, so the
/// nesting depth is tracked by hand.
fn skip_type(tts: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(tt) = tts.get(i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

// ---- code generation ----------------------------------------------------

fn expand_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(into) = &input.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let raw: {into} = ::serde::__private::convert(self);\n\
                     ::serde::Serialize::to_value(&raw)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.shape {
        Shape::Named(fields) if fields.is_empty() => {
            "::serde::Value::Object(::serde::Map::new())".to_string()
        }
        Shape::Named(fields) => {
            let mut out = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "map.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(map)");
            out
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                                 let mut map = ::serde::Map::new();\n\
                                 map.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                                 ::serde::Value::Object(map)\n\
                             }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {fields} }} => {{\n\
                                 {inner}\
                                 let mut map = ::serde::Map::new();\n\
                                 map.insert(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(inner));\n\
                                 ::serde::Value::Object(map)\n\
                             }}\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn expand_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(try_from) = &input.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let raw: {try_from} = ::serde::Deserialize::from_value(value)?;\n\
                     ::std::convert::TryFrom::try_from(raw)\
                         .map_err(|e| ::serde::Error::custom(e))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.shape {
        Shape::Named(fields) => {
            let binding = if fields.is_empty() { "_map" } else { "map" };
            let mut build = String::new();
            for f in fields {
                build.push_str(&format!("{f}: ::serde::__private::field(map, \"{f}\")?,\n"));
            }
            format!(
                "let {binding} = value.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object\", value, \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{build}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::element(items, {i})?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", value, \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n",
                        vname = v.name
                    )
                })
                .collect();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::element(items, {i})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", inner, \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let build: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(fields, \"{f}\")?,\n"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let fields = inner.as_object().ok_or_else(|| \
                                 ::serde::Error::expected(\"object\", inner, \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{build}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            let inner_binding = if data_arms.is_empty() {
                "_inner"
            } else {
                "inner"
            };
            format!(
                "match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (tag, {inner_binding}) = map.iter().next().expect(\"len checked\");\n\
                         match tag.as_str() {{\n\
                             {data_arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                     ::serde::Error::expected(\"variant tag\", other, \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
