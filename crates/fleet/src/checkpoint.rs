//! Crash-safe persistence of checkpointed fleet state.
//!
//! A checkpoint exists precisely so that a crash loses at most the
//! segment being processed — which makes the checkpoint file itself the
//! one artefact that must never be corrupted by a crash. A naive
//! `fs::write` truncates the destination before writing, so a kill
//! mid-write leaves a half-file that silently poisons the next resume.
//! [`save_state`] therefore writes through the classic atomic protocol:
//!
//! 1. serialise to `<path>.tmp` in the **same directory** (rename must
//!    not cross filesystems),
//! 2. `fsync` the temp file so the bytes are durable before they become
//!    visible,
//! 3. atomically `rename` over the destination — readers see either the
//!    old complete checkpoint or the new complete checkpoint, never a
//!    mixture,
//! 4. `fsync` of the containing directory ([`fsync_dir`]) so the rename
//!    itself survives a power cut.
//!
//! The serialised bytes are exactly
//! [`serde_json::to_string_pretty`] of the [`FleetState`] — the same
//! bytes `qrn fleet ingest --out/--checkpoint` has always produced — so
//! switching to atomic writes changes durability, not artefact content:
//! checkpoint byte-identity guarantees (segment-wise ≡ one-shot, server
//! ≡ offline) are unaffected.
//!
//! [`load_state`] is the tolerant mirror: a missing file is `Ok(None)`
//! via [`load_state_if_exists`], while an unparseable file is a
//! [`FleetError::Corrupt`] with the path and the parse failure — a clear
//! error, never a panic, so an operator immediately knows which file to
//! delete or restore.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::FleetError;
use crate::ingest::FleetState;

/// Serialises `state` and atomically replaces the checkpoint at `path`
/// (write-to-temp + fsync + rename).
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the temp file cannot be created,
/// written, synced or renamed.
pub fn save_state(path: &Path, state: &FleetState) -> Result<(), FleetError> {
    let json = serde_json::to_string_pretty(state).expect("fleet state is serialisable");
    save_bytes(path, json.as_bytes())
}

/// Atomically replaces the file at `path` with `bytes` (write-to-temp +
/// fsync + rename). The temp file is `<file-name>.tmp` in the same
/// directory.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when any step of the protocol fails; the
/// destination is left untouched in that case.
pub fn save_bytes(path: &Path, bytes: &[u8]) -> Result<(), FleetError> {
    let io_err = |what: &str, p: &Path, e: std::io::Error| {
        FleetError::Io(format!("cannot {what} {}: {e}", p.display()))
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| io_err("create directory", parent, e))?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| FleetError::Io(format!("{} has no file name", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    file.write_all(bytes)
        .map_err(|e| io_err("write", &tmp, e))?;
    // Durability point: the bytes must be on stable storage *before* the
    // rename makes them the checkpoint, or a crash could expose a named
    // but empty file.
    file.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err("rename into place", &tmp, e))?;
    // The rename is only durable once the directory entry is synced.
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Syncs the directory entry metadata of `dir` to stable storage, so a
/// rename or file creation inside it survives a power cut. An empty path
/// is treated as the current directory.
///
/// Opening a directory read-only works on every unix; on platforms where
/// it does not, the open failure is tolerated (the file data itself is
/// already synced by the caller). A directory that *opens* but fails to
/// sync is a real durability problem and is reported.
///
/// Shared by checkpoint writes and by `qrn-store`'s segment roll and
/// compaction, so every rename-into-place in the workspace carries the
/// same durability guarantee.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the directory opens but `sync_all`
/// fails.
pub fn fsync_dir(dir: &Path) -> Result<(), FleetError> {
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    if let Ok(d) = fs::File::open(dir) {
        d.sync_all()
            .map_err(|e| FleetError::Io(format!("cannot sync directory {}: {e}", dir.display())))?;
    }
    Ok(())
}

/// Derives the checkpoint path of one named norm/allocation *item* from
/// a base checkpoint path, for servers hosting several items: the item
/// name is inserted before the file extension, so `live-state.json` +
/// item `vru` → `live-state.vru.json` (and `state` + `vru` →
/// `state.vru`). Sidecars derived from the returned path (for example
/// the `.looks.json` look counters) are therefore per-item too.
///
/// Callers keep the *default* item on the bare base path so a
/// single-item deployment's artefacts stay byte- and name-compatible
/// with `qrn fleet ingest --checkpoint`.
pub fn item_checkpoint_path(base: &Path, item: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let name = match base.extension() {
        Some(ext) => format!("{stem}.{item}.{}", ext.to_string_lossy()),
        None => format!("{stem}.{item}"),
    };
    base.with_file_name(name)
}

/// Loads a checkpointed [`FleetState`] from `path`.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the file cannot be read and
/// [`FleetError::Corrupt`] — with the path and the underlying parse
/// failure — when it reads but does not parse as a fleet state (for
/// example a write truncated by a crash before checkpointing became
/// atomic).
pub fn load_state(path: &Path) -> Result<FleetState, FleetError> {
    let text = fs::read_to_string(path)
        .map_err(|e| FleetError::Io(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&text).map_err(|e| {
        FleetError::Corrupt(format!(
            "{} is not a valid fleet-state checkpoint ({e}); \
             the file may be a truncated write from an interrupted run — \
             delete it to start fresh or restore it from a backup",
            path.display()
        ))
    })
}

/// Loads the checkpoint at `path` when it exists, `None` when it does
/// not.
///
/// # Errors
///
/// Propagates [`load_state`]'s errors for files that exist but cannot be
/// read or parsed.
pub fn load_state_if_exists(path: &Path) -> Result<Option<FleetState>, FleetError> {
    if path.exists() {
        load_state(path).map(Some)
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_str;
    use qrn_core::examples::paper_classification;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qrn-checkpoint-{tag}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state() -> FleetState {
        let classification = paper_classification().unwrap();
        let log = r#"{"v":1,"event":"exposure","vehicle":"V1","hours":8.0}"#;
        ingest_str(log, &classification, 1).unwrap()
    }

    #[test]
    fn save_load_round_trips_and_matches_plain_pretty_json() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("state.json");
        let state = sample_state();
        save_state(&path, &state).unwrap();
        // Byte-compatibility with the historical non-atomic writer: the
        // determinism contracts elsewhere compare these files byte for
        // byte.
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            serde_json::to_string_pretty(&state).unwrap()
        );
        let back = load_state(&path).unwrap();
        assert_eq!(back, state);
        assert_eq!(load_state_if_exists(&path).unwrap(), Some(state));
        // No temp file left behind.
        assert!(!dir.join("state.json.tmp").exists());
    }

    #[test]
    fn missing_checkpoint_is_none_not_an_error() {
        let dir = temp_dir("missing");
        assert_eq!(
            load_state_if_exists(&dir.join("never-written.json")).unwrap(),
            None
        );
        assert!(matches!(
            load_state(&dir.join("never-written.json")),
            Err(FleetError::Io(_))
        ));
    }

    #[test]
    fn truncated_checkpoint_is_a_clear_error_not_a_panic() {
        let dir = temp_dir("truncated");
        let path = dir.join("state.json");
        let state = sample_state();
        let whole = serde_json::to_string_pretty(&state).unwrap();
        // A prefix of a valid checkpoint: what a killed non-atomic write
        // would have left behind.
        fs::write(&path, &whole[..whole.len() / 2]).unwrap();
        let err = load_state(&path).unwrap_err();
        match &err {
            FleetError::Corrupt(msg) => {
                assert!(msg.contains("state.json"), "{msg}");
                assert!(msg.contains("truncated"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // load_state_if_exists propagates (a corrupt file must never be
        // silently treated as a fresh start).
        assert!(load_state_if_exists(&path).is_err());
    }

    #[test]
    fn save_replaces_existing_checkpoint_atomically() {
        let dir = temp_dir("replace");
        let path = dir.join("state.json");
        let a = FleetState::default();
        let b = sample_state();
        save_state(&path, &a).unwrap();
        save_state(&path, &b).unwrap();
        assert_eq!(load_state(&path).unwrap(), b);
    }

    #[test]
    fn item_checkpoint_paths_key_by_item_and_keep_directory() {
        assert_eq!(
            item_checkpoint_path(Path::new("case/live-state.json"), "vru"),
            Path::new("case/live-state.vru.json")
        );
        assert_eq!(
            item_checkpoint_path(Path::new("state"), "highway_ads"),
            Path::new("state.highway_ads")
        );
        // Distinct items never collide on disk.
        assert_ne!(
            item_checkpoint_path(Path::new("s.json"), "a"),
            item_checkpoint_path(Path::new("s.json"), "b")
        );
    }

    #[test]
    fn fsync_dir_accepts_real_empty_and_missing_directories() {
        // A real directory syncs cleanly.
        fsync_dir(&temp_dir("fsync")).unwrap();
        // The empty path means "current directory".
        fsync_dir(Path::new("")).unwrap();
        // A directory that cannot be opened is tolerated (portability:
        // opening directories is not universally supported), never an
        // error — the caller's file data is already synced.
        fsync_dir(Path::new("/definitely/not/a/real/dir")).unwrap();
    }

    #[test]
    fn save_creates_missing_parent_directories() {
        let dir = temp_dir("parents").join("a").join("b");
        let path = dir.join("state.json");
        save_state(&path, &FleetState::default()).unwrap();
        assert!(path.exists());
    }
}
