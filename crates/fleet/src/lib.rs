//! # qrn-fleet — streaming fleet evidence and budget burn-down monitoring
//!
//! The QRN paper's central move is to turn safety goals into *quantitative
//! budgets* (`f_{I_k}`) that must be verified against operational evidence,
//! not argued once at design time. The rest of the workspace can state
//! budgets (`qrn-core`), bound rates (`qrn-stats`) and *simulate* fleets
//! (`qrn-sim`); this crate closes the loop by *monitoring* them:
//!
//! 1. [`event`] — an append-only JSONL event log of incident observations
//!    (vehicle id, odometer exposure, raw incident record) with a tolerant,
//!    versioned parser that skips-and-counts malformed lines instead of
//!    aborting the campaign.
//! 2. [`ingest`] — a sharded streaming ingestion engine reusing the
//!    work-stealing pattern of `qrn-sim::monte_carlo`: worker shards claim
//!    fixed line blocks from an atomic queue and fold them into partial
//!    accumulators that are merged in canonical block order, so the
//!    resulting [`ingest::FleetState`] is byte-identical for any shard
//!    count.
//! 3. [`burndown`] — joins the live state against an
//!    [`Allocation`](qrn_core::allocation::Allocation)/
//!    [`QuantitativeRiskNorm`](qrn_core::norm::QuantitativeRiskNorm) pair
//!    and emits per-`I_k` and per-`v_j` verdicts via Wald's SPRT plus exact
//!    Poisson bounds, with [`burndown::AlertLevel`] escalation
//!    (Ok → Watch → Burned) and a serialisable [`burndown::FleetReport`].
//! 4. [`telemetry`] — a synthetic telemetry generator driving `qrn-sim`
//!    campaigns to produce realistic event logs for rehearsing the
//!    monitoring pipeline before real fleet data exists.
//! 5. [`checkpoint`] — crash-safe (write-to-temp + fsync + atomic rename)
//!    persistence of [`ingest::FleetState`], shared by the CLI's
//!    `fleet ingest --checkpoint` and the `qrn-serve` live server so both
//!    produce byte-identical checkpoint artefacts.
//! 6. [`looks`] — the `<checkpoint>.looks.json` sidecar: per-goal look
//!    counters and `Ok → Watch → Burned` transition timestamps, shared by
//!    the live server, offline `fleet report --checkpoint` and
//!    `qrn evidence inspect` so look accounting is consistent wherever a
//!    verdict is consulted.
//!
//! # A monitoring loop in six lines
//!
//! ```
//! use qrn_fleet::{burndown::{burn_down, BurnDownConfig}, ingest::ingest_str, telemetry};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let classification = qrn_core::examples::paper_classification()?;
//! let events = telemetry::TelemetryConfig::new(4)
//!     .hours(qrn_units::Hours::new(200.0)?)
//!     .generate()?;
//! let log = qrn_fleet::event::to_jsonl(&events);
//! let state = ingest_str(&log, &classification, 2)?;
//! assert!(state.exposure().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burndown;
pub mod checkpoint;
pub mod error;
pub mod event;
pub mod ingest;
pub mod looks;
pub mod telemetry;

pub use burndown::{
    burn_down, burn_down_filtered, AlertLevel, BurnDownConfig, ContextFilter, FleetReport,
};
pub use error::FleetError;
pub use event::fastpath::{parse_line_hybrid, FastEvent, ParsedLine, ScratchParser};
pub use event::{parse_jsonl, to_jsonl, FleetEvent, SkipCounts, SCHEMA_VERSION};
pub use ingest::{ingest_str, ingest_str_with_scratch, FleetState};
pub use looks::{AlertTransition, GoalLooks, LookBook};
pub use telemetry::TelemetryConfig;
