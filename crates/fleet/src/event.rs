//! The fleet event model and its append-only JSONL wire format.
//!
//! A fleet emits a stream of observations, one JSON object per line:
//!
//! ```text
//! {"v":1,"event":"exposure","vehicle":"V0001","hours":8.0}
//! {"v":1,"event":"incident","vehicle":"V0001","record":{...IncidentRecord...}}
//! ```
//!
//! * `exposure` — an odometer report: the vehicle accumulated `hours` of
//!   operation since its previous report. Exposure is the denominator of
//!   every rate the burn-down tracker computes, so vehicles report it
//!   continuously rather than only when something happens.
//! * `incident` — a raw [`IncidentRecord`] (collision or near-miss with
//!   involvement), exactly the representation `qrn-sim` produces and
//!   `qrn-core` classifies. Classification into `I_k` happens at ingest
//!   time against the current [`IncidentClassification`](qrn_core::IncidentClassification),
//!   so re-ingesting an old log under a revised classification is free.
//!
//! # Tolerance
//!
//! Real telemetry is dirty: truncated uploads, firmware speaking a newer
//! schema, corrupted flash. A fleet monitor that aborts on the first bad
//! line silently loses everything after it, so [`parse_line`] never fails
//! the stream — it returns the reason a line was skipped and the engine
//! counts skips per reason in [`SkipCounts`], which travel with every
//! downstream report. A spike in skip counts is itself actionable evidence
//! that the evidence pipeline (not the ADS) is degrading.
//!
//! # Versioning
//!
//! Every line carries a schema version `v`. Lines with `v` newer than
//! [`SCHEMA_VERSION`] are skipped (and counted) instead of being
//! mis-parsed: an old monitor must never misread new-firmware telemetry as
//! zero incidents.
//!
//! Schema version 2 adds one optional field: `ctx`, a canonical ODD-band
//! context key (see [`qrn_odd::key`]) attributing the exposure or incident
//! to the band it was observed in:
//!
//! ```text
//! {"ctx":"weather=fog,zone=school","event":"exposure","hours":0.25,"v":2,"vehicle":"V0001"}
//! ```
//!
//! The writer is conservative: lines without a context are still emitted
//! as version 1, byte-identical to every pre-v2 writer, so ctx-less logs,
//! checkpoints and store segments cannot drift. Only ctx-stamped lines
//! carry `"v":2`. A `ctx` field that is present but is not a string
//! holding a grammar-valid canonical key is [`SkipReason::InvalidValue`]:
//! a mangled context must never silently degrade into global evidence.

use serde::json::Value;
use serde::{Deserialize, Serialize};

use qrn_core::incident::{IncidentKind, IncidentRecord};
use qrn_core::object::{Involvement, ObjectType};
use qrn_units::Hours;

pub mod fastpath;

/// Newest event-schema version this parser understands.
pub const SCHEMA_VERSION: u64 = 2;

/// The version a rendered line declares: 1 for ctx-less lines (the exact
/// bytes every pre-v2 writer produced), 2 once a context key is stamped.
pub fn line_version(ctx: Option<&str>) -> u64 {
    match ctx {
        Some(_) => 2,
        None => 1,
    }
}

/// One observation from the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// An odometer report: `hours` of operation accumulated since the
    /// vehicle's previous report.
    Exposure {
        /// Reporting vehicle.
        vehicle: String,
        /// Operating hours accumulated since the previous report.
        hours: Hours,
    },
    /// A raw incident observation (classified at ingest time).
    Incident {
        /// Reporting vehicle.
        vehicle: String,
        /// What happened.
        record: IncidentRecord,
    },
}

impl FleetEvent {
    /// The reporting vehicle's id.
    pub fn vehicle(&self) -> &str {
        match self {
            FleetEvent::Exposure { vehicle, .. } | FleetEvent::Incident { vehicle, .. } => vehicle,
        }
    }

    /// Renders the event as one compact JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.render_line(None)
    }

    /// Renders the event as one compact JSONL line carrying a per-source
    /// monotone sequence number `seq`. Sequence numbers start at 1 and
    /// increase by one per event *per vehicle*; consumers that track them
    /// (the `qrn-store` gap detector) reject duplicates and count holes.
    /// [`parse_line`] ignores the field, so sequenced telemetry stays
    /// readable by every existing consumer under [`SCHEMA_VERSION`] 1.
    pub fn to_line_with_seq(&self, seq: u64) -> String {
        self.render_line(Some(seq))
    }

    /// Renders the event as one compact JSONL line attributing it to the
    /// ODD-band context `ctx` (a canonical key from
    /// [`qrn_odd::key::ContextKey`]). Context-stamped lines declare
    /// schema version 2.
    pub fn to_line_with_meta(&self, seq: Option<u64>, ctx: Option<&str>) -> String {
        let mut out = String::with_capacity(96);
        self.render_line_meta_into(&mut out, seq, ctx);
        out
    }

    /// Renders the event into `out` (appending; callers clear between
    /// lines to reuse the buffer). Byte-identical to [`Self::to_line`] /
    /// [`Self::to_line_with_seq`] — the keys are emitted in the sorted
    /// order the `Value` map would produce, floats use the same
    /// shortest-roundtrip formatting, and strings the same escaping — but
    /// without building a `Value` tree or allocating per line, so the
    /// telemetry generator can render millions of lines into one buffer.
    pub fn render_line_into(&self, out: &mut String, seq: Option<u64>) {
        self.render_line_meta_into(out, seq, None);
    }

    /// Renders the event into `out` like [`Self::render_line_into`], with
    /// an optional ODD-band context key. `ctx` leads the line (`"ctx"`
    /// sorts before `"event"`) and flips the declared version to 2;
    /// without it the bytes are exactly the version-1 wire format.
    pub fn render_line_meta_into(&self, out: &mut String, seq: Option<u64>, ctx: Option<&str>) {
        use std::fmt::Write as _;
        out.push('{');
        if let Some(ctx) = ctx {
            out.push_str("\"ctx\":");
            push_json_str(out, ctx);
            out.push(',');
        }
        out.push_str("\"event\":\"");
        match self {
            FleetEvent::Exposure { hours, .. } => {
                out.push_str("exposure\",\"hours\":");
                push_json_f64(out, f64::from(*hours));
            }
            FleetEvent::Incident { record, .. } => {
                out.push_str("incident\",\"record\":");
                push_json_record(out, record);
            }
        }
        if let Some(seq) = seq {
            out.push_str(",\"seq\":");
            let _ = write!(out, "{seq}");
        }
        out.push_str(",\"v\":");
        let _ = write!(out, "{}", line_version(ctx));
        out.push_str(",\"vehicle\":");
        push_json_str(out, self.vehicle());
        out.push('}');
    }

    fn render_line(&self, seq: Option<u64>) -> String {
        let mut out = String::with_capacity(96);
        self.render_line_into(&mut out, seq);
        out
    }
}

/// Appends a float with the vendored serializer's exact formatting:
/// shortest-roundtrip `{:?}` for finite values, `null` otherwise.
fn push_json_f64(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON string with the vendored serializer's exact escaping.
fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if c < '\u{20}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an [`IncidentRecord`] exactly as the derived serializer does
/// through the sorted `Value` map: `involvement` before `kind`, variant
/// payload fields in sorted key order.
fn push_json_record(out: &mut String, record: &IncidentRecord) {
    out.push_str("{\"involvement\":");
    match record.involvement {
        Involvement::EgoWith(object) => {
            out.push_str("{\"EgoWith\":");
            push_json_str(out, object_variant_name(object));
            out.push('}');
        }
        Involvement::Induced(a, b) => {
            out.push_str("{\"Induced\":[");
            push_json_str(out, object_variant_name(a));
            out.push(',');
            push_json_str(out, object_variant_name(b));
            out.push_str("]}");
        }
    }
    out.push_str(",\"kind\":");
    match record.kind {
        IncidentKind::Collision { impact_speed } => {
            out.push_str("{\"Collision\":{\"impact_speed\":");
            push_json_f64(out, f64::from(impact_speed));
            out.push_str("}}");
        }
        IncidentKind::NearMiss {
            distance,
            relative_speed,
        } => {
            out.push_str("{\"NearMiss\":{\"distance\":");
            push_json_f64(out, f64::from(distance));
            out.push_str(",\"relative_speed\":");
            push_json_f64(out, f64::from(relative_speed));
            out.push_str("}}");
        }
    }
    out.push('}');
}

/// The serde *variant name* of an [`ObjectType`] — what the derived
/// serializer emits (note: distinct from `Display`, which renders
/// `Vru` as `"VRU"`).
pub(crate) fn object_variant_name(object: ObjectType) -> &'static str {
    match object {
        ObjectType::Vru => "Vru",
        ObjectType::Car => "Car",
        ObjectType::Truck => "Truck",
        ObjectType::Animal => "Animal",
        ObjectType::StaticObject => "StaticObject",
        ObjectType::Other => "Other",
    }
}

/// The inverse of [`object_variant_name`] — used by the fast-path parser.
pub(crate) fn object_from_variant_name(name: &str) -> Option<ObjectType> {
    Some(match name {
        "Vru" => ObjectType::Vru,
        "Car" => ObjectType::Car,
        "Truck" => ObjectType::Truck,
        "Animal" => ObjectType::Animal,
        "StaticObject" => ObjectType::StaticObject,
        "Other" => ObjectType::Other,
        _ => return None,
    })
}

/// Why a line was skipped instead of parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The line is not valid JSON.
    BadJson,
    /// The line is valid JSON but not an object.
    NotAnObject,
    /// The `v` field is missing, non-integer, or newer than
    /// [`SCHEMA_VERSION`].
    UnsupportedVersion,
    /// The `event` tag is missing or names an unknown event kind.
    UnknownKind,
    /// A required field of the event kind is missing.
    MissingField,
    /// A field is present but its value does not parse (wrong type,
    /// negative hours, malformed incident record, …).
    InvalidValue,
}

/// Per-reason tallies of skipped lines. Additive: partial counts from
/// parallel shards merge by field-wise sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipCounts {
    /// Lines that were not valid JSON.
    pub bad_json: u64,
    /// Lines that were JSON but not an object.
    pub not_an_object: u64,
    /// Lines with a missing, non-integer, or too-new schema version.
    pub unsupported_version: u64,
    /// Lines with a missing or unknown `event` tag.
    pub unknown_kind: u64,
    /// Lines missing a required field.
    pub missing_field: u64,
    /// Lines whose field values do not parse.
    pub invalid_value: u64,
}

impl SkipCounts {
    /// Tallies one skip.
    pub fn count(&mut self, reason: SkipReason) {
        match reason {
            SkipReason::BadJson => self.bad_json += 1,
            SkipReason::NotAnObject => self.not_an_object += 1,
            SkipReason::UnsupportedVersion => self.unsupported_version += 1,
            SkipReason::UnknownKind => self.unknown_kind += 1,
            SkipReason::MissingField => self.missing_field += 1,
            SkipReason::InvalidValue => self.invalid_value += 1,
        }
    }

    /// Adds another tally (shard merge).
    pub fn merge(&mut self, other: &SkipCounts) {
        self.bad_json += other.bad_json;
        self.not_an_object += other.not_an_object;
        self.unsupported_version += other.unsupported_version;
        self.unknown_kind += other.unknown_kind;
        self.missing_field += other.missing_field;
        self.invalid_value += other.invalid_value;
    }

    /// Total skipped lines across all reasons.
    pub fn total(&self) -> u64 {
        self.bad_json
            + self.not_an_object
            + self.unsupported_version
            + self.unknown_kind
            + self.missing_field
            + self.invalid_value
    }
}

/// Parses one JSONL line. Blank lines (including whitespace-only) yield
/// `Ok(None)` so logs may contain separators; malformed lines yield
/// `Err(reason)` — never a stream abort. A `seq` field, when present, is
/// ignored; use [`parse_line_with_seq`] to observe it.
pub fn parse_line(line: &str) -> Result<Option<FleetEvent>, SkipReason> {
    parse_line_with_seq(line).map(|parsed| parsed.map(|(event, _seq)| event))
}

/// Parses one JSONL line like [`parse_line`], additionally surfacing the
/// optional per-source sequence number stamped by
/// [`FleetEvent::to_line_with_seq`]. Unsequenced lines parse to
/// `(event, None)` — `seq` was introduced within schema version 1, so
/// both shapes coexist in one log. A `seq` field that is present but is
/// not an unsigned integer is [`SkipReason::InvalidValue`]: a mangled
/// sequence number must never be silently treated as "unsequenced",
/// because that would exempt the line from duplicate rejection.
pub fn parse_line_with_seq(line: &str) -> Result<Option<(FleetEvent, Option<u64>)>, SkipReason> {
    parse_line_with_meta(line).map(|parsed| parsed.map(|(event, seq, _ctx)| (event, seq)))
}

/// One parsed telemetry line with its optional line metadata: the
/// per-vehicle sequence number and the ODD-band context key.
pub type EventMeta = (FleetEvent, Option<u64>, Option<String>);

/// Parses one JSONL line like [`parse_line_with_seq`], additionally
/// surfacing the optional ODD-band context key stamped by
/// [`FleetEvent::to_line_with_meta`]. Unstamped lines parse to
/// `ctx = None` (global evidence). A `ctx` field that is present but is
/// not a string carrying a grammar-valid canonical key (see
/// [`qrn_odd::key::is_canonical_key`]) is [`SkipReason::InvalidValue`]:
/// mangled context must be counted, never silently folded into the
/// global row.
pub fn parse_line_with_meta(line: &str) -> Result<Option<EventMeta>, SkipReason> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let value = serde_json::parse(line).map_err(|_| SkipReason::BadJson)?;
    let map = value.as_object().ok_or(SkipReason::NotAnObject)?;
    match map.get("v").and_then(|v| match v {
        Value::Number(n) => n.as_u64(),
        _ => None,
    }) {
        Some(v) if v <= SCHEMA_VERSION => {}
        _ => return Err(SkipReason::UnsupportedVersion),
    }
    let seq = match map.get("seq") {
        None => None,
        Some(Value::Number(n)) => Some(n.as_u64().ok_or(SkipReason::InvalidValue)?),
        Some(_) => return Err(SkipReason::InvalidValue),
    };
    let ctx = match map.get("ctx") {
        None => None,
        Some(Value::String(key)) if qrn_odd::key::is_canonical_key(key) => Some(key.clone()),
        Some(_) => return Err(SkipReason::InvalidValue),
    };
    let kind = map
        .get("event")
        .and_then(Value::as_str)
        .ok_or(SkipReason::UnknownKind)?;
    let vehicle = map
        .get("vehicle")
        .ok_or(SkipReason::MissingField)?
        .as_str()
        .ok_or(SkipReason::InvalidValue)?
        .to_string();
    let event = match kind {
        "exposure" => {
            let hours = map.get("hours").ok_or(SkipReason::MissingField)?;
            let hours: Hours =
                serde_json::from_value(hours).map_err(|_| SkipReason::InvalidValue)?;
            FleetEvent::Exposure { vehicle, hours }
        }
        "incident" => {
            let record = map.get("record").ok_or(SkipReason::MissingField)?;
            let record: IncidentRecord =
                serde_json::from_value(record).map_err(|_| SkipReason::InvalidValue)?;
            FleetEvent::Incident { vehicle, record }
        }
        _ => return Err(SkipReason::UnknownKind),
    };
    Ok(Some((event, seq, ctx)))
}

/// Renders events as a JSONL document (one line per event, trailing
/// newline).
pub fn to_jsonl(events: &[FleetEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_line());
        out.push('\n');
    }
    out
}

/// Parses a whole JSONL document sequentially, collecting events and skip
/// tallies. The sharded engine in [`crate::ingest`] supersedes this for
/// large logs; this is the reference implementation the engine's output is
/// tested against.
pub fn parse_jsonl(text: &str) -> (Vec<FleetEvent>, SkipCounts) {
    let mut events = Vec::new();
    let mut skipped = SkipCounts::default();
    for line in text.lines() {
        match parse_line(line) {
            Ok(Some(event)) => events.push(event),
            Ok(None) => {}
            Err(reason) => skipped.count(reason),
        }
    }
    (events, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::{Meters, Speed};

    fn exposure(vehicle: &str, hours: f64) -> FleetEvent {
        FleetEvent::Exposure {
            vehicle: vehicle.into(),
            hours: Hours::new(hours).unwrap(),
        }
    }

    fn incident(vehicle: &str) -> FleetEvent {
        FleetEvent::Incident {
            vehicle: vehicle.into(),
            record: IncidentRecord::collision(
                Involvement::ego_with(ObjectType::Vru),
                Speed::from_kmh(7.0).unwrap(),
            ),
        }
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = vec![
            exposure("V0001", 8.0),
            incident("V0001"),
            FleetEvent::Incident {
                vehicle: "V0002".into(),
                record: IncidentRecord::near_miss(
                    Involvement::ego_with(ObjectType::Car),
                    Meters::new(0.4).unwrap(),
                    Speed::from_kmh(22.0).unwrap(),
                ),
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let (back, skipped) = parse_jsonl(&text);
        assert_eq!(back, events);
        assert_eq!(skipped.total(), 0);
    }

    #[test]
    fn lines_carry_the_schema_version() {
        let line = exposure("V1", 1.0).to_line();
        assert!(line.contains("\"v\":1"), "{line}");
        assert!(line.contains("\"event\":\"exposure\""), "{line}");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = format!(
            "\n{}\n   \n{}\n\n",
            exposure("a", 1.0).to_line(),
            incident("b").to_line()
        );
        let (events, skipped) = parse_jsonl(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(skipped.total(), 0);
    }

    #[test]
    fn seq_stamped_lines_round_trip_and_stay_readable_without_seq() {
        let event = exposure("V0001", 4.0);
        let line = event.to_line_with_seq(7);
        assert!(line.contains("\"seq\":7"), "{line}");
        // Sequence-aware parsing surfaces the number…
        assert_eq!(
            parse_line_with_seq(&line).unwrap(),
            Some((event.clone(), Some(7)))
        );
        // …while the plain parser reads the same line, ignoring it.
        assert_eq!(parse_line(&line).unwrap(), Some(event.clone()));
        // Unsequenced lines parse to seq = None.
        assert_eq!(
            parse_line_with_seq(&event.to_line()).unwrap(),
            Some((event, None))
        );
    }

    #[test]
    fn mangled_seq_is_invalid_value_not_unsequenced() {
        for line in [
            "{\"v\":1,\"seq\":\"7\",\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":1.0}",
            "{\"v\":1,\"seq\":-3,\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":1.0}",
            "{\"v\":1,\"seq\":1.5,\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":1.0}",
        ] {
            assert_eq!(
                parse_line_with_seq(line),
                Err(SkipReason::InvalidValue),
                "{line}"
            );
            assert_eq!(parse_line(line), Err(SkipReason::InvalidValue), "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted_by_reason() {
        let good = exposure("V1", 2.0).to_line();
        let text = [
            "{broken json",                                                      // bad_json
            "[1, 2, 3]",                                                         // not_an_object
            "{\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":1.0}",          // no version
            "{\"v\":99,\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":1.0}", // future version
            "{\"v\":1,\"vehicle\":\"x\",\"hours\":1.0}",                         // no event tag
            "{\"v\":1,\"event\":\"teleport\",\"vehicle\":\"x\"}",                // unknown kind
            "{\"v\":1,\"event\":\"exposure\",\"vehicle\":\"x\"}",                // missing hours
            "{\"v\":1,\"event\":\"exposure\",\"vehicle\":\"x\",\"hours\":-4.0}", // negative hours
            "{\"v\":1,\"event\":\"incident\",\"vehicle\":\"x\",\"record\":{\"bogus\":true}}",
            &good,
        ]
        .join("\n");
        let (events, skipped) = parse_jsonl(&text);
        assert_eq!(events, vec![exposure("V1", 2.0)]);
        assert_eq!(skipped.bad_json, 1);
        assert_eq!(skipped.not_an_object, 1);
        assert_eq!(skipped.unsupported_version, 2);
        assert_eq!(skipped.unknown_kind, 2);
        assert_eq!(skipped.missing_field, 1);
        assert_eq!(skipped.invalid_value, 2);
        assert_eq!(skipped.total(), 9);
    }

    #[test]
    fn skip_counts_merge_fieldwise() {
        let mut a = SkipCounts {
            bad_json: 1,
            ..SkipCounts::default()
        };
        let b = SkipCounts {
            bad_json: 2,
            invalid_value: 3,
            ..SkipCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.bad_json, 3);
        assert_eq!(a.invalid_value, 3);
        assert_eq!(a.total(), 6);
    }

    /// The renderer this PR replaced: a sorted `Value` map serialized via
    /// `to_json`. Kept as the reference the direct writer is asserted
    /// byte-identical against, so `--stamp-seq` artefacts and golden logs
    /// cannot drift.
    fn render_line_via_value_map(
        event: &FleetEvent,
        seq: Option<u64>,
        ctx: Option<&str>,
    ) -> String {
        let mut map = serde::json::Map::new();
        map.insert(
            "v".into(),
            Value::Number(serde::json::Number::PosInt(line_version(ctx))),
        );
        if let Some(ctx) = ctx {
            map.insert("ctx".into(), Value::String(ctx.into()));
        }
        if let Some(seq) = seq {
            map.insert(
                "seq".into(),
                Value::Number(serde::json::Number::PosInt(seq)),
            );
        }
        match event {
            FleetEvent::Exposure { vehicle, hours } => {
                map.insert("event".into(), Value::String("exposure".into()));
                map.insert("vehicle".into(), Value::String(vehicle.clone()));
                map.insert("hours".into(), serde_json::to_value(hours));
            }
            FleetEvent::Incident { vehicle, record } => {
                map.insert("event".into(), Value::String("incident".into()));
                map.insert("vehicle".into(), Value::String(vehicle.clone()));
                map.insert("record".into(), serde_json::to_value(record));
            }
        }
        Value::Object(map).to_json()
    }

    #[test]
    fn direct_renderer_is_byte_identical_to_the_value_map_renderer() {
        let mut events = vec![
            exposure("V0001", 8.0),
            exposure("V9999", 0.123456789012345),
            exposure("весёлый-транспорт", 1e-9),
            exposure(
                "quote\" slash\\ tab\t nl\n cr\r bell\u{7} bs\u{8} ff\u{c}",
                2.5,
            ),
            incident("V0002"),
        ];
        // Every involvement shape × kind, including un-normalised Induced
        // pairs (deserialization does not normalise, so the renderer must
        // reproduce whatever order the record carries).
        for a in ObjectType::ALL {
            for b in ObjectType::ALL {
                events.push(FleetEvent::Incident {
                    vehicle: format!("I-{a:?}-{b:?}"),
                    record: IncidentRecord {
                        involvement: Involvement::Induced(a, b),
                        kind: IncidentKind::NearMiss {
                            distance: Meters::new(0.25).unwrap(),
                            relative_speed: Speed::from_kmh(33.3).unwrap(),
                        },
                    },
                });
            }
            events.push(FleetEvent::Incident {
                vehicle: format!("E-{a:?}"),
                record: IncidentRecord {
                    involvement: Involvement::EgoWith(a),
                    kind: IncidentKind::Collision {
                        impact_speed: Speed::from_kmh(17.0).unwrap(),
                    },
                },
            });
        }
        let mut buf = String::new();
        for event in &events {
            for seq in [None, Some(1), Some(7), Some(u64::MAX)] {
                for ctx in [None, Some("zone=urban"), Some("lighting=dusk,weather=fog")] {
                    // A single reused buffer, as the generator uses it.
                    buf.clear();
                    event.render_line_meta_into(&mut buf, seq, ctx);
                    assert_eq!(buf, render_line_via_value_map(event, seq, ctx), "{event:?}");
                    assert_eq!(buf, event.to_line_with_meta(seq, ctx), "{event:?}");
                }
                assert_eq!(
                    event.render_line(seq),
                    render_line_via_value_map(event, seq, None),
                    "{event:?}"
                );
            }
        }
    }

    #[test]
    fn ctx_stamped_lines_declare_version_2_and_round_trip() {
        let event = exposure("V0001", 0.25);
        let line = event.to_line_with_meta(Some(3), Some("weather=fog,zone=school"));
        assert!(
            line.starts_with("{\"ctx\":\"weather=fog,zone=school\","),
            "{line}"
        );
        assert!(line.contains("\"v\":2"), "{line}");
        assert_eq!(
            parse_line_with_meta(&line).unwrap(),
            Some((
                event.clone(),
                Some(3),
                Some("weather=fog,zone=school".to_string())
            ))
        );
        // Meta-blind parsers still read the same event.
        assert_eq!(parse_line(&line).unwrap(), Some(event.clone()));
        assert_eq!(
            parse_line_with_seq(&line).unwrap(),
            Some((event.clone(), Some(3)))
        );
        // Unstamped lines keep the version-1 bytes and parse to ctx=None.
        let plain = event.to_line_with_meta(None, None);
        assert_eq!(plain, event.to_line());
        assert!(plain.contains("\"v\":1"), "{plain}");
        assert_eq!(
            parse_line_with_meta(&plain).unwrap(),
            Some((event, None, None))
        );
    }

    #[test]
    fn mangled_ctx_is_invalid_value_not_global() {
        for line in [
            // not a string
            "{\"ctx\":7,\"event\":\"exposure\",\"hours\":1.0,\"v\":2,\"vehicle\":\"x\"}",
            // empty key
            "{\"ctx\":\"\",\"event\":\"exposure\",\"hours\":1.0,\"v\":2,\"vehicle\":\"x\"}",
            // grammar violations: missing '=', unsorted dims, bad charset
            "{\"ctx\":\"zone\",\"event\":\"exposure\",\"hours\":1.0,\"v\":2,\"vehicle\":\"x\"}",
            "{\"ctx\":\"zone=urban,lighting=day\",\"event\":\"exposure\",\"hours\":1.0,\"v\":2,\"vehicle\":\"x\"}",
            "{\"ctx\":\"Zone=urban\",\"event\":\"exposure\",\"hours\":1.0,\"v\":2,\"vehicle\":\"x\"}",
        ] {
            assert_eq!(
                parse_line_with_meta(line),
                Err(SkipReason::InvalidValue),
                "{line}"
            );
        }
        // A ctx on a version-1 line is tolerated (ctx arrived mid-stream
        // before the firmware bumped its declared version).
        let v1_ctx =
            "{\"ctx\":\"zone=urban\",\"event\":\"exposure\",\"hours\":1.0,\"v\":1,\"vehicle\":\"x\"}";
        assert_eq!(
            parse_line_with_meta(v1_ctx).unwrap().unwrap().2,
            Some("zone=urban".to_string())
        );
    }

    #[test]
    fn skip_counts_serde_round_trip() {
        let counts = SkipCounts {
            bad_json: 1,
            unsupported_version: 2,
            ..SkipCounts::default()
        };
        let back: SkipCounts =
            serde_json::from_str(&serde_json::to_string(&counts).unwrap()).unwrap();
        assert_eq!(counts, back);
    }
}
