//! Per-goal look accounting and alert-transition history: the
//! `<checkpoint>.looks.json` sidecar.
//!
//! Every consultation of a goal's verdict against a growing evidence
//! stream is a *look*, and looks are test state, not evidence state: they
//! must survive restarts alongside the checkpoint but never contaminate
//! the evidence bytes. Historically the sidecar was a plain
//! `{"goal": count}` map owned by `qrn-serve`; this module promotes it to
//! a shared [`LookBook`] used by the live server, offline
//! `fleet report --checkpoint` and `qrn evidence inspect` alike, and
//! extends each entry with the goal's `Ok → Watch → Burned` transition
//! timestamps — answering "when did SG-I2 enter Watch?" from the sidecar
//! alone, without replaying the store.
//!
//! # Sidecar format
//!
//! A goal that has never left [`AlertLevel::Ok`] serialises as the bare
//! look count, byte-identical to the historical format:
//!
//! ```json
//! { "I1": 17 }
//! ```
//!
//! A goal with alert history serialises as an object:
//!
//! ```json
//! { "I3": { "alert": "Watch", "looks": 17, "transitions": [
//!     { "at_unix_millis": 1754700000000, "to": "Watch" } ] } }
//! ```
//!
//! Both forms deserialise; a fleet whose goals all stay `Ok` keeps its
//! legacy sidecar bytes forever.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::burndown::AlertLevel;
use crate::checkpoint;
use crate::error::FleetError;

/// One recorded alert-level change of a goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertTransition {
    /// Wall-clock of the look that observed the change, Unix epoch
    /// milliseconds.
    pub at_unix_millis: u64,
    /// The level the goal moved to.
    pub to: AlertLevel,
}

/// Look count and alert history of one goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalLooks {
    /// Completed looks at this goal's verdict.
    pub looks: u64,
    /// The alert level as of the last recorded look.
    pub alert: AlertLevel,
    /// Every observed change of alert level, in look order. Empty for a
    /// goal that has only ever been `Ok`.
    pub transitions: Vec<AlertTransition>,
}

impl Default for GoalLooks {
    fn default() -> Self {
        GoalLooks {
            looks: 0,
            alert: AlertLevel::Ok,
            transitions: Vec::new(),
        }
    }
}

impl GoalLooks {
    /// True when the entry is representable as a bare count — the goal
    /// has no alert history.
    fn is_plain(&self) -> bool {
        self.alert == AlertLevel::Ok && self.transitions.is_empty()
    }
}

impl Serialize for GoalLooks {
    fn to_value(&self) -> serde::Value {
        if self.is_plain() {
            return self.looks.to_value();
        }
        let mut map = serde::Map::new();
        map.insert(String::from("looks"), self.looks.to_value());
        map.insert(String::from("alert"), self.alert.to_value());
        map.insert(String::from("transitions"), self.transitions.to_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for GoalLooks {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            // Legacy bare count: a goal with no alert history.
            serde::Value::Number(_) => Ok(GoalLooks {
                looks: u64::from_value(value)?,
                ..GoalLooks::default()
            }),
            serde::Value::Object(map) => Ok(GoalLooks {
                looks: serde::__private::field(map, "looks")?,
                alert: serde::__private::field(map, "alert")?,
                transitions: match map.get("transitions") {
                    Some(v) => Vec::from_value(v)?,
                    None => Vec::new(),
                },
            }),
            other => Err(serde::Error::expected(
                "look count or goal-looks object",
                other,
                "GoalLooks",
            )),
        }
    }
}

/// The per-goal look ledger persisted next to a checkpoint. Serialises
/// as the bare `{"goal": entry}` map — the historical sidecar layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LookBook {
    goals: BTreeMap<String, GoalLooks>,
}

impl Serialize for LookBook {
    fn to_value(&self) -> serde::Value {
        self.goals.to_value()
    }
}

impl Deserialize for LookBook {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(LookBook {
            goals: BTreeMap::from_value(value)?,
        })
    }
}

impl LookBook {
    /// An empty book (no goal has been looked at).
    pub fn new() -> Self {
        LookBook::default()
    }

    /// Path of the sidecar belonging to `checkpoint`:
    /// `<checkpoint>.looks.json`.
    pub fn sidecar_path(checkpoint: &Path) -> PathBuf {
        let mut name = checkpoint.file_name().unwrap_or_default().to_os_string();
        name.push(".looks.json");
        checkpoint.with_file_name(name)
    }

    /// Loads a sidecar, distinguishing "not there yet" (a fresh
    /// checkpoint, `Ok(None)`) from "there but unreadable" (an error the
    /// operator must see, not silently reset look accounting for).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] for an unreadable file and
    /// [`FleetError::Corrupt`] for unparseable contents.
    pub fn load_if_exists(path: &Path) -> Result<Option<LookBook>, FleetError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(FleetError::Io(e.to_string())),
        };
        let text = String::from_utf8(bytes)
            .map_err(|e| FleetError::Corrupt(format!("look sidecar {path:?}: {e}")))?;
        let book = serde_json::from_str(&text)
            .map_err(|e| FleetError::Corrupt(format!("look sidecar {path:?}: {e}")))?;
        Ok(Some(book))
    }

    /// Atomically persists the book (write-to-temp + fsync + rename, like
    /// every checkpoint artefact).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] when the write fails.
    pub fn save(&self, path: &Path) -> Result<(), FleetError> {
        let json = serde_json::to_string_pretty(self).expect("look books are serialisable");
        checkpoint::save_bytes(path, json.as_bytes())
    }

    /// Records one look at `goal` and returns the new completed-look
    /// count (first look returns 1).
    pub fn spend_look(&mut self, goal: &str) -> u64 {
        let entry = self.goals.entry(goal.to_string()).or_default();
        entry.looks += 1;
        entry.looks
    }

    /// Records the alert level `alert` observed at `now_unix_millis`. A
    /// change from the last recorded level appends a transition; an
    /// unchanged level is a no-op, so the history holds only the edges.
    pub fn observe_alert(&mut self, goal: &str, alert: AlertLevel, now_unix_millis: u64) {
        let entry = self.goals.entry(goal.to_string()).or_default();
        if entry.alert != alert {
            entry.alert = alert;
            entry.transitions.push(AlertTransition {
                at_unix_millis: now_unix_millis,
                to: alert,
            });
        }
    }

    /// Completed looks at `goal` (zero when never looked at).
    pub fn looks(&self, goal: &str) -> u64 {
        self.goals.get(goal).map_or(0, |g| g.looks)
    }

    /// The full entry of `goal`, if any look was recorded.
    pub fn goal(&self, goal: &str) -> Option<&GoalLooks> {
        self.goals.get(goal)
    }

    /// Iterates entries in goal order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &GoalLooks)> {
        self.goals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when no goal has been looked at.
    pub fn is_empty(&self) -> bool {
        self.goals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_and_look_counts_accumulate() {
        let mut book = LookBook::new();
        assert_eq!(book.looks("I1"), 0);
        assert_eq!(book.spend_look("I1"), 1);
        assert_eq!(book.spend_look("I1"), 2);
        assert_eq!(book.spend_look("I2"), 1);
        assert_eq!(book.looks("I1"), 2);
    }

    #[test]
    fn clean_goals_keep_the_legacy_bare_count_bytes() {
        let mut book = LookBook::new();
        book.spend_look("I1");
        book.spend_look("I1");
        book.observe_alert("I1", AlertLevel::Ok, 1000);
        let json = serde_json::to_string_pretty(&book).unwrap();
        // Exactly the historical plain-map sidecar.
        let legacy =
            serde_json::to_string_pretty(&BTreeMap::from([(String::from("I1"), 2u64)])).unwrap();
        assert_eq!(json, legacy);
    }

    #[test]
    fn legacy_sidecars_deserialise_as_clean_goals() {
        let book: LookBook = serde_json::from_str(r#"{"I1": 5, "I2": 1}"#).unwrap();
        assert_eq!(book.looks("I1"), 5);
        assert_eq!(book.goal("I2").unwrap().alert, AlertLevel::Ok);
        assert!(book.goal("I2").unwrap().transitions.is_empty());
    }

    #[test]
    fn transitions_record_edges_only_and_round_trip() {
        let mut book = LookBook::new();
        book.spend_look("I3");
        book.observe_alert("I3", AlertLevel::Ok, 1);
        book.spend_look("I3");
        book.observe_alert("I3", AlertLevel::Watch, 2);
        book.spend_look("I3");
        book.observe_alert("I3", AlertLevel::Watch, 3);
        book.spend_look("I3");
        book.observe_alert("I3", AlertLevel::Burned, 4);
        let entry = book.goal("I3").unwrap();
        assert_eq!(entry.looks, 4);
        assert_eq!(entry.alert, AlertLevel::Burned);
        assert_eq!(
            entry.transitions,
            vec![
                AlertTransition {
                    at_unix_millis: 2,
                    to: AlertLevel::Watch
                },
                AlertTransition {
                    at_unix_millis: 4,
                    to: AlertLevel::Burned
                },
            ]
        );
        let json = serde_json::to_string_pretty(&book).unwrap();
        let back: LookBook = serde_json::from_str(&json).unwrap();
        assert_eq!(book, back);
    }

    #[test]
    fn a_recovered_goal_keeps_its_history() {
        // Watch then back to Ok: the entry is no longer "plain" (it has
        // history) and must keep the object form.
        let mut book = LookBook::new();
        book.spend_look("I2");
        book.observe_alert("I2", AlertLevel::Watch, 10);
        book.spend_look("I2");
        book.observe_alert("I2", AlertLevel::Ok, 20);
        let json = serde_json::to_string_pretty(&book).unwrap();
        assert!(json.contains("transitions"), "{json}");
        let back: LookBook = serde_json::from_str(&json).unwrap();
        assert_eq!(back.goal("I2").unwrap().transitions.len(), 2);
    }

    #[test]
    fn sidecar_path_appends_to_the_checkpoint_name() {
        assert_eq!(
            LookBook::sidecar_path(Path::new("/tmp/fleet.ckpt")),
            PathBuf::from("/tmp/fleet.ckpt.looks.json")
        );
    }

    #[test]
    fn save_and_load_round_trip_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("qrn-looks-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt.looks.json");
        assert_eq!(LookBook::load_if_exists(&path).unwrap(), None);
        let mut book = LookBook::new();
        book.spend_look("I1");
        book.observe_alert("I1", AlertLevel::Watch, 42);
        book.save(&path).unwrap();
        let loaded = LookBook::load_if_exists(&path).unwrap().unwrap();
        assert_eq!(loaded, book);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(LookBook::load_if_exists(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
