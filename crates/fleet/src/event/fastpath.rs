//! Zero-allocation fast path for the canonical wire format (v1 and
//! ctx-stamped v2 lines).
//!
//! [`FleetEvent::to_line`] / [`FleetEvent::to_line_with_meta`] emit
//! exactly one canonical byte shape per event: compact JSON, keys in
//! sorted order (an optional leading `ctx`), no escape sequences in the
//! strings they generate, digits-only `seq`/`v`. This module scans that
//! shape directly — borrowing the vehicle id and the context key from
//! the input line, building no `Value` tree, allocating nothing — and
//! *refuses* everything else. Any deviation (reordered keys, whitespace, an escaped
//! string, an unknown field, a newer version, a semantic error such as
//! negative hours) makes the strict scanner bail, and
//! [`parse_line_hybrid`] falls back to the tolerant `Value`-based
//! [`parse_line_with_seq`].
//!
//! The fast path therefore never makes a *skip* decision of its own:
//! every line it accepts is one the tolerant parser provably accepts with
//! the identical result (the scanner replicates the vendored JSON
//! parser's number classification and the derive-generated
//! deserializers' variant shapes), and every line it cannot prove
//! well-formed is decided by the tolerant parser alone. Skip semantics —
//! [`SkipReason`] counts, unknown-version handling, `seq` extraction —
//! are bit-identical by construction, and the differential proptest at
//! the bottom of this file enforces it over valid, mutated, truncated,
//! and fuzzed lines.

use qrn_core::incident::{IncidentKind, IncidentRecord};
use qrn_core::object::{Involvement, ObjectType};
use qrn_units::{Hours, Meters, Speed};

use super::{
    object_from_variant_name, parse_line_with_meta, FleetEvent, SkipReason, SCHEMA_VERSION,
};

/// A parsed event whose vehicle id borrows from the input line — the
/// zero-allocation counterpart of [`FleetEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FastEvent<'a> {
    /// An odometer report (see [`FleetEvent::Exposure`]).
    Exposure {
        /// Reporting vehicle, borrowed from the line.
        vehicle: &'a str,
        /// Operating hours accumulated since the previous report.
        hours: Hours,
    },
    /// A raw incident observation (see [`FleetEvent::Incident`]).
    Incident {
        /// Reporting vehicle, borrowed from the line.
        vehicle: &'a str,
        /// What happened.
        record: IncidentRecord,
    },
}

impl FastEvent<'_> {
    /// The reporting vehicle's id.
    pub fn vehicle(&self) -> &str {
        match self {
            FastEvent::Exposure { vehicle, .. } | FastEvent::Incident { vehicle, .. } => vehicle,
        }
    }

    /// The owned equivalent. Allocates the vehicle id; used off the hot
    /// path and by the differential tests.
    pub fn to_event(&self) -> FleetEvent {
        match *self {
            FastEvent::Exposure { vehicle, hours } => FleetEvent::Exposure {
                vehicle: vehicle.to_string(),
                hours,
            },
            FastEvent::Incident { vehicle, record } => FleetEvent::Incident {
                vehicle: vehicle.to_string(),
                record,
            },
        }
    }
}

/// Outcome of [`parse_line_hybrid`]: the four-way split the ingest fold
/// dispatches on.
#[derive(Debug)]
pub enum ParsedLine<'a> {
    /// Blank or whitespace-only line (a log separator).
    Blank,
    /// Parsed on the strict fast path; the vehicle id and the optional
    /// ODD-band context key both borrow from the line.
    Fast(FastEvent<'a>, Option<u64>, Option<&'a str>),
    /// Parsed by the tolerant fallback; semantically identical to what
    /// the fast path would have produced had the line been canonical.
    Owned(FleetEvent, Option<u64>, Option<String>),
    /// Skipped, with the tolerant parser's reason.
    Skip(SkipReason),
}

impl ParsedLine<'_> {
    /// The owned `(event, seq)` this outcome denotes, if any — the shape
    /// [`parse_line_with_seq`] returns, used by the differential tests.
    pub fn to_owned_event(&self) -> Result<Option<(FleetEvent, Option<u64>)>, SkipReason> {
        self.to_owned_meta()
            .map(|parsed| parsed.map(|(event, seq, _ctx)| (event, seq)))
    }

    /// The owned `(event, seq, ctx)` this outcome denotes, if any — the
    /// shape [`parse_line_with_meta`] returns, used by the differential
    /// tests and the context-attributing fold.
    pub fn to_owned_meta(&self) -> Result<Option<super::EventMeta>, SkipReason> {
        match self {
            ParsedLine::Blank => Ok(None),
            ParsedLine::Fast(event, seq, ctx) => {
                Ok(Some((event.to_event(), *seq, ctx.map(str::to_string))))
            }
            ParsedLine::Owned(event, seq, ctx) => Ok(Some((event.clone(), *seq, ctx.clone()))),
            ParsedLine::Skip(reason) => Err(*reason),
        }
    }
}

/// Parses one JSONL line: strict fast path first, tolerant
/// [`parse_line_with_meta`] on any anomaly. Semantics are bit-identical
/// to the tolerant parser alone; the only observable difference is which
/// variant ([`ParsedLine::Fast`] vs [`ParsedLine::Owned`]) carries a
/// successful parse.
pub fn parse_line_hybrid(line: &str) -> ParsedLine<'_> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return ParsedLine::Blank;
    }
    if let Some((event, seq, ctx)) = try_parse_strict(trimmed) {
        return ParsedLine::Fast(event, seq, ctx);
    }
    match parse_line_with_meta(trimmed) {
        Ok(None) => ParsedLine::Blank,
        Ok(Some((event, seq, ctx))) => ParsedLine::Owned(event, seq, ctx),
        Err(reason) => ParsedLine::Skip(reason),
    }
}

/// Reusable per-worker scratch for the ingest hot loop. The borrowing
/// parser itself needs no per-line buffers; what does need amortising is
/// the line-span table the sharded splitter builds per segment. One
/// `ScratchParser` per shard worker (or thread) keeps that table's
/// capacity across segments, so steady-state ingest performs no splitter
/// allocations at all.
#[derive(Debug, Default)]
pub struct ScratchParser {
    spans: Vec<(usize, usize)>,
}

impl ScratchParser {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits `text` into `(start, end)` byte spans with exact
    /// [`str::lines`] semantics (the spans are computed *from*
    /// `text.lines()` itself), reusing the internal table.
    pub fn split_lines(&mut self, text: &str) -> &[(usize, usize)] {
        self.spans.clear();
        let base = text.as_ptr() as usize;
        for line in text.lines() {
            let start = line.as_ptr() as usize - base;
            self.spans.push((start, start + line.len()));
        }
        &self.spans
    }

    /// Parses one line via [`parse_line_hybrid`].
    pub fn parse<'t>(&mut self, line: &'t str) -> ParsedLine<'t> {
        parse_line_hybrid(line)
    }
}

/// Attempts the strict canonical-shape parse. `None` means "let the
/// tolerant parser decide" — it is returned for malformed lines *and* for
/// well-formed lines this scanner does not cover (non-canonical key
/// order, escaped strings, extra fields, `v:0`, semantic errors), so a
/// `None` carries no verdict about the line.
pub fn try_parse_strict(line: &str) -> Option<(FastEvent<'_>, Option<u64>, Option<&str>)> {
    let mut scan = Scan::new(line);
    scan.lit("{")?;
    // The optional leading ODD-band context key: `"ctx"` sorts before
    // `"event"`, so a canonical ctx-stamped line leads with it. The key
    // bytes are borrowed, and the grammar check is allocation-free; a
    // ctx that is not a canonical key bails so the tolerant parser can
    // classify it (InvalidValue).
    let ctx = if scan.lit("\"ctx\":").is_some() {
        let key = scan.plain_string()?;
        if !qrn_odd::key::is_canonical_key(key) {
            return None;
        }
        scan.lit(",")?;
        Some(key)
    } else {
        None
    };
    scan.lit("\"event\":\"")?;
    if scan.lit("exposure\",\"hours\":").is_some() {
        let hours = Hours::try_from(scan.number()?).ok()?;
        let (seq, vehicle) = scan.tail()?;
        Some((FastEvent::Exposure { vehicle, hours }, seq, ctx))
    } else if scan.lit("incident\",\"record\":").is_some() {
        let record = scan.record()?;
        let (seq, vehicle) = scan.tail()?;
        Some((FastEvent::Incident { vehicle, record }, seq, ctx))
    } else {
        None
    }
}

/// Byte cursor over one line. Every method consumes input only on full
/// success, so a failed alternative leaves the position untouched.
struct Scan<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(text: &'a str) -> Self {
        Scan {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Consumes `lit` exactly, or leaves the cursor in place.
    fn lit(&mut self, lit: &str) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.bytes.get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    /// Consumes a quoted string containing no escapes and no control
    /// bytes, returning the inner slice. Escaped strings bail to the
    /// tolerant parser — the canonical generator only escapes what needs
    /// escaping, so telemetry vehicle ids never hit this.
    fn plain_string(&mut self) -> Option<&'a str> {
        if *self.bytes.get(self.pos)? != b'"' {
            return None;
        }
        let start = self.pos + 1;
        let mut i = start;
        loop {
            match *self.bytes.get(i)? {
                b'"' => break,
                b'\\' => return None,
                b if b < 0x20 => return None,
                _ => i += 1,
            }
        }
        self.pos = i + 1;
        // `start..i` lies on char boundaries: the delimiters are ASCII
        // and UTF-8 continuation bytes are all >= 0x80, so the scan can
        // only have stopped between characters.
        Some(&self.text[start..i])
    }

    /// Consumes a number span and evaluates it exactly as the vendored
    /// parser's `parse_number` + `Number::as_f64` would: a leading `-`
    /// does not mark a float; any of `. e E + -` inside the span does;
    /// integer spans go through `u64`/`i64` then cast; everything else
    /// (including `u64` overflow fallthrough) through `f64::from_str`.
    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        let negative = self.bytes.get(self.pos) == Some(&b'-');
        if negative {
            self.pos += 1;
        }
        let digits_start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == digits_start {
            self.pos = start;
            return None;
        }
        let text = &self.text[start..self.pos];
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Some(n as f64);
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Some(n as f64);
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Some(x),
            Err(_) => {
                self.pos = start;
                None
            }
        }
    }

    /// Consumes a digits-only span as `u64` — the exact set of JSON
    /// numbers `Number::as_u64` accepts (`PosInt`). A float/exponent
    /// continuation or overflow bails so the tolerant parser can rule
    /// (`InvalidValue` for a mangled `seq`, version rejection for `v`).
    fn digits_u64(&mut self) -> Option<u64> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        if let Some(b'.' | b'e' | b'E' | b'+' | b'-') = self.bytes.get(self.pos) {
            self.pos = start;
            return None;
        }
        match self.text[start..self.pos].parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                self.pos = start;
                None
            }
        }
    }

    /// Consumes the shared line tail after the kind-specific field:
    /// `[,"seq":N],"v":V,"vehicle":"…"}` followed by end of input.
    fn tail(&mut self) -> Option<(Option<u64>, &'a str)> {
        self.lit(",")?;
        let seq = if self.lit("\"seq\":").is_some() {
            let seq = self.digits_u64()?;
            self.lit(",")?;
            Some(seq)
        } else {
            None
        };
        self.lit("\"v\":")?;
        let v = self.digits_u64()?;
        if v == 0 || v > SCHEMA_VERSION {
            // v > SCHEMA_VERSION is a skip (UnsupportedVersion); v == 0
            // is accepted by the tolerant parser but never generated —
            // both are rare enough to delegate rather than duplicate.
            return None;
        }
        self.lit(",\"vehicle\":")?;
        let vehicle = self.plain_string()?;
        self.lit("}")?;
        if self.pos != self.bytes.len() {
            return None;
        }
        Some((seq, vehicle))
    }

    /// Consumes a canonical [`IncidentRecord`] object. Variants are
    /// constructed field-by-field, exactly as the derived deserializer
    /// does — in particular an `Induced` pair is *not* normalised.
    fn record(&mut self) -> Option<IncidentRecord> {
        self.lit("{\"involvement\":{\"")?;
        let involvement = if self.lit("EgoWith\":").is_some() {
            Involvement::EgoWith(self.object_type()?)
        } else if self.lit("Induced\":[").is_some() {
            let a = self.object_type()?;
            self.lit(",")?;
            let b = self.object_type()?;
            self.lit("]")?;
            Involvement::Induced(a, b)
        } else {
            return None;
        };
        self.lit("},\"kind\":{\"")?;
        let kind = if self.lit("Collision\":{\"impact_speed\":").is_some() {
            let impact_speed = Speed::try_from(self.number()?).ok()?;
            self.lit("}")?;
            IncidentKind::Collision { impact_speed }
        } else if self.lit("NearMiss\":{\"distance\":").is_some() {
            let distance = Meters::try_from(self.number()?).ok()?;
            self.lit(",\"relative_speed\":")?;
            let relative_speed = Speed::try_from(self.number()?).ok()?;
            self.lit("}")?;
            IncidentKind::NearMiss {
                distance,
                relative_speed,
            }
        } else {
            return None;
        };
        self.lit("}}")?;
        Some(IncidentRecord { involvement, kind })
    }

    fn object_type(&mut self) -> Option<ObjectType> {
        object_from_variant_name(self.plain_string()?)
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse_line;
    use super::*;
    use proptest::prelude::*;

    /// Asserts fast ≡ slow on one line: same event, same seq, same ctx,
    /// same `SkipReason` — the whole observable surface.
    fn assert_differential(line: &str) {
        let hybrid = parse_line_hybrid(line).to_owned_meta();
        let slow = parse_line_with_meta(line);
        assert_eq!(hybrid, slow, "line: {line:?}");
    }

    fn canonical_exposure(vehicle: &str, hours: f64, seq: Option<u64>) -> String {
        let event = FleetEvent::Exposure {
            vehicle: vehicle.to_string(),
            hours: Hours::new(hours).unwrap(),
        };
        event.render_line(seq)
    }

    #[test]
    fn canonical_lines_take_the_fast_path() {
        let line = canonical_exposure("V0001", 8.0, Some(7));
        match parse_line_hybrid(&line) {
            ParsedLine::Fast(FastEvent::Exposure { vehicle, hours }, Some(7), None) => {
                assert_eq!(vehicle, "V0001");
                assert_eq!(hours, Hours::new(8.0).unwrap());
            }
            other => panic!("expected fast exposure, got {other:?}"),
        }
        let incident = FleetEvent::Incident {
            vehicle: "V0002".to_string(),
            record: IncidentRecord {
                involvement: Involvement::Induced(ObjectType::Vru, ObjectType::Car),
                kind: IncidentKind::NearMiss {
                    distance: Meters::new(0.4).unwrap(),
                    relative_speed: Speed::from_kmh(22.0).unwrap(),
                },
            },
        };
        let line = incident.to_line();
        match parse_line_hybrid(&line) {
            ParsedLine::Fast(event, None, None) => {
                // The un-normalised Induced order survives, exactly as it
                // does through the derived deserializer.
                assert_eq!(event.to_event(), incident);
            }
            other => panic!("expected fast incident, got {other:?}"),
        }
    }

    #[test]
    fn ctx_stamped_lines_take_the_fast_path_and_borrow_the_key() {
        let event = FleetEvent::Exposure {
            vehicle: "V0007".to_string(),
            hours: Hours::new(0.25).unwrap(),
        };
        let line = event.to_line_with_meta(Some(9), Some("lighting=dusk,weather=fog,zone=school"));
        match parse_line_hybrid(&line) {
            ParsedLine::Fast(fast, Some(9), Some(ctx)) => {
                assert_eq!(fast.to_event(), event);
                assert_eq!(ctx, "lighting=dusk,weather=fog,zone=school");
                // Borrowed, not copied: the key points into the line.
                let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
                assert!(line_range.contains(&(ctx.as_ptr() as usize)));
            }
            other => panic!("expected fast ctx exposure, got {other:?}"),
        }
        // A non-canonical ctx bails to the tolerant parser, which skips.
        let mangled = line.replace("lighting=dusk", "lighting=");
        assert!(try_parse_strict(&mangled).is_none());
        assert_differential(&mangled);
    }

    #[test]
    fn non_canonical_lines_fall_back_but_agree() {
        for line in [
            // Valid but non-canonical: old key order, whitespace, escapes.
            "{\"v\":1,\"event\":\"exposure\",\"vehicle\":\"V1\",\"hours\":8.0}",
            "{ \"event\":\"exposure\",\"hours\":8.0,\"v\":1,\"vehicle\":\"V1\" }",
            "{\"event\":\"exposure\",\"hours\":8.0,\"v\":1,\"vehicle\":\"a\\\"b\"}",
            "{\"event\":\"exposure\",\"hours\":8,\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":8.0,\"v\":1,\"vehicle\":\"V1\",\"x\":0}",
            // Skips of every flavour.
            "{broken",
            "[1,2]",
            "{\"event\":\"exposure\",\"hours\":8.0,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":8.0,\"v\":99,\"vehicle\":\"V1\"}",
            "{\"event\":\"teleport\",\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":-4.0,\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":8.0,\"seq\":1.5,\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":8.0,\"seq\":-3,\"v\":1,\"vehicle\":\"V1\"}",
            "{\"event\":\"exposure\",\"hours\":8.0,\"seq\":18446744073709551616,\"v\":1,\"vehicle\":\"V1\"}",
            "",
            "   ",
        ] {
            assert_differential(line);
        }
    }

    #[test]
    fn semantic_failures_are_decided_by_the_tolerant_parser() {
        // Negative hours render as a canonical-looking line the strict
        // scanner parses structurally but rejects semantically; the
        // fallback must classify it (InvalidValue), not the fast path.
        let line = "{\"event\":\"exposure\",\"hours\":-1.0,\"v\":1,\"vehicle\":\"V1\"}";
        assert!(try_parse_strict(line).is_none());
        assert_eq!(parse_line(line), Err(SkipReason::InvalidValue));
        assert_differential(line);
    }

    #[test]
    fn split_lines_matches_str_lines_semantics() {
        let mut scratch = ScratchParser::new();
        for text in [
            "",
            "a",
            "a\n",
            "a\nb",
            "a\r\nb\r\n",
            "\n\n",
            "one\n\r\ntwo\rthree\n",
        ] {
            let spans = scratch.split_lines(text);
            let via_spans: Vec<&str> = spans.iter().map(|&(a, b)| &text[a..b]).collect();
            let direct: Vec<&str> = text.lines().collect();
            assert_eq!(via_spans, direct, "text: {text:?}");
        }
    }

    fn arb_vehicle() -> impl Strategy<Value = String> {
        let charset: Vec<char> = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_-"
            .chars()
            .collect();
        proptest::collection::vec(proptest::sample::select(charset), 1..13)
            .prop_map(|chars| chars.into_iter().collect())
    }

    fn arb_object() -> impl Strategy<Value = ObjectType> {
        proptest::sample::select(ObjectType::ALL.to_vec())
    }

    /// Canonical ODD-band context keys over three-plus dimensions, as the
    /// banded telemetry generator stamps them.
    fn arb_ctx() -> impl Strategy<Value = Option<&'static str>> {
        prop_oneof![
            Just(None),
            proptest::sample::select(vec![
                "zone=school",
                "weather=fog,zone=urban",
                "lighting=dusk,weather=rain,zone=highway",
                "lighting=day,time_of_day=rush,weather=clear,zone=arterial",
                "speed_limit_kmh=50.0,zone=urban",
            ])
            .prop_map(Some),
        ]
    }

    /// A generator of canonical event lines covering both kinds, all
    /// involvement shapes, and optional seq and ctx stamping.
    fn arb_canonical_line() -> impl Strategy<Value = String> {
        let involvement = prop_oneof![
            arb_object().prop_map(Involvement::EgoWith),
            (arb_object(), arb_object()).prop_map(|(a, b)| Involvement::Induced(a, b)),
        ];
        let kind = prop_oneof![
            (0.0f64..60.0).prop_map(|v| IncidentKind::Collision {
                impact_speed: Speed::from_mps(v).unwrap(),
            }),
            (0.0f64..10.0, 0.0f64..60.0).prop_map(|(d, s)| IncidentKind::NearMiss {
                distance: Meters::new(d).unwrap(),
                relative_speed: Speed::from_mps(s).unwrap(),
            }),
        ];
        let seq = prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some)];
        let event: proptest::Union<FleetEvent> = prop_oneof![
            (arb_vehicle(), 0.0f64..1000.0).prop_map(|(vehicle, hours)| FleetEvent::Exposure {
                vehicle,
                hours: Hours::new(hours).unwrap(),
            }),
            (arb_vehicle(), involvement, kind).prop_map(|(vehicle, involvement, kind)| {
                FleetEvent::Incident {
                    vehicle,
                    record: IncidentRecord { involvement, kind },
                }
            }),
        ];
        (event, seq, arb_ctx()).prop_map(|(event, seq, ctx)| event.to_line_with_meta(seq, ctx))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The differential guarantee on clean input: every canonical
        /// line takes the fast path and produces exactly the tolerant
        /// parser's result.
        #[test]
        fn fast_path_differential_on_canonical_lines(line in arb_canonical_line()) {
            prop_assert!(
                try_parse_strict(&line).is_some(),
                "canonical line must take the fast path: {line:?}"
            );
            let hybrid = parse_line_hybrid(&line).to_owned_meta();
            let slow = parse_line_with_meta(&line);
            prop_assert_eq!(hybrid, slow, "line: {:?}", line);
        }

        /// The differential guarantee on dirty input: random byte
        /// mutations of canonical lines (which may stay valid or become
        /// any flavour of skip) never cause fast/slow disagreement.
        #[test]
        fn fast_path_differential_under_mutation(
            line in arb_canonical_line(),
            index in 0usize..200,
            byte in 0u8..=255,
        ) {
            let mut bytes = line.into_bytes();
            let at = index % bytes.len();
            bytes[at] = byte;
            if let Ok(mutated) = String::from_utf8(bytes) {
                let hybrid = parse_line_hybrid(&mutated).to_owned_meta();
                let slow = parse_line_with_meta(&mutated);
                prop_assert_eq!(hybrid, slow, "mutated: {:?}", mutated);
            }
        }

        /// Truncations: every prefix of a canonical line agrees.
        #[test]
        fn fast_path_differential_under_truncation(
            line in arb_canonical_line(),
            cut in 0usize..200,
        ) {
            let at = cut % (line.len() + 1);
            if line.is_char_boundary(at) {
                let truncated = &line[..at];
                let hybrid = parse_line_hybrid(truncated).to_owned_meta();
                let slow = parse_line_with_meta(truncated);
                prop_assert_eq!(hybrid, slow, "truncated: {:?}", truncated);
            }
        }

        /// Pure fuzz: arbitrary printable junk agrees (it virtually
        /// always skips; the point is that both sides skip identically).
        #[test]
        fn fast_path_differential_on_fuzzed_lines(
            bytes in proptest::collection::vec(0x20u8..0x7f, 0..120),
        ) {
            let line = String::from_utf8(bytes).expect("printable ASCII");
            let hybrid = parse_line_hybrid(&line).to_owned_meta();
            let slow = parse_line_with_meta(&line);
            prop_assert_eq!(hybrid, slow, "fuzzed: {:?}", line);
        }
    }
}
