//! Error type shared across the fleet subsystem.

use std::fmt;

use qrn_core::error::CoreError;
use qrn_stats::StatsError;
use qrn_units::UnitError;

/// Error raised by fleet ingestion, burn-down analysis or telemetry
/// generation.
///
/// Note that *malformed event lines are not errors*: the tolerant parser
/// skips and counts them (see [`crate::event::SkipCounts`]). An error here
/// means the operation as a whole could not produce a result — an invalid
/// configuration, an unwritable file, or a degenerate statistical input.
#[derive(Debug)]
pub enum FleetError {
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A unit-level failure (negative hours, non-finite rate, …).
    Unit(UnitError),
    /// A statistics-level failure (bad SPRT rates, bad confidence, …).
    Stats(StatsError),
    /// A core-model failure (unknown incident type, invalid allocation, …).
    Core(CoreError),
    /// An i/o failure while persisting or loading a checkpoint.
    Io(String),
    /// A checkpoint file exists but does not parse — typically a write
    /// that was interrupted before checkpointing became atomic, or a file
    /// that was never a checkpoint.
    Corrupt(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::Unit(e) => write!(f, "unit error: {e}"),
            FleetError::Stats(e) => write!(f, "statistics error: {e}"),
            FleetError::Core(e) => write!(f, "core error: {e}"),
            FleetError::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            FleetError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::InvalidConfig(_) | FleetError::Io(_) | FleetError::Corrupt(_) => None,
            FleetError::Unit(e) => Some(e),
            FleetError::Stats(e) => Some(e),
            FleetError::Core(e) => Some(e),
        }
    }
}

impl From<UnitError> for FleetError {
    fn from(e: UnitError) -> Self {
        FleetError::Unit(e)
    }
}

impl From<StatsError> for FleetError {
    fn from(e: StatsError) -> Self {
        FleetError::Stats(e)
    }
}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}
