//! Sharded streaming ingestion: JSONL event log → [`FleetState`].
//!
//! # Execution model
//!
//! The log's lines are split into fixed-size *blocks* of consecutive line
//! indices, and worker shards claim blocks from a shared atomic counter —
//! the same work-stealing queue as `qrn-sim`'s campaign engine, with no
//! per-shard striping: a shard that draws cheap (blank, short) lines
//! simply claims more blocks. Each block is parsed, classified and folded
//! into a [`ShardAccumulator`] partial; after the queue drains, partials
//! are merged **in ascending block order**. Because the block partition
//! depends only on the line count (never on the shard count or
//! scheduling), the merged [`FleetState`] — including its floating-point
//! exposure sums — is byte-identical for any number of shards.
//!
//! Memory is O(vehicles + incident types + shards·block): raw events are
//! never materialised for the whole log, so a log of a billion lines
//! streams through a fixed-size working set per shard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use qrn_core::incident::{IncidentRecord, IncidentTypeId};
use qrn_core::verification::MeasuredIncidents;
use qrn_core::IncidentClassification;
use qrn_stats::evidence::EvidenceLedger;
use qrn_units::Hours;

use crate::error::FleetError;
use crate::event::fastpath::{self, FastEvent, ParsedLine, ScratchParser};
use crate::event::{FleetEvent, SkipCounts};

/// Lines per work-queue block. Large enough to amortise the atomic claim
/// over real parsing work, small enough that short logs still spread over
/// several blocks.
const LINES_PER_BLOCK: usize = 512;

/// Per-vehicle running state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// Operating hours this vehicle reported.
    pub exposure_hours: f64,
    /// Raw incident observations this vehicle reported (classified or
    /// not).
    pub observations: u64,
}

/// The live, mergeable state of fleet evidence: everything the burn-down
/// tracker needs, nothing per-event.
///
/// The statistical payload — exposure and classified incident counts — is
/// an [`EvidenceLedger`], the same evidence currency `qrn-sim` campaigns
/// emit. Fleet observations enter as unit-weight (weight-1.0) evidence in
/// the ledger's global row, so a fleet state merges losslessly with
/// weighted design-time campaign ledgers. Around the ledger the state
/// keeps the operational bookkeeping a ledger has no business knowing:
/// per-vehicle tallies, line/event counts and skip tallies of the
/// underlying log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    /// All statistical evidence: exposure and per-type incident counts,
    /// unit-weight, in the ledger's global context.
    evidence: EvidenceLedger,
    /// Per-vehicle state, in vehicle-id order.
    vehicles: BTreeMap<String, VehicleState>,
    /// Lines seen (including blank and skipped).
    lines: u64,
    /// Events successfully parsed.
    events: u64,
    /// Skipped-line tallies, by reason.
    skipped: SkipCounts,
}

impl FleetState {
    /// Total fleet exposure.
    pub fn exposure(&self) -> Hours {
        Hours::new(self.evidence.exposure()).expect("accumulated exposure is non-negative")
    }

    /// The classified count of one incident type (zero when never seen).
    pub fn count(&self, id: &IncidentTypeId) -> u64 {
        self.evidence.count(id.as_str()).observations()
    }

    /// Classified counts per incident type, in id order.
    pub fn counts(&self) -> impl Iterator<Item = (IncidentTypeId, u64)> + '_ {
        self.evidence.kinds().into_iter().map(|kind| {
            (
                IncidentTypeId::from(kind),
                self.evidence.count(kind).observations(),
            )
        })
    }

    /// Raw observations that were not incidents under the classification.
    pub fn unclassified(&self) -> u64 {
        self.evidence.unclassified().observations()
    }

    /// The state's statistical evidence as an [`EvidenceLedger`] — the
    /// mergeable currency shared with `qrn-sim` campaign results. Fleet
    /// evidence lives in the ledger's global context at unit weight.
    pub fn evidence(&self) -> &EvidenceLedger {
        &self.evidence
    }

    /// Merges another state into this one (checkpointed incremental
    /// ingest: the fold over log segments). Associative and commutative in
    /// the integer tallies; exposure sums are floats, so byte-identical
    /// resume guarantees hold for *append-order* merges, which is how
    /// segment ingestion uses it.
    pub fn merge(&mut self, later: &FleetState) {
        self.evidence.merge(&later.evidence);
        for (vehicle, v) in &later.vehicles {
            let entry = self.vehicle_entry(vehicle);
            entry.exposure_hours += v.exposure_hours;
            entry.observations += v.observations;
        }
        self.lines += later.lines;
        self.events += later.events;
        self.skipped.merge(&later.skipped);
    }

    /// Looks up a vehicle's state without cloning the id, interning (and
    /// allocating) the key only on first sight of a new vehicle — the hot
    /// path for a known vehicle performs zero allocations.
    fn vehicle_entry(&mut self, vehicle: &str) -> &mut VehicleState {
        if !self.vehicles.contains_key(vehicle) {
            self.vehicles
                .insert(vehicle.to_string(), VehicleState::default());
        }
        self.vehicles
            .get_mut(vehicle)
            .expect("vehicle was just ensured")
    }

    /// Folds one exposure report, preserving the exact arithmetic of the
    /// sequential reference (`0.0 + h` on first sight). Context-stamped
    /// reports are double-entry: the global row keeps the fleet total
    /// (so ctx-less consumers see unchanged sums) and the named row
    /// attributes the same hours to their ODD band.
    fn fold_exposure(&mut self, vehicle: &str, hours: Hours, ctx: Option<&str>) {
        self.evidence.add_exposure(None, hours.value());
        if let Some(ctx) = ctx {
            self.evidence.add_exposure(Some(ctx), hours.value());
        }
        self.vehicle_entry(vehicle).exposure_hours += hours.value();
    }

    /// Folds one incident observation, classifying against
    /// `classification`. Like exposure, a context-stamped incident counts
    /// in the global row and in its band's refinement row.
    fn fold_incident(
        &mut self,
        vehicle: &str,
        record: &IncidentRecord,
        classification: &IncidentClassification,
        ctx: Option<&str>,
    ) {
        self.vehicle_entry(vehicle).observations += 1;
        match classification.classify(record) {
            Some(leaf) => {
                self.evidence.add_incident(None, leaf.id().as_str(), 1.0);
                if let Some(ctx) = ctx {
                    self.evidence
                        .add_incident(Some(ctx), leaf.id().as_str(), 1.0);
                }
            }
            None => {
                self.evidence.add_unclassified(None, 1.0);
                if let Some(ctx) = ctx {
                    self.evidence.add_unclassified(Some(ctx), 1.0);
                }
            }
        }
    }

    /// Number of distinct vehicles that reported at least one event.
    pub fn vehicle_count(&self) -> u64 {
        self.vehicles.len() as u64
    }

    /// Per-vehicle state, in vehicle-id order.
    pub fn vehicles(&self) -> impl Iterator<Item = (&str, &VehicleState)> {
        self.vehicles.iter().map(|(id, v)| (id.as_str(), v))
    }

    /// Lines seen, including blank and skipped ones.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Events successfully parsed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Skipped-line tallies.
    pub fn skipped(&self) -> SkipCounts {
        self.skipped
    }

    /// The state's counts and exposure as a [`MeasuredIncidents`], the
    /// integer-count interface of `qrn_core::verification`. Prefer
    /// [`FleetState::evidence`] with
    /// [`verify_evidence`](qrn_core::verification::verify_evidence) when
    /// merging with weighted campaign ledgers.
    pub fn measured(&self) -> MeasuredIncidents {
        let counts: BTreeMap<IncidentTypeId, u64> = self.counts().collect();
        MeasuredIncidents::new(counts, self.exposure())
    }
}

/// Folds a sequence of partial [`FleetState`]s into one, merging in
/// **iteration order** — the exact reduce [`ingest_str`] applies to its
/// per-block partials, exposed so other layers (checkpointed segment
/// ingest, the sharded live server's cross-shard fold) perform the same
/// fold and inherit the same determinism argument.
///
/// Integer tallies merge associatively and commutatively without
/// qualification. The floating-point exposure sums are exact — and the
/// fold therefore independent of grouping *and* order, byte for byte —
/// whenever the summands are dyadic rationals of bounded magnitude, which
/// is what the telemetry layer emits (bounded chunks in multiples of
/// 0.25 h). For arbitrary floats the fold is still deterministic for a
/// fixed iteration order, which is why every caller fixes one (block
/// index, segment arrival, shard index).
pub fn fold_states<I>(states: I) -> FleetState
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<FleetState>,
{
    use std::borrow::Borrow;
    let mut merged = FleetState::default();
    for state in states {
        merged.merge(state.borrow());
    }
    merged
}

/// One shard's partial state over a contiguous run of blocks.
#[derive(Debug, Default)]
struct ShardAccumulator {
    state: FleetState,
}

impl ShardAccumulator {
    /// Folds one line, in line order within the block. Canonical lines
    /// take the zero-allocation fast path — the vehicle id borrows from
    /// the input all the way into the interned lookup — and everything
    /// else goes through the tolerant fallback with identical semantics.
    fn absorb_line(&mut self, line: &str, classification: &IncidentClassification) {
        let s = &mut self.state;
        s.lines += 1;
        match fastpath::parse_line_hybrid(line) {
            ParsedLine::Blank => {}
            ParsedLine::Fast(event, _seq, ctx) => {
                s.events += 1;
                match event {
                    FastEvent::Exposure { vehicle, hours } => s.fold_exposure(vehicle, hours, ctx),
                    FastEvent::Incident { vehicle, record } => {
                        s.fold_incident(vehicle, &record, classification, ctx);
                    }
                }
            }
            ParsedLine::Owned(event, _seq, ctx) => {
                s.events += 1;
                let ctx = ctx.as_deref();
                match &event {
                    FleetEvent::Exposure { vehicle, hours } => {
                        s.fold_exposure(vehicle, *hours, ctx);
                    }
                    FleetEvent::Incident { vehicle, record } => {
                        s.fold_incident(vehicle, record, classification, ctx);
                    }
                }
            }
            ParsedLine::Skip(reason) => s.skipped.count(reason),
        }
    }
}

/// Ingests a JSONL event log on `shards` parallel shards, classifying
/// incident records against `classification`.
///
/// The shard count never affects the resulting state — only wall-clock
/// time — and the result is byte-identical (including floating-point
/// exposure sums) for any shard count.
///
/// # Errors
///
/// Returns [`FleetError::InvalidConfig`] for zero shards. Malformed lines
/// are not errors; they are skipped and counted in
/// [`FleetState::skipped`].
pub fn ingest_str(
    text: &str,
    classification: &IncidentClassification,
    shards: usize,
) -> Result<FleetState, FleetError> {
    SPLIT_SCRATCH.with(|scratch| {
        ingest_str_with_scratch(text, classification, shards, &mut scratch.borrow_mut())
    })
}

thread_local! {
    /// Per-thread splitter scratch for [`ingest_str`], reused across
    /// segments so steady-state callers in a loop (the serve workers, the
    /// store writer thread, replay) stop allocating a fresh line table
    /// per segment.
    static SPLIT_SCRATCH: std::cell::RefCell<ScratchParser> =
        std::cell::RefCell::new(ScratchParser::new());
}

/// Like [`ingest_str`] with an explicit, caller-owned [`ScratchParser`] —
/// for callers that manage per-worker scratch reuse themselves instead of
/// relying on the thread-local.
pub fn ingest_str_with_scratch(
    text: &str,
    classification: &IncidentClassification,
    shards: usize,
    scratch: &mut ScratchParser,
) -> Result<FleetState, FleetError> {
    if shards == 0 {
        return Err(FleetError::InvalidConfig(
            "ingestion needs at least one shard".into(),
        ));
    }
    // Line spans are computed from `text.lines()` itself, so the block
    // partition by line index — and with it the float fold grouping — is
    // exactly what collecting `Vec<&str>` produced before.
    let spans = scratch.split_lines(text);
    let blocks = spans.len().div_ceil(LINES_PER_BLOCK).max(1) as u64;

    let queue = AtomicU64::new(0);
    let workers = shards.min(blocks as usize);
    let shard_outputs: Vec<Vec<(u64, ShardAccumulator)>> = std::thread::scope(|scope| {
        let spans: &[(usize, usize)] = spans;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let block = queue.fetch_add(1, Ordering::Relaxed);
                        if block >= blocks {
                            break;
                        }
                        let first = block as usize * LINES_PER_BLOCK;
                        let last = (first + LINES_PER_BLOCK).min(spans.len());
                        let mut acc = ShardAccumulator::default();
                        for &(start, end) in &spans[first..last] {
                            acc.absorb_line(&text[start..end], classification);
                        }
                        local.push((block, acc));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest shard panicked"))
            .collect()
    });

    // The reduce: ascending block order restores the sequential fold
    // regardless of which shard parsed which block.
    let mut partials: Vec<(u64, ShardAccumulator)> = shard_outputs.into_iter().flatten().collect();
    partials.sort_unstable_by_key(|(block, _)| *block);
    Ok(fold_states(
        partials.into_iter().map(|(_, partial)| partial.state),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::to_jsonl;
    use qrn_core::examples::paper_classification;
    use qrn_core::incident::IncidentRecord;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::Speed;

    fn sample_log(vehicles: usize, lines_per_vehicle: usize) -> String {
        let mut events = Vec::new();
        for i in 0..lines_per_vehicle {
            for v in 0..vehicles {
                let vehicle = format!("V{v:04}");
                if i % 7 == 3 {
                    events.push(FleetEvent::Incident {
                        vehicle,
                        record: IncidentRecord::collision(
                            Involvement::ego_with(ObjectType::Vru),
                            Speed::from_kmh(5.0 + (i % 60) as f64).unwrap(),
                        ),
                    });
                } else {
                    events.push(FleetEvent::Exposure {
                        vehicle,
                        hours: Hours::new(0.25 + (i % 5) as f64).unwrap(),
                    });
                }
            }
        }
        to_jsonl(&events)
    }

    #[test]
    fn ingest_matches_sequential_reference() {
        let classification = paper_classification().unwrap();
        let log = sample_log(5, 400); // 2000 lines: several blocks
        let state = ingest_str(&log, &classification, 3).unwrap();

        let (events, skipped) = crate::event::parse_jsonl(&log);
        assert_eq!(skipped.total(), 0);
        let mut exposure = 0.0;
        let mut incidents = 0u64;
        for event in &events {
            match event {
                FleetEvent::Exposure { hours, .. } => exposure += hours.value(),
                FleetEvent::Incident { .. } => incidents += 1,
            }
        }
        assert_eq!(state.events(), events.len() as u64);
        assert_eq!(state.lines(), log.lines().count() as u64);
        assert_eq!(state.vehicle_count(), 5);
        let classified: u64 = state.counts().map(|(_, n)| n).sum();
        assert_eq!(classified + state.unclassified(), incidents);
        // The engine sums per block and merges in block order; that float
        // grouping differs from a flat left-to-right sum, so compare to
        // tolerance here. Bit-identity is guaranteed (and asserted below)
        // across shard counts, where the block grouping is unchanged.
        assert!((state.exposure().value() - exposure).abs() < 1e-9 * exposure);
    }

    #[test]
    fn state_is_bit_identical_for_any_shard_count() {
        let classification = paper_classification().unwrap();
        let log = sample_log(7, 300);
        let reference = ingest_str(&log, &classification, 1).unwrap();
        for shards in [2, 5, 8, 64] {
            let other = ingest_str(&log, &classification, shards).unwrap();
            assert_eq!(reference, other, "shards={shards}");
            assert_eq!(
                reference.exposure().value().to_bits(),
                other.exposure().value().to_bits(),
                "shards={shards}"
            );
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&other).unwrap(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn dirty_lines_do_not_poison_the_rest() {
        let classification = paper_classification().unwrap();
        let mut log = sample_log(2, 50);
        log.push_str("{corrupt\n");
        log.push_str(&sample_log(2, 50));
        let state = ingest_str(&log, &classification, 4).unwrap();
        assert_eq!(state.skipped().bad_json, 1);
        assert_eq!(state.events(), 200);
    }

    /// A ctx-less (schema v1) log must leave no trace of context
    /// attribution: the ledger carries only the global row, so the
    /// serialized state is byte-identical to what the pre-context
    /// ingester produced.
    #[test]
    fn ctx_less_logs_fold_only_the_global_ledger_row() {
        let classification = paper_classification().unwrap();
        let log = sample_log(3, 100);
        let state = ingest_str(&log, &classification, 4).unwrap();
        assert_eq!(state.evidence().named_contexts().count(), 0);
        assert!((state.evidence().exposure() - state.exposure().value()).abs() < 1e-12);
    }

    /// Ctx-stamped lines fold double-entry: the global row keeps the
    /// fleet total while each canonical key accumulates its own
    /// refinement row, and the named rows partition the total exactly
    /// (the MECE invariant — exposures are 0.25 h multiples, so the
    /// dyadic sums are bit-exact).
    #[test]
    fn ctx_stamped_lines_fold_named_ledger_rows() {
        let classification = paper_classification().unwrap();
        let bands = ["weather=clear,zone=urban", "weather=fog,zone=urban"];
        let mut log = String::new();
        let mut per_band = [0.0f64; 2];
        for i in 0..40 {
            let band = i % 2;
            let event = FleetEvent::Exposure {
                vehicle: format!("V{:04}", i % 4),
                hours: Hours::new(0.25 * (1 + i % 3) as f64).unwrap(),
            };
            per_band[band] += 0.25 * (1 + i % 3) as f64;
            log.push_str(&event.to_line_with_meta(None, Some(bands[band])));
            log.push('\n');
        }
        let incident = FleetEvent::Incident {
            vehicle: "V0000".into(),
            record: IncidentRecord::collision(
                Involvement::ego_with(ObjectType::Vru),
                Speed::from_kmh(30.0).unwrap(),
            ),
        };
        log.push_str(&incident.to_line_with_meta(None, Some(bands[1])));
        log.push('\n');

        for shards in [1, 4] {
            let state = ingest_str(&log, &classification, shards).unwrap();
            let named: Vec<&str> = state.evidence().named_contexts().map(|(n, _)| n).collect();
            assert_eq!(named, bands.to_vec(), "shards={shards}");
            for (band, expected) in bands.iter().zip(per_band) {
                assert_eq!(state.evidence().exposure_in(band), expected);
            }
            // double entry: the global row still carries the fleet total,
            // and the named rows sum to it exactly
            let total: f64 = bands.iter().map(|b| state.evidence().exposure_in(b)).sum();
            assert_eq!(state.evidence().exposure(), total);
            assert_eq!(state.exposure().value(), total);
            // the incident lands in the global row and its band row
            let kind = state
                .evidence()
                .kinds()
                .first()
                .copied()
                .unwrap()
                .to_string();
            assert_eq!(state.evidence().count(&kind).total(), 1.0);
            assert_eq!(state.evidence().count_in(bands[1], &kind).total(), 1.0);
            assert_eq!(state.evidence().count_in(bands[0], &kind).total(), 0.0);
        }
    }

    #[test]
    fn zero_shards_is_an_error() {
        let classification = paper_classification().unwrap();
        assert!(ingest_str("", &classification, 0).is_err());
    }

    #[test]
    fn empty_log_ingests_to_empty_state() {
        let classification = paper_classification().unwrap();
        let state = ingest_str("", &classification, 8).unwrap();
        assert_eq!(state.lines(), 0);
        assert_eq!(state.events(), 0);
        assert_eq!(state.exposure(), Hours::ZERO);
        assert_eq!(state.vehicle_count(), 0);
    }

    #[test]
    fn merged_segments_equal_one_shot_ingest() {
        let classification = paper_classification().unwrap();
        let log = sample_log(4, 200);
        let whole = ingest_str(&log, &classification, 3).unwrap();

        let lines: Vec<&str> = log.lines().collect();
        let cut = lines.len() / 3;
        let (first, rest) = (lines[..cut].join("\n"), lines[cut..].join("\n"));
        let mut merged = ingest_str(&first, &classification, 2).unwrap();
        merged.merge(&ingest_str(&rest, &classification, 5).unwrap());

        assert_eq!(merged.events(), whole.events());
        assert_eq!(merged.vehicle_count(), whole.vehicle_count());
        for (id, n) in whole.counts() {
            assert_eq!(merged.count(&id), n, "{id}");
        }
        // Exposure grouping differs (blocks are per segment), so compare
        // to tolerance here; byte-identity under segmenting is proven with
        // grouping-insensitive (dyadic) hours below.
        let expected = whole.exposure().value();
        assert!((merged.exposure().value() - expected).abs() < 1e-9 * expected);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Checkpointed incremental ingest must be lossless: splitting a
        /// log into segments, ingesting each and merging in order yields
        /// the same state — byte-identically — as ingesting the whole log
        /// at once. Hours are dyadic (multiples of 0.25) so every float
        /// sum is exact and the block re-grouping cannot round
        /// differently.
        #[test]
        fn segmented_ingest_is_byte_identical(
            quarter_hours in proptest::collection::vec(1u32..200, 1..600),
            incident_stride in 2usize..9,
            cut_permille in 0usize..=1000,
            shards_a in 1usize..6,
            shards_b in 1usize..6,
        ) {
            let classification = paper_classification().unwrap();
            let mut events = Vec::new();
            for (i, q) in quarter_hours.iter().enumerate() {
                let vehicle = format!("V{:03}", i % 5);
                if i % incident_stride == 0 {
                    events.push(FleetEvent::Incident {
                        vehicle,
                        record: IncidentRecord::collision(
                            Involvement::ego_with(ObjectType::Vru),
                            Speed::from_kmh(5.0 + (i % 50) as f64).unwrap(),
                        ),
                    });
                } else {
                    events.push(FleetEvent::Exposure {
                        vehicle,
                        hours: Hours::new(*q as f64 * 0.25).unwrap(),
                    });
                }
            }
            let log = to_jsonl(&events);
            let whole = ingest_str(&log, &classification, shards_a).unwrap();

            let lines: Vec<&str> = log.lines().collect();
            let cut = lines.len() * cut_permille / 1000;
            let first = lines[..cut].join("\n");
            let rest = lines[cut..].join("\n");
            let mut merged = ingest_str(&first, &classification, shards_b).unwrap();
            merged.merge(&ingest_str(&rest, &classification, shards_a).unwrap());

            prop_assert_eq!(&merged, &whole);
            prop_assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(&whole).unwrap()
            );
        }
    }

    #[test]
    fn fold_states_equals_pairwise_merge_and_accepts_refs_and_owned() {
        let classification = paper_classification().unwrap();
        let log = sample_log(3, 120);
        let lines: Vec<&str> = log.lines().collect();
        let thirds: Vec<FleetState> = lines
            .chunks(lines.len() / 3 + 1)
            .map(|chunk| ingest_str(&chunk.join("\n"), &classification, 2).unwrap())
            .collect();

        let mut reference = FleetState::default();
        for part in &thirds {
            reference.merge(part);
        }
        // By reference and by value, the fold is the same left-to-right
        // merge.
        assert_eq!(fold_states(thirds.iter()), reference);
        assert_eq!(fold_states(thirds), reference);
        // The empty fold is the identity state.
        assert_eq!(
            fold_states(std::iter::empty::<FleetState>()),
            FleetState::default()
        );
    }

    #[test]
    fn explicit_scratch_reuse_is_byte_identical_across_segments() {
        let classification = paper_classification().unwrap();
        let mut scratch = crate::event::fastpath::ScratchParser::new();
        let logs = [sample_log(3, 90), sample_log(5, 40), String::new()];
        for log in &logs {
            let reused = ingest_str_with_scratch(log, &classification, 3, &mut scratch).unwrap();
            let fresh = ingest_str(log, &classification, 3).unwrap();
            assert_eq!(reused, fresh);
            assert_eq!(
                serde_json::to_string(&reused).unwrap(),
                serde_json::to_string(&fresh).unwrap()
            );
        }
    }

    #[test]
    fn measured_bridges_to_core_verification() {
        let classification = paper_classification().unwrap();
        let log = sample_log(3, 100);
        let state = ingest_str(&log, &classification, 2).unwrap();
        let measured = state.measured();
        assert_eq!(measured.exposure(), state.exposure());
        assert_eq!(
            measured.total(),
            state.counts().map(|(_, n)| n).sum::<u64>()
        );
    }
}
