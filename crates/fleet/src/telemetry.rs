//! Synthetic fleet telemetry: `qrn-sim` campaigns rendered as event logs.
//!
//! Real fleet evidence arrives as an append-only stream of per-vehicle
//! exposure and incident observations. Before any real fleet exists, the
//! monitoring pipeline still has to be rehearsed end-to-end — parser,
//! sharded ingest, burn-down, alerting. This module produces that stream
//! synthetically: a [`qrn_sim::monte_carlo::Campaign`] simulates the
//! driving, and the resulting raw [`IncidentRecord`]s are attributed to a
//! fictitious fleet of vehicles whose exposure is reported in bounded
//! shift-sized chunks, exactly as odometer uploads would be.
//!
//! Generation is deterministic: the same configuration always yields the
//! same event list, byte-for-byte once serialised with
//! [`crate::event::to_jsonl`].

use qrn_core::incident::IncidentRecord;
use qrn_odd::ContextKey;
use qrn_sim::monte_carlo::Campaign;
use qrn_sim::policy::{CautiousPolicy, ReactivePolicy};
use qrn_sim::scenario::{
    banded_scenario, highway_scenario, mixed_scenario, urban_scenario, WorldConfig,
};
use qrn_units::Hours;

use crate::error::FleetError;
use crate::event::FleetEvent;

/// Maximum exposure a single telemetry upload reports, hours. Real
/// vehicles upload after each shift, not once per lifetime; chunking also
/// exercises the ingest engine's per-vehicle accumulation.
pub const MAX_CHUNK_HOURS: f64 = 10.0;

/// Exposure quantum of the banded generator, hours. Band quotas are
/// rounded down to multiples of this, so per-band sums of generated
/// dyadic chunks stay bit-exact under any summation order — the property
/// the `--check-mece` guard relies on.
pub const BAND_QUANTUM_HOURS: f64 = 0.25;

/// Simulated driving environment of the synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Dense urban driving (VRU-heavy).
    Urban,
    /// Highway driving (high speed, no VRUs).
    Highway,
    /// Mixed urban/highway operation.
    Mixed,
    /// ODD bands over zone × weather × lighting × time-of-day, with the
    /// canonical band key stamped onto every generated line (schema v2).
    Banded,
}

impl Scenario {
    /// Parses a scenario name as used by the CLI
    /// (`urban|highway|mixed|banded`).
    pub fn from_name(name: &str) -> Option<Scenario> {
        match name {
            "urban" => Some(Scenario::Urban),
            "highway" => Some(Scenario::Highway),
            "mixed" => Some(Scenario::Mixed),
            "banded" => Some(Scenario::Banded),
            _ => None,
        }
    }

    /// True when generated lines carry a canonical ODD-band context key.
    pub fn is_banded(self) -> bool {
        self == Scenario::Banded
    }

    fn world(self) -> Result<WorldConfig, FleetError> {
        let config = match self {
            Scenario::Urban => urban_scenario(),
            Scenario::Highway => highway_scenario(),
            Scenario::Mixed => mixed_scenario(),
            Scenario::Banded => banded_scenario(),
        };
        config.map_err(FleetError::from)
    }
}

/// Tactical policy driving the synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The defensive baseline ([`CautiousPolicy`]).
    Cautious,
    /// The assertive comparison policy ([`ReactivePolicy`]).
    Reactive,
}

impl Policy {
    /// Parses a policy name as used by the CLI (`cautious|reactive`).
    pub fn from_name(name: &str) -> Option<Policy> {
        match name {
            "cautious" => Some(Policy::Cautious),
            "reactive" => Some(Policy::Reactive),
            _ => None,
        }
    }
}

/// Deterministic log-corruption plan: strides at which generated JSONL
/// lines are damaged before being emitted.
///
/// Real telemetry is dirty — truncated uploads, newer-firmware schemas,
/// flash corruption — and the ingest engine's tolerance for it
/// (skip-and-count, never abort) needs rehearsing just like the happy
/// path. Each field corrupts every `n`-th line (1-based; `0` disables
/// that fault) in a way that trips exactly one
/// [`SkipReason`](crate::event::SkipReason), so the expected
/// [`SkipCounts`](crate::event::SkipCounts) of a generated log are
/// computable in advance. When several strides hit the same line, the
/// first fault in field order wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Silently omit every `n`-th line from the output entirely. Unlike
    /// the corruption faults below, a dropped line leaves *no trace* the
    /// parser could count — exactly the failure a lossy uplink produces —
    /// so it is only detectable downstream through sequence-number gaps
    /// (see [`TelemetryConfig::stamp_seq`] and the `qrn-store` gap
    /// detector). Dropping takes precedence over every corruption fault.
    pub drop_every: u64,
    /// Truncate every `n`-th line mid-JSON (counted as `bad_json`).
    pub truncate_every: u64,
    /// Stamp every `n`-th line with a far-future schema version (counted
    /// as `unsupported_version`).
    pub future_version_every: u64,
    /// Rewrite every `n`-th line's event tag to an unknown kind (counted
    /// as `unknown_kind`).
    pub unknown_kind_every: u64,
}

impl FaultPlan {
    /// A plan that corrupts nothing (the default).
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` when no fault is enabled.
    pub fn is_clean(&self) -> bool {
        self.drop_every == 0
            && self.truncate_every == 0
            && self.future_version_every == 0
            && self.unknown_kind_every == 0
    }

    fn hits(stride: u64, line_number: u64) -> bool {
        stride != 0 && line_number.is_multiple_of(stride)
    }

    /// Applies the plan to the 1-based `line_number`-th line.
    fn corrupt(&self, line_number: u64, line: &str) -> Option<String> {
        if Self::hits(self.truncate_every, line_number) {
            Some(line[..line.len() / 2].to_string())
        } else if Self::hits(self.future_version_every, line_number) {
            // Ctx-stamped lines declare "v":2; ctx-less lines "v":1. The
            // ctx value's charset excludes quotes and colons, so neither
            // needle can occur inside the context key.
            let damaged = line.replacen("\"v\":1", "\"v\":999", 1);
            Some(if damaged == line {
                line.replacen("\"v\":2", "\"v\":999", 1)
            } else {
                damaged
            })
        } else if Self::hits(self.unknown_kind_every, line_number) {
            Some(
                line.replacen(
                    "\"event\":\"exposure\"",
                    "\"event\":\"telemetry-selftest\"",
                    1,
                )
                .replacen(
                    "\"event\":\"incident\"",
                    "\"event\":\"telemetry-selftest\"",
                    1,
                ),
            )
        } else {
            None
        }
    }
}

/// Builder for a synthetic telemetry stream.
///
/// ```
/// use qrn_fleet::telemetry::TelemetryConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let events = TelemetryConfig::new(3)
///     .hours(qrn_units::Hours::new(50.0)?)
///     .seed(7)
///     .generate()?;
/// assert!(!events.is_empty());
/// // Deterministic: same config, same stream.
/// assert_eq!(events, TelemetryConfig::new(3)
///     .hours(qrn_units::Hours::new(50.0)?)
///     .seed(7)
///     .generate()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    vehicles: usize,
    hours: Hours,
    seed: u64,
    scenario: Scenario,
    policy: Policy,
    workers: usize,
    injected: Vec<(IncidentRecord, u64)>,
    faults: FaultPlan,
    stamp_seq: bool,
}

impl TelemetryConfig {
    /// Creates a generator for a fleet of `vehicles` vehicles with 100 h
    /// of total exposure, seed 0, the urban scenario and the cautious
    /// policy.
    pub fn new(vehicles: usize) -> Self {
        TelemetryConfig {
            vehicles,
            hours: Hours::new(100.0).expect("static value"),
            seed: 0,
            scenario: Scenario::Urban,
            policy: Policy::Cautious,
            workers: 0,
            injected: Vec::new(),
            faults: FaultPlan::default(),
            stamp_seq: false,
        }
    }

    /// Sets the total fleet exposure (split over the vehicles).
    pub fn hours(mut self, hours: Hours) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the simulation master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the driving environment.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the tactical policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the simulation worker-thread count (0 = one per CPU). The
    /// worker count never changes the generated events.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Injects `count` copies of a raw incident record on top of the
    /// simulated stream — the knob for rehearsing alerting: inject enough
    /// severe records and the corresponding budget *must* come out
    /// [`Burned`](crate::burndown::AlertLevel::Burned).
    pub fn inject(mut self, record: IncidentRecord, count: u64) -> Self {
        self.injected.push((record, count));
        self
    }

    /// Sets the log-corruption plan applied by
    /// [`TelemetryConfig::generate_jsonl`]. Faults damage the *serialised
    /// lines*, not the events, so [`TelemetryConfig::generate`] is
    /// unaffected — corruption is a wire-format phenomenon.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Stamps every serialised line with a per-vehicle monotone `seq`
    /// number (starting at 1, incremented per event of that vehicle), via
    /// [`FleetEvent::to_line_with_seq`]. Only
    /// [`TelemetryConfig::generate_jsonl`] is affected — sequence numbers
    /// are a wire-format concern, like faults. Combined with
    /// [`FaultPlan::drop_every`] this produces logs whose silent losses
    /// are provably detectable: every dropped sequenced line is a hole in
    /// some vehicle's sequence.
    pub fn stamp_seq(mut self, stamp: bool) -> Self {
        self.stamp_seq = stamp;
        self
    }

    /// Generates the telemetry stream.
    ///
    /// Exposure is reported first (per-vehicle chunks of at most
    /// [`MAX_CHUNK_HOURS`]), then incident observations attributed
    /// round-robin to the vehicles, then any injected records.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for a zero-vehicle fleet or a zero-hour
    /// campaign.
    pub fn generate(&self) -> Result<Vec<FleetEvent>, FleetError> {
        Ok(self
            .generate_with_bands()?
            .into_iter()
            .map(|(event, _)| event)
            .collect())
    }

    /// Generates the telemetry stream with each event's ODD-band context
    /// key (`None` everywhere except the banded scenario).
    ///
    /// For the banded scenario, each vehicle's exposure is split over the
    /// world's bands in dwell proportion — quantised down to
    /// [`BAND_QUANTUM_HOURS`] multiples, the first band absorbing the
    /// remainder — and simulated incidents are attributed to bands
    /// round-robin. Injected records stay unstamped (global): they are
    /// alert-rehearsal synthetics, not band observations.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for a zero-vehicle fleet, a zero-hour
    /// campaign, or a band context that does not render to a canonical
    /// context key.
    pub fn generate_with_bands(&self) -> Result<Vec<(FleetEvent, Option<String>)>, FleetError> {
        if self.vehicles == 0 {
            return Err(FleetError::InvalidConfig(
                "a telemetry fleet needs at least one vehicle".to_string(),
            ));
        }
        let world = self.scenario.world()?;
        let band_keys: Option<Vec<String>> = if self.scenario.is_banded() {
            let mut keys = Vec::with_capacity(world.zones.len());
            for z in &world.zones {
                let key = ContextKey::from_context(&z.context).map_err(|e| {
                    FleetError::InvalidConfig(format!("band {} has no canonical key: {e}", z.name))
                })?;
                keys.push(key.into_string());
            }
            Some(keys)
        } else {
            None
        };
        let dwell_weights: Vec<f64> = world.zones.iter().map(|z| z.dwell.value()).collect();
        let records = match self.policy {
            Policy::Cautious => self.run(Campaign::new(world, CautiousPolicy::default()))?,
            Policy::Reactive => self.run(Campaign::new(world, ReactivePolicy::default()))?,
        };

        let mut events = Vec::new();
        let per_vehicle = self.hours.value() / self.vehicles as f64;
        for v in 0..self.vehicles {
            let vehicle = vehicle_name(v);
            match &band_keys {
                None => {
                    let mut remaining = per_vehicle;
                    while remaining > 0.0 {
                        let chunk = remaining.min(MAX_CHUNK_HOURS);
                        events.push((
                            FleetEvent::Exposure {
                                vehicle: vehicle.clone(),
                                hours: Hours::new(chunk)?,
                            },
                            None,
                        ));
                        remaining -= chunk;
                    }
                }
                Some(keys) => {
                    for (band, hours) in band_quotas(per_vehicle, &dwell_weights) {
                        let mut remaining = hours;
                        while remaining > 0.0 {
                            let chunk = remaining.min(MAX_CHUNK_HOURS);
                            events.push((
                                FleetEvent::Exposure {
                                    vehicle: vehicle.clone(),
                                    hours: Hours::new(chunk)?,
                                },
                                Some(keys[band].clone()),
                            ));
                            remaining -= chunk;
                        }
                    }
                }
            }
        }
        for (i, record) in records.into_iter().enumerate() {
            let ctx = band_keys.as_ref().map(|keys| keys[i % keys.len()].clone());
            events.push((
                FleetEvent::Incident {
                    vehicle: vehicle_name(i % self.vehicles),
                    record,
                },
                ctx,
            ));
        }
        let mut injected_index = 0usize;
        for (record, count) in &self.injected {
            for _ in 0..*count {
                events.push((
                    FleetEvent::Incident {
                        vehicle: vehicle_name(injected_index % self.vehicles),
                        record: *record,
                    },
                    None,
                ));
                injected_index += 1;
            }
        }
        Ok(events)
    }

    /// Generates the telemetry stream rendered as a JSONL document, with
    /// optional per-vehicle `seq` stamping and the configured
    /// [`FaultPlan`] applied line by line.
    ///
    /// This is what `qrn fleet generate` writes: with a clean plan and no
    /// seq stamping it is exactly `to_jsonl(generate()?)`; with faults
    /// enabled, the damaged lines exercise the ingest engine's
    /// skip-and-count tolerance while every undamaged line still parses.
    /// [`FaultPlan::drop_every`] omits lines *after* seq stamping, so a
    /// dropped line is a sequence hole, never a renumbering.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for a zero-vehicle fleet or a zero-hour
    /// campaign.
    pub fn generate_jsonl(&self) -> Result<String, FleetError> {
        let events = self.generate_with_bands()?;
        let mut out = String::with_capacity(events.len() * 64);
        // One reusable render buffer instead of a `Vec<String>` of every
        // line: [`FleetEvent::render_line_meta_into`] is byte-identical
        // to `to_line`/`to_line_with_seq`/`to_line_with_meta`, so the
        // emitted document cannot drift while the generator stops
        // allocating per line.
        let mut buf = String::with_capacity(96);
        let mut counters: std::collections::BTreeMap<&str, u64> = Default::default();
        for (i, (event, ctx)) in events.iter().enumerate() {
            let seq = if self.stamp_seq {
                let seq = counters.entry(event.vehicle()).or_insert(0);
                *seq += 1;
                Some(*seq)
            } else {
                None
            };
            // Seq stamping happens before the drop check, so a dropped
            // line is a sequence hole, never a renumbering.
            let n = i as u64 + 1;
            if FaultPlan::hits(self.faults.drop_every, n) {
                continue;
            }
            buf.clear();
            event.render_line_meta_into(&mut buf, seq, ctx.as_deref());
            match self.faults.corrupt(n, &buf) {
                Some(damaged) => out.push_str(&damaged),
                None => out.push_str(&buf),
            }
            out.push('\n');
        }
        Ok(out)
    }

    fn run<P: qrn_sim::policy::TacticalPolicy>(
        &self,
        campaign: Campaign<P>,
    ) -> Result<Vec<IncidentRecord>, FleetError> {
        let mut campaign = campaign.hours(self.hours).seed(self.seed);
        if self.workers > 0 {
            campaign = campaign.workers(self.workers);
        }
        Ok(campaign.run()?.records)
    }
}

fn vehicle_name(index: usize) -> String {
    format!("V{:04}", index + 1)
}

/// Splits `total` hours over bands in `weights` proportion. Every band
/// but the first is rounded *down* to a [`BAND_QUANTUM_HOURS`] multiple;
/// the first band absorbs the remainder, so the quotas always sum to
/// `total` exactly. Bands whose quota rounds to zero are omitted.
fn band_quotas(total: f64, weights: &[f64]) -> Vec<(usize, f64)> {
    let weight_sum: f64 = weights.iter().sum();
    // `weight_sum > 0.0` is false for NaN too: degenerate weights send
    // everything to band 0 rather than dividing by a junk sum.
    let usable = weight_sum > 0.0;
    if !usable || total <= 0.0 {
        return if total > 0.0 {
            vec![(0, total)]
        } else {
            Vec::new()
        };
    }
    let mut quotas = Vec::with_capacity(weights.len());
    let mut tail = 0.0;
    for (band, w) in weights.iter().enumerate().skip(1) {
        let quota = (total * w / weight_sum / BAND_QUANTUM_HOURS).floor() * BAND_QUANTUM_HOURS;
        if quota > 0.0 {
            quotas.push((band, quota));
            tail += quota;
        }
    }
    let first = total - tail;
    if first > 0.0 {
        quotas.insert(0, (0, first));
    }
    quotas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::to_jsonl;
    use crate::ingest::ingest_str;
    use qrn_core::examples::paper_classification;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::Speed;

    fn small() -> TelemetryConfig {
        TelemetryConfig::new(3)
            .hours(Hours::new(60.0).unwrap())
            .seed(11)
            .workers(2)
    }

    #[test]
    fn exposure_is_chunked_and_complete() {
        let events = small().generate().unwrap();
        let mut total = 0.0;
        for e in &events {
            if let FleetEvent::Exposure { hours, .. } = e {
                assert!(hours.value() <= MAX_CHUNK_HOURS);
                total += hours.value();
            }
        }
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = to_jsonl(&small().generate().unwrap());
        let b = to_jsonl(&small().generate().unwrap());
        assert_eq!(a, b);
        // The sim worker count must not leak into the stream.
        let c = to_jsonl(&small().workers(5).generate().unwrap());
        assert_eq!(a, c);
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = to_jsonl(&small().generate().unwrap());
        let b = to_jsonl(&small().seed(12).generate().unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn injection_adds_exactly_count_records() {
        let crash = IncidentRecord::collision(
            Involvement::ego_with(ObjectType::Vru),
            Speed::from_kmh(45.0).unwrap(),
        );
        let base = small().generate().unwrap().len();
        let events = small().inject(crash, 17).generate().unwrap();
        assert_eq!(events.len(), base + 17);
    }

    #[test]
    fn generated_stream_round_trips_through_ingest() {
        let events = small().generate().unwrap();
        let classification = paper_classification().unwrap();
        let state = ingest_str(&to_jsonl(&events), &classification, 3).unwrap();
        assert!((state.exposure().value() - 60.0).abs() < 1e-9);
        assert_eq!(state.vehicle_count(), 3);
        assert_eq!(state.skipped().total(), 0);
    }

    #[test]
    fn clean_fault_plan_is_a_no_op() {
        let config = small();
        assert_eq!(
            config.generate_jsonl().unwrap(),
            to_jsonl(&config.generate().unwrap())
        );
    }

    #[test]
    fn fault_plan_trips_each_skip_reason_at_its_stride() {
        let plan = FaultPlan {
            truncate_every: 11,
            future_version_every: 13,
            unknown_kind_every: 17,
            ..FaultPlan::default()
        };
        let text = small().faults(plan).generate_jsonl().unwrap();
        let lines = text.lines().count() as u64;
        let classification = paper_classification().unwrap();
        let state = ingest_str(&text, &classification, 3).unwrap();
        // First-fault-wins precedence makes the expected tallies exact.
        let mut expected = crate::event::SkipCounts::default();
        for n in 1..=lines {
            if n % 11 == 0 {
                expected.bad_json += 1;
            } else if n % 13 == 0 {
                expected.unsupported_version += 1;
            } else if n % 17 == 0 {
                expected.unknown_kind += 1;
            }
        }
        assert!(expected.total() > 0, "stream too short to exercise faults");
        assert_eq!(state.skipped(), expected);
        assert_eq!(state.events() + expected.total(), lines);
        // The surviving lines still carry usable evidence.
        assert!(state.exposure().value() > 0.0);
    }

    #[test]
    fn faulty_generation_is_deterministic() {
        let plan = FaultPlan {
            truncate_every: 7,
            ..FaultPlan::default()
        };
        let a = small().faults(plan).generate_jsonl().unwrap();
        let b = small().faults(plan).generate_jsonl().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seq_stamping_numbers_each_vehicle_monotonically() {
        let text = small().stamp_seq(true).generate_jsonl().unwrap();
        let mut counters = std::collections::BTreeMap::new();
        for line in text.lines() {
            let (event, seq) = crate::event::parse_line_with_seq(line).unwrap().unwrap();
            let expected = counters.entry(event.vehicle().to_string()).or_insert(0u64);
            *expected += 1;
            assert_eq!(seq, Some(*expected), "{line}");
        }
        assert_eq!(counters.len(), 3);
        // Stamping is purely additive: stripping the seq field recovers
        // the unstamped document's events.
        let unstamped = small().generate_jsonl().unwrap();
        assert_eq!(
            crate::event::parse_jsonl(&text).0,
            crate::event::parse_jsonl(&unstamped).0
        );
    }

    #[test]
    fn drop_stride_omits_lines_without_a_parseable_trace() {
        let clean = small().generate_jsonl().unwrap();
        let total = clean.lines().count() as u64;
        let plan = FaultPlan {
            drop_every: 5,
            ..FaultPlan::default()
        };
        let dropped = small().faults(plan).generate_jsonl().unwrap();
        assert_eq!(dropped.lines().count() as u64, total - total / 5);
        // Every surviving line parses: a drop is silent, not corrupting.
        let (_, skipped) = crate::event::parse_jsonl(&dropped);
        assert_eq!(skipped.total(), 0);
        // Dropping wins over corruption on the same line: line 10 would
        // also be truncated by stride 10, but it is simply gone.
        let both = FaultPlan {
            drop_every: 5,
            truncate_every: 10,
            ..FaultPlan::default()
        };
        let text = small().faults(both).generate_jsonl().unwrap();
        let (_, skipped) = crate::event::parse_jsonl(&text);
        assert_eq!(skipped.bad_json, 0);
    }

    #[test]
    fn dropped_sequenced_lines_leave_detectable_seq_holes() {
        let plan = FaultPlan {
            drop_every: 7,
            ..FaultPlan::default()
        };
        let text = small()
            .stamp_seq(true)
            .faults(plan)
            .generate_jsonl()
            .unwrap();
        // Per-vehicle seqs must now contain at least one hole, and every
        // hole corresponds to a dropped line.
        let mut holes = 0u64;
        let mut cursors: std::collections::BTreeMap<String, u64> = Default::default();
        for line in text.lines() {
            let (event, seq) = crate::event::parse_line_with_seq(line).unwrap().unwrap();
            let seq = seq.unwrap();
            let cursor = cursors.entry(event.vehicle().to_string()).or_insert(0);
            assert!(seq > *cursor, "seq must stay monotone per vehicle");
            holes += seq - *cursor - 1;
            *cursor = seq;
        }
        assert!(holes > 0, "drop stride produced no detectable gaps");
    }

    #[test]
    fn zero_vehicles_is_rejected() {
        assert!(TelemetryConfig::new(0).generate().is_err());
    }

    #[test]
    fn names_parse_back() {
        assert_eq!(Scenario::from_name("urban"), Some(Scenario::Urban));
        assert_eq!(Scenario::from_name("banded"), Some(Scenario::Banded));
        assert_eq!(Scenario::from_name("moon"), None);
        assert_eq!(Policy::from_name("reactive"), Some(Policy::Reactive));
        assert_eq!(Policy::from_name("none"), None);
    }

    fn banded() -> TelemetryConfig {
        small().scenario(Scenario::Banded)
    }

    #[test]
    fn unbanded_scenarios_never_stamp_ctx_and_keep_their_bytes() {
        // The banded refactor must not move a single byte of the
        // existing scenarios' output.
        let text = small().generate_jsonl().unwrap();
        assert!(!text.contains("\"ctx\""));
        assert!(!text.contains("\"v\":2"));
        assert_eq!(text, to_jsonl(&small().generate().unwrap()));
        for (_, ctx) in small().generate_with_bands().unwrap() {
            assert!(ctx.is_none());
        }
    }

    #[test]
    fn banded_lines_carry_canonical_keys_over_three_plus_dimensions() {
        let text = banded().generate_jsonl().unwrap();
        let mut dims = std::collections::BTreeSet::new();
        let mut keys = std::collections::BTreeSet::new();
        let mut stamped = 0u64;
        for line in text.lines() {
            let (_event, _seq, ctx) = crate::event::parse_line_with_meta(line).unwrap().unwrap();
            let ctx = ctx.expect("every banded simulated line is stamped");
            assert!(qrn_odd::key::is_canonical_key(&ctx), "{ctx}");
            for pair in ctx.split(',') {
                dims.insert(pair.split_once('=').unwrap().0.to_string());
            }
            keys.insert(ctx);
            stamped += 1;
        }
        assert!(stamped > 0);
        assert!(keys.len() >= 3, "expected several bands, got {keys:?}");
        for dim in ["zone", "weather", "lighting", "time_of_day"] {
            assert!(dims.contains(dim), "missing dimension {dim}");
        }
    }

    #[test]
    fn banded_generation_is_deterministic_and_conserves_exposure() {
        let a = banded().generate_jsonl().unwrap();
        let b = banded().workers(5).generate_jsonl().unwrap();
        assert_eq!(a, b);
        // Per-band exposures are dyadic multiples of the quantum except
        // in the remainder band, and they sum to the fleet total
        // bit-exactly (the MECE invariant the generator guarantees).
        let classification = paper_classification().unwrap();
        let state = ingest_str(&a, &classification, 4).unwrap();
        assert_eq!(state.skipped().total(), 0);
        let named: f64 = state
            .evidence()
            .named_contexts()
            .map(|(_, c)| c.exposure_hours())
            .sum();
        assert_eq!(named, state.evidence().exposure());
        assert!((state.exposure().value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn band_quotas_sum_exactly_and_respect_weights() {
        let weights = [0.2, 0.1, 0.25, 0.15, 0.35, 0.25];
        let quotas = band_quotas(20.0, &weights);
        let total: f64 = quotas.iter().map(|(_, h)| h).sum();
        assert_eq!(total, 20.0);
        for (band, h) in &quotas {
            if *band != 0 {
                let q = h / BAND_QUANTUM_HOURS;
                assert_eq!(q, q.trunc(), "band {band} quota {h} not dyadic");
            }
        }
        // degenerate inputs collapse to the first band or nothing
        assert_eq!(band_quotas(5.0, &[]), vec![(0, 5.0)]);
        assert_eq!(band_quotas(0.0, &weights), vec![]);
    }

    #[test]
    fn future_version_fault_hits_ctx_stamped_lines_too() {
        let plan = FaultPlan {
            future_version_every: 13,
            ..FaultPlan::default()
        };
        let text = banded().faults(plan).generate_jsonl().unwrap();
        let classification = paper_classification().unwrap();
        let state = ingest_str(&text, &classification, 3).unwrap();
        let lines = text.lines().count() as u64;
        assert_eq!(state.skipped().unsupported_version, lines / 13);
        assert!(state.skipped().unsupported_version > 0);
    }
}
