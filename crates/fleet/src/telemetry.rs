//! Synthetic fleet telemetry: `qrn-sim` campaigns rendered as event logs.
//!
//! Real fleet evidence arrives as an append-only stream of per-vehicle
//! exposure and incident observations. Before any real fleet exists, the
//! monitoring pipeline still has to be rehearsed end-to-end — parser,
//! sharded ingest, burn-down, alerting. This module produces that stream
//! synthetically: a [`qrn_sim::monte_carlo::Campaign`] simulates the
//! driving, and the resulting raw [`IncidentRecord`]s are attributed to a
//! fictitious fleet of vehicles whose exposure is reported in bounded
//! shift-sized chunks, exactly as odometer uploads would be.
//!
//! Generation is deterministic: the same configuration always yields the
//! same event list, byte-for-byte once serialised with
//! [`crate::event::to_jsonl`].

use qrn_core::incident::IncidentRecord;
use qrn_sim::monte_carlo::Campaign;
use qrn_sim::policy::{CautiousPolicy, ReactivePolicy};
use qrn_sim::scenario::{highway_scenario, mixed_scenario, urban_scenario, WorldConfig};
use qrn_units::Hours;

use crate::error::FleetError;
use crate::event::FleetEvent;

/// Maximum exposure a single telemetry upload reports, hours. Real
/// vehicles upload after each shift, not once per lifetime; chunking also
/// exercises the ingest engine's per-vehicle accumulation.
pub const MAX_CHUNK_HOURS: f64 = 10.0;

/// Simulated driving environment of the synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Dense urban driving (VRU-heavy).
    Urban,
    /// Highway driving (high speed, no VRUs).
    Highway,
    /// Mixed urban/highway operation.
    Mixed,
}

impl Scenario {
    /// Parses a scenario name as used by the CLI (`urban|highway|mixed`).
    pub fn from_name(name: &str) -> Option<Scenario> {
        match name {
            "urban" => Some(Scenario::Urban),
            "highway" => Some(Scenario::Highway),
            "mixed" => Some(Scenario::Mixed),
            _ => None,
        }
    }

    fn world(self) -> Result<WorldConfig, FleetError> {
        let config = match self {
            Scenario::Urban => urban_scenario(),
            Scenario::Highway => highway_scenario(),
            Scenario::Mixed => mixed_scenario(),
        };
        config.map_err(FleetError::from)
    }
}

/// Tactical policy driving the synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The defensive baseline ([`CautiousPolicy`]).
    Cautious,
    /// The assertive comparison policy ([`ReactivePolicy`]).
    Reactive,
}

impl Policy {
    /// Parses a policy name as used by the CLI (`cautious|reactive`).
    pub fn from_name(name: &str) -> Option<Policy> {
        match name {
            "cautious" => Some(Policy::Cautious),
            "reactive" => Some(Policy::Reactive),
            _ => None,
        }
    }
}

/// Deterministic log-corruption plan: strides at which generated JSONL
/// lines are damaged before being emitted.
///
/// Real telemetry is dirty — truncated uploads, newer-firmware schemas,
/// flash corruption — and the ingest engine's tolerance for it
/// (skip-and-count, never abort) needs rehearsing just like the happy
/// path. Each field corrupts every `n`-th line (1-based; `0` disables
/// that fault) in a way that trips exactly one
/// [`SkipReason`](crate::event::SkipReason), so the expected
/// [`SkipCounts`](crate::event::SkipCounts) of a generated log are
/// computable in advance. When several strides hit the same line, the
/// first fault in field order wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Silently omit every `n`-th line from the output entirely. Unlike
    /// the corruption faults below, a dropped line leaves *no trace* the
    /// parser could count — exactly the failure a lossy uplink produces —
    /// so it is only detectable downstream through sequence-number gaps
    /// (see [`TelemetryConfig::stamp_seq`] and the `qrn-store` gap
    /// detector). Dropping takes precedence over every corruption fault.
    pub drop_every: u64,
    /// Truncate every `n`-th line mid-JSON (counted as `bad_json`).
    pub truncate_every: u64,
    /// Stamp every `n`-th line with a far-future schema version (counted
    /// as `unsupported_version`).
    pub future_version_every: u64,
    /// Rewrite every `n`-th line's event tag to an unknown kind (counted
    /// as `unknown_kind`).
    pub unknown_kind_every: u64,
}

impl FaultPlan {
    /// A plan that corrupts nothing (the default).
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` when no fault is enabled.
    pub fn is_clean(&self) -> bool {
        self.drop_every == 0
            && self.truncate_every == 0
            && self.future_version_every == 0
            && self.unknown_kind_every == 0
    }

    fn hits(stride: u64, line_number: u64) -> bool {
        stride != 0 && line_number.is_multiple_of(stride)
    }

    /// Applies the plan to the 1-based `line_number`-th line.
    fn corrupt(&self, line_number: u64, line: &str) -> Option<String> {
        if Self::hits(self.truncate_every, line_number) {
            Some(line[..line.len() / 2].to_string())
        } else if Self::hits(self.future_version_every, line_number) {
            Some(line.replacen("\"v\":1", "\"v\":999", 1))
        } else if Self::hits(self.unknown_kind_every, line_number) {
            Some(
                line.replacen(
                    "\"event\":\"exposure\"",
                    "\"event\":\"telemetry-selftest\"",
                    1,
                )
                .replacen(
                    "\"event\":\"incident\"",
                    "\"event\":\"telemetry-selftest\"",
                    1,
                ),
            )
        } else {
            None
        }
    }
}

/// Builder for a synthetic telemetry stream.
///
/// ```
/// use qrn_fleet::telemetry::TelemetryConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let events = TelemetryConfig::new(3)
///     .hours(qrn_units::Hours::new(50.0)?)
///     .seed(7)
///     .generate()?;
/// assert!(!events.is_empty());
/// // Deterministic: same config, same stream.
/// assert_eq!(events, TelemetryConfig::new(3)
///     .hours(qrn_units::Hours::new(50.0)?)
///     .seed(7)
///     .generate()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    vehicles: usize,
    hours: Hours,
    seed: u64,
    scenario: Scenario,
    policy: Policy,
    workers: usize,
    injected: Vec<(IncidentRecord, u64)>,
    faults: FaultPlan,
    stamp_seq: bool,
}

impl TelemetryConfig {
    /// Creates a generator for a fleet of `vehicles` vehicles with 100 h
    /// of total exposure, seed 0, the urban scenario and the cautious
    /// policy.
    pub fn new(vehicles: usize) -> Self {
        TelemetryConfig {
            vehicles,
            hours: Hours::new(100.0).expect("static value"),
            seed: 0,
            scenario: Scenario::Urban,
            policy: Policy::Cautious,
            workers: 0,
            injected: Vec::new(),
            faults: FaultPlan::default(),
            stamp_seq: false,
        }
    }

    /// Sets the total fleet exposure (split over the vehicles).
    pub fn hours(mut self, hours: Hours) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the simulation master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the driving environment.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the tactical policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the simulation worker-thread count (0 = one per CPU). The
    /// worker count never changes the generated events.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Injects `count` copies of a raw incident record on top of the
    /// simulated stream — the knob for rehearsing alerting: inject enough
    /// severe records and the corresponding budget *must* come out
    /// [`Burned`](crate::burndown::AlertLevel::Burned).
    pub fn inject(mut self, record: IncidentRecord, count: u64) -> Self {
        self.injected.push((record, count));
        self
    }

    /// Sets the log-corruption plan applied by
    /// [`TelemetryConfig::generate_jsonl`]. Faults damage the *serialised
    /// lines*, not the events, so [`TelemetryConfig::generate`] is
    /// unaffected — corruption is a wire-format phenomenon.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Stamps every serialised line with a per-vehicle monotone `seq`
    /// number (starting at 1, incremented per event of that vehicle), via
    /// [`FleetEvent::to_line_with_seq`]. Only
    /// [`TelemetryConfig::generate_jsonl`] is affected — sequence numbers
    /// are a wire-format concern, like faults. Combined with
    /// [`FaultPlan::drop_every`] this produces logs whose silent losses
    /// are provably detectable: every dropped sequenced line is a hole in
    /// some vehicle's sequence.
    pub fn stamp_seq(mut self, stamp: bool) -> Self {
        self.stamp_seq = stamp;
        self
    }

    /// Generates the telemetry stream.
    ///
    /// Exposure is reported first (per-vehicle chunks of at most
    /// [`MAX_CHUNK_HOURS`]), then incident observations attributed
    /// round-robin to the vehicles, then any injected records.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for a zero-vehicle fleet or a zero-hour
    /// campaign.
    pub fn generate(&self) -> Result<Vec<FleetEvent>, FleetError> {
        if self.vehicles == 0 {
            return Err(FleetError::InvalidConfig(
                "a telemetry fleet needs at least one vehicle".to_string(),
            ));
        }
        let world = self.scenario.world()?;
        let records = match self.policy {
            Policy::Cautious => self.run(Campaign::new(world, CautiousPolicy::default()))?,
            Policy::Reactive => self.run(Campaign::new(world, ReactivePolicy::default()))?,
        };

        let mut events = Vec::new();
        let per_vehicle = self.hours.value() / self.vehicles as f64;
        for v in 0..self.vehicles {
            let vehicle = vehicle_name(v);
            let mut remaining = per_vehicle;
            while remaining > 0.0 {
                let chunk = remaining.min(MAX_CHUNK_HOURS);
                events.push(FleetEvent::Exposure {
                    vehicle: vehicle.clone(),
                    hours: Hours::new(chunk)?,
                });
                remaining -= chunk;
            }
        }
        for (i, record) in records.into_iter().enumerate() {
            events.push(FleetEvent::Incident {
                vehicle: vehicle_name(i % self.vehicles),
                record,
            });
        }
        let mut injected_index = 0usize;
        for (record, count) in &self.injected {
            for _ in 0..*count {
                events.push(FleetEvent::Incident {
                    vehicle: vehicle_name(injected_index % self.vehicles),
                    record: *record,
                });
                injected_index += 1;
            }
        }
        Ok(events)
    }

    /// Generates the telemetry stream rendered as a JSONL document, with
    /// optional per-vehicle `seq` stamping and the configured
    /// [`FaultPlan`] applied line by line.
    ///
    /// This is what `qrn fleet generate` writes: with a clean plan and no
    /// seq stamping it is exactly `to_jsonl(generate()?)`; with faults
    /// enabled, the damaged lines exercise the ingest engine's
    /// skip-and-count tolerance while every undamaged line still parses.
    /// [`FaultPlan::drop_every`] omits lines *after* seq stamping, so a
    /// dropped line is a sequence hole, never a renumbering.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] for a zero-vehicle fleet or a zero-hour
    /// campaign.
    pub fn generate_jsonl(&self) -> Result<String, FleetError> {
        let events = self.generate()?;
        let mut out = String::with_capacity(events.len() * 64);
        // One reusable render buffer instead of a `Vec<String>` of every
        // line: [`FleetEvent::render_line_into`] is byte-identical to
        // `to_line`/`to_line_with_seq`, so the emitted document cannot
        // drift while the generator stops allocating per line.
        let mut buf = String::with_capacity(96);
        let mut counters: std::collections::BTreeMap<&str, u64> = Default::default();
        for (i, event) in events.iter().enumerate() {
            let seq = if self.stamp_seq {
                let seq = counters.entry(event.vehicle()).or_insert(0);
                *seq += 1;
                Some(*seq)
            } else {
                None
            };
            // Seq stamping happens before the drop check, so a dropped
            // line is a sequence hole, never a renumbering.
            let n = i as u64 + 1;
            if FaultPlan::hits(self.faults.drop_every, n) {
                continue;
            }
            buf.clear();
            event.render_line_into(&mut buf, seq);
            match self.faults.corrupt(n, &buf) {
                Some(damaged) => out.push_str(&damaged),
                None => out.push_str(&buf),
            }
            out.push('\n');
        }
        Ok(out)
    }

    fn run<P: qrn_sim::policy::TacticalPolicy>(
        &self,
        campaign: Campaign<P>,
    ) -> Result<Vec<IncidentRecord>, FleetError> {
        let mut campaign = campaign.hours(self.hours).seed(self.seed);
        if self.workers > 0 {
            campaign = campaign.workers(self.workers);
        }
        Ok(campaign.run()?.records)
    }
}

fn vehicle_name(index: usize) -> String {
    format!("V{:04}", index + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::to_jsonl;
    use crate::ingest::ingest_str;
    use qrn_core::examples::paper_classification;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::Speed;

    fn small() -> TelemetryConfig {
        TelemetryConfig::new(3)
            .hours(Hours::new(60.0).unwrap())
            .seed(11)
            .workers(2)
    }

    #[test]
    fn exposure_is_chunked_and_complete() {
        let events = small().generate().unwrap();
        let mut total = 0.0;
        for e in &events {
            if let FleetEvent::Exposure { hours, .. } = e {
                assert!(hours.value() <= MAX_CHUNK_HOURS);
                total += hours.value();
            }
        }
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = to_jsonl(&small().generate().unwrap());
        let b = to_jsonl(&small().generate().unwrap());
        assert_eq!(a, b);
        // The sim worker count must not leak into the stream.
        let c = to_jsonl(&small().workers(5).generate().unwrap());
        assert_eq!(a, c);
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = to_jsonl(&small().generate().unwrap());
        let b = to_jsonl(&small().seed(12).generate().unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn injection_adds_exactly_count_records() {
        let crash = IncidentRecord::collision(
            Involvement::ego_with(ObjectType::Vru),
            Speed::from_kmh(45.0).unwrap(),
        );
        let base = small().generate().unwrap().len();
        let events = small().inject(crash, 17).generate().unwrap();
        assert_eq!(events.len(), base + 17);
    }

    #[test]
    fn generated_stream_round_trips_through_ingest() {
        let events = small().generate().unwrap();
        let classification = paper_classification().unwrap();
        let state = ingest_str(&to_jsonl(&events), &classification, 3).unwrap();
        assert!((state.exposure().value() - 60.0).abs() < 1e-9);
        assert_eq!(state.vehicle_count(), 3);
        assert_eq!(state.skipped().total(), 0);
    }

    #[test]
    fn clean_fault_plan_is_a_no_op() {
        let config = small();
        assert_eq!(
            config.generate_jsonl().unwrap(),
            to_jsonl(&config.generate().unwrap())
        );
    }

    #[test]
    fn fault_plan_trips_each_skip_reason_at_its_stride() {
        let plan = FaultPlan {
            truncate_every: 11,
            future_version_every: 13,
            unknown_kind_every: 17,
            ..FaultPlan::default()
        };
        let text = small().faults(plan).generate_jsonl().unwrap();
        let lines = text.lines().count() as u64;
        let classification = paper_classification().unwrap();
        let state = ingest_str(&text, &classification, 3).unwrap();
        // First-fault-wins precedence makes the expected tallies exact.
        let mut expected = crate::event::SkipCounts::default();
        for n in 1..=lines {
            if n % 11 == 0 {
                expected.bad_json += 1;
            } else if n % 13 == 0 {
                expected.unsupported_version += 1;
            } else if n % 17 == 0 {
                expected.unknown_kind += 1;
            }
        }
        assert!(expected.total() > 0, "stream too short to exercise faults");
        assert_eq!(state.skipped(), expected);
        assert_eq!(state.events() + expected.total(), lines);
        // The surviving lines still carry usable evidence.
        assert!(state.exposure().value() > 0.0);
    }

    #[test]
    fn faulty_generation_is_deterministic() {
        let plan = FaultPlan {
            truncate_every: 7,
            ..FaultPlan::default()
        };
        let a = small().faults(plan).generate_jsonl().unwrap();
        let b = small().faults(plan).generate_jsonl().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seq_stamping_numbers_each_vehicle_monotonically() {
        let text = small().stamp_seq(true).generate_jsonl().unwrap();
        let mut counters = std::collections::BTreeMap::new();
        for line in text.lines() {
            let (event, seq) = crate::event::parse_line_with_seq(line).unwrap().unwrap();
            let expected = counters.entry(event.vehicle().to_string()).or_insert(0u64);
            *expected += 1;
            assert_eq!(seq, Some(*expected), "{line}");
        }
        assert_eq!(counters.len(), 3);
        // Stamping is purely additive: stripping the seq field recovers
        // the unstamped document's events.
        let unstamped = small().generate_jsonl().unwrap();
        assert_eq!(
            crate::event::parse_jsonl(&text).0,
            crate::event::parse_jsonl(&unstamped).0
        );
    }

    #[test]
    fn drop_stride_omits_lines_without_a_parseable_trace() {
        let clean = small().generate_jsonl().unwrap();
        let total = clean.lines().count() as u64;
        let plan = FaultPlan {
            drop_every: 5,
            ..FaultPlan::default()
        };
        let dropped = small().faults(plan).generate_jsonl().unwrap();
        assert_eq!(dropped.lines().count() as u64, total - total / 5);
        // Every surviving line parses: a drop is silent, not corrupting.
        let (_, skipped) = crate::event::parse_jsonl(&dropped);
        assert_eq!(skipped.total(), 0);
        // Dropping wins over corruption on the same line: line 10 would
        // also be truncated by stride 10, but it is simply gone.
        let both = FaultPlan {
            drop_every: 5,
            truncate_every: 10,
            ..FaultPlan::default()
        };
        let text = small().faults(both).generate_jsonl().unwrap();
        let (_, skipped) = crate::event::parse_jsonl(&text);
        assert_eq!(skipped.bad_json, 0);
    }

    #[test]
    fn dropped_sequenced_lines_leave_detectable_seq_holes() {
        let plan = FaultPlan {
            drop_every: 7,
            ..FaultPlan::default()
        };
        let text = small()
            .stamp_seq(true)
            .faults(plan)
            .generate_jsonl()
            .unwrap();
        // Per-vehicle seqs must now contain at least one hole, and every
        // hole corresponds to a dropped line.
        let mut holes = 0u64;
        let mut cursors: std::collections::BTreeMap<String, u64> = Default::default();
        for line in text.lines() {
            let (event, seq) = crate::event::parse_line_with_seq(line).unwrap().unwrap();
            let seq = seq.unwrap();
            let cursor = cursors.entry(event.vehicle().to_string()).or_insert(0);
            assert!(seq > *cursor, "seq must stay monotone per vehicle");
            holes += seq - *cursor - 1;
            *cursor = seq;
        }
        assert!(holes > 0, "drop stride produced no detectable gaps");
    }

    #[test]
    fn zero_vehicles_is_rejected() {
        assert!(TelemetryConfig::new(0).generate().is_err());
    }

    #[test]
    fn names_parse_back() {
        assert_eq!(Scenario::from_name("urban"), Some(Scenario::Urban));
        assert_eq!(Scenario::from_name("moon"), None);
        assert_eq!(Policy::from_name("reactive"), Some(Policy::Reactive));
        assert_eq!(Policy::from_name("none"), None);
    }
}
