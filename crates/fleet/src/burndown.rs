//! Budget burn-down: live fleet state × (norm, allocation) → alerting.
//!
//! For every incident type `I_k` with budget `f_{I_k}` the tracker runs
//! two complementary statistical instruments over the same evidence:
//!
//! * **Wald's SPRT** ([`qrn_stats::sequential::PoissonSprt`]) of
//!   `H0: rate = fraction·budget` against `H1: rate = budget` — the
//!   *sequential* view, legitimate to consult after every event, which is
//!   exactly what a continuously-monitoring fleet does.
//! * The **exact Poisson upper bound** (Garwood) at the configured
//!   confidence — the *snapshot* view, comparable with the design-time
//!   verification in `qrn_core::verification`.
//!
//! # Alert levels
//!
//! | Level | Meaning | Trigger |
//! |---|---|---|
//! | `Ok` | consuming the budget as planned | neither of the below |
//! | `Watch` | consumption is elevated; investigate | point estimate ≥ `watch_ratio`·budget |
//! | `Burned` | budget statistically exhausted | SPRT accepts H1, or the exact lower bound exceeds the budget |
//!
//! `Burned` is deliberately evidence-based, not point-estimate-based: one
//! unlucky incident in ten fleet-hours does not burn a `1e-6/h` budget —
//! it sets `Watch` until the exposure is large enough for the SPRT or the
//! exact bound to conclude. Consequence-class (`v_j`) rows reuse the
//! conservative share-matrix propagation of `qrn_core::verification`:
//! class upper bounds sum per-type upper bounds, so a class-level `Ok` is
//! trustworthy while a class-level `Burned` (lower bounds above budget) is
//! a strong flag to read the per-goal rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_core::allocation::Allocation;
use qrn_core::consequence::ConsequenceClassId;
use qrn_core::incident::IncidentTypeId;
use qrn_core::norm::QuantitativeRiskNorm;
use qrn_stats::confseq::{BudgetEValue, GammaMixture, PoissonConfSeq};
use qrn_stats::evidence::EvidenceLedger;
use qrn_stats::poisson::{PoissonRate, WeightedCount, WeightedPoissonRate};
use qrn_stats::sequential::{PoissonSprt, SprtDecision};
use qrn_units::{Frequency, Hours};

use crate::error::FleetError;
use crate::event::SkipCounts;
use crate::ingest::FleetState;

/// Version of the [`FleetReport`] artefact schema. Version 2 added the
/// `weighted` goal field, the `zones` rows and the `by_zone` config flag
/// when burn-down moved onto [`EvidenceLedger`] evidence. Version 3 added
/// the per-goal `looks` counter for repeated-SPRT-look accounting.
pub const REPORT_SCHEMA_VERSION: u64 = 3;

/// Schema version stamped on reports produced in *sequential* mode
/// ([`BurnDownConfig::sequential`]): version 4 adds the per-goal
/// `seq_lower` / `seq_upper` / `e_value` columns and switches the alert
/// verdict to the anytime-valid confidence-sequence/e-process test.
/// Non-sequential reports keep [`REPORT_SCHEMA_VERSION`] and their exact
/// legacy bytes.
pub const SEQUENTIAL_REPORT_SCHEMA_VERSION: u64 = 4;

/// Escalation level of one budget row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertLevel {
    /// Budget consumption is unremarkable.
    Ok,
    /// Consumption is elevated relative to the budget; investigate.
    Watch,
    /// The budget is statistically exhausted at the configured error
    /// levels.
    Burned,
}

impl fmt::Display for AlertLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertLevel::Ok => f.write_str("ok"),
            AlertLevel::Watch => f.write_str("WATCH"),
            AlertLevel::Burned => f.write_str("BURNED"),
        }
    }
}

/// Parameters of the burn-down analysis.
///
/// Serialisation is hand-written: the `sequential` flag is emitted only
/// when set, so non-sequential configs serialise to exactly their
/// pre-sequential bytes, and deserialisation defaults a missing
/// `sequential` to `false` so old artefacts load unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnDownConfig {
    /// One-sided confidence for the exact Poisson bounds.
    pub confidence: f64,
    /// SPRT α: probability of accepting H1 when the true rate is the
    /// comfortable H0 fraction of the budget.
    pub alpha: f64,
    /// SPRT β: probability of accepting H0 when the true rate is at the
    /// budget.
    pub beta: f64,
    /// H0 rate as a fraction of the budget (`0 < fraction < 1`): the rate
    /// the safety organisation planned for.
    pub sprt_fraction: f64,
    /// Point-estimate share of budget above which a row escalates to
    /// [`AlertLevel::Watch`].
    pub watch_ratio: f64,
    /// Emit per-context burn-down rows for every named context in the
    /// evidence ledger. Named contexts are canonical ODD-band keys
    /// (`lighting=dusk,weather=fog,zone=school`) for banded logs, or bare
    /// zone names for legacy campaign ledgers — the field keeps its
    /// historical `by_zone` name (and serialised spelling) from the days
    /// when zones were the only contexts.
    pub by_zone: bool,
    /// Anytime-valid sequential mode. When set, every goal row carries a
    /// gamma-mixture confidence sequence (`seq_lower` / `seq_upper`, at
    /// level [`BurnDownConfig::confidence`]) and a budget e-process
    /// (`e_value`), and the `Ok/Watch/Burned` verdict comes from them:
    /// `Burned` iff the e-value reaches `1/alpha` or the sequence's lower
    /// bound clears the budget — tests whose error guarantees survive
    /// unlimited data-dependent looks. The SPRT and Garwood columns are
    /// still computed, as byte-stable descriptive legacy, and `looks`
    /// becomes purely informational.
    pub sequential: bool,
}

impl Serialize for BurnDownConfig {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(String::from("confidence"), self.confidence.to_value());
        map.insert(String::from("alpha"), self.alpha.to_value());
        map.insert(String::from("beta"), self.beta.to_value());
        map.insert(String::from("sprt_fraction"), self.sprt_fraction.to_value());
        map.insert(String::from("watch_ratio"), self.watch_ratio.to_value());
        map.insert(String::from("by_zone"), self.by_zone.to_value());
        if self.sequential {
            map.insert(String::from("sequential"), self.sequential.to_value());
        }
        serde::Value::Object(map)
    }
}

impl Deserialize for BurnDownConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(map) = value else {
            return Err(serde::Error::expected("object", value, "BurnDownConfig"));
        };
        Ok(BurnDownConfig {
            confidence: serde::__private::field(map, "confidence")?,
            alpha: serde::__private::field(map, "alpha")?,
            beta: serde::__private::field(map, "beta")?,
            sprt_fraction: serde::__private::field(map, "sprt_fraction")?,
            watch_ratio: serde::__private::field(map, "watch_ratio")?,
            by_zone: serde::__private::field(map, "by_zone")?,
            // Absent in every pre-sequential artefact: default off.
            sequential: match map.get("sequential") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
        })
    }
}

/// Dimension filter over named evidence contexts: the parsed form of one
/// or more `--where dim=value` clauses. A context key matches when every
/// clause's `dim=value` pair appears among the key's pairs; the empty
/// filter matches everything. Legacy bare-name contexts (no `=`) only
/// match the empty filter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextFilter {
    clauses: Vec<(String, String)>,
}

impl ContextFilter {
    /// The filter matching every context.
    pub fn all() -> Self {
        ContextFilter::default()
    }

    /// Parses `dim=value` clauses (e.g. from repeated `--where` flags).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for a clause without `=` or
    /// with an empty dimension or value.
    pub fn parse<I, S>(clauses: I) -> Result<Self, FleetError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut parsed = Vec::new();
        for clause in clauses {
            let clause = clause.as_ref();
            let (dim, value) = clause.split_once('=').ok_or_else(|| {
                FleetError::InvalidConfig(format!(
                    "context filter clause {clause:?} is not of the form dim=value"
                ))
            })?;
            if dim.is_empty() || value.is_empty() {
                return Err(FleetError::InvalidConfig(format!(
                    "context filter clause {clause:?} has an empty dimension or value"
                )));
            }
            parsed.push((dim.to_string(), value.to_string()));
        }
        Ok(ContextFilter { clauses: parsed })
    }

    /// True when the filter has no clauses (matches everything).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True when the named context satisfies every clause.
    pub fn wants(&self, context: &str) -> bool {
        self.clauses.iter().all(|(dim, value)| {
            context
                .split(',')
                .any(|pair| pair.split_once('=') == Some((dim.as_str(), value.as_str())))
        })
    }
}

impl Default for BurnDownConfig {
    fn default() -> Self {
        BurnDownConfig {
            confidence: 0.95,
            alpha: 0.05,
            beta: 0.05,
            sprt_fraction: 0.1,
            watch_ratio: 0.5,
            by_zone: false,
            sequential: false,
        }
    }
}

impl BurnDownConfig {
    fn validate(&self) -> Result<(), FleetError> {
        for (name, v) in [
            ("confidence", self.confidence),
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("sprt_fraction", self.sprt_fraction),
        ] {
            if !(v.is_finite() && 0.0 < v && v < 1.0) {
                return Err(FleetError::InvalidConfig(format!(
                    "{name} must lie strictly between 0 and 1, got {v}"
                )));
            }
        }
        if !(self.watch_ratio.is_finite() && self.watch_ratio > 0.0) {
            return Err(FleetError::InvalidConfig(format!(
                "watch_ratio must be positive, got {}",
                self.watch_ratio
            )));
        }
        Ok(())
    }
}

/// Burn-down row of one incident-type budget (one safety goal).
///
/// Serialisation is hand-written so the sequential columns are omitted
/// entirely when absent: a non-sequential row serialises to exactly its
/// pre-sequential bytes.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct GoalBurnDown {
    /// The incident type.
    pub incident: IncidentTypeId,
    /// Its frequency budget `f_{I_k}`.
    pub budget: Frequency,
    /// Observed count over the fleet exposure (number of weighted
    /// observations; equal to the raw event count for unit-weight
    /// evidence).
    pub observed: PoissonRate,
    /// The weighted view of the same evidence, present only when the
    /// evidence actually carries non-unit likelihood weights (e.g. merged
    /// multilevel-splitting campaign ledgers). When set, `point`,
    /// `upper_bound` and the SPRT decision are computed from the Kish
    /// effective count `k_eff` over the effective exposure `T_eff`.
    pub weighted: Option<WeightedPoissonRate>,
    /// Point estimate of the rate (count / exposure; zero at zero
    /// exposure).
    pub point: Frequency,
    /// Exact one-sided upper confidence bound on the rate.
    pub upper_bound: Frequency,
    /// `point / budget`: the fraction of the budget the point estimate
    /// consumes.
    pub consumed: f64,
    /// The sequential test's current decision.
    pub sprt: SprtDecision,
    /// How many times this goal's SPRT has been consulted against this
    /// (growing) evidence stream, **including this report**. A one-shot
    /// offline report is its own first look, so [`burn_down`] and
    /// [`burn_down_evidence`] always report `1`; the `qrn-serve` live
    /// server and `fleet report --checkpoint` stamp their persisted
    /// per-goal look counters instead. Wald's SPRT is sequentially valid
    /// — its error guarantees survive continuous monitoring — but the
    /// exact Poisson bounds are snapshot statistics: consulting them
    /// repeatedly at every look inflates their effective error rate,
    /// which is why the counter is carried in the artefact (see DESIGN
    /// §10). In sequential mode the verdict comes from the anytime-valid
    /// columns below and the counter is purely informational.
    pub looks: u64,
    /// The escalation level.
    pub alert: AlertLevel,
    /// Lower endpoint of the anytime-valid confidence sequence for the
    /// rate (sequential mode only; zero at zero exposure).
    pub seq_lower: Option<Frequency>,
    /// Upper endpoint of the anytime-valid confidence sequence
    /// (sequential mode only; zero at zero exposure, where the sequence
    /// is vacuous).
    pub seq_upper: Option<Frequency>,
    /// Running e-value of the budget e-process (sequential mode only).
    /// Starts at 1; `e_value ≥ 1/alpha` at any look is the anytime-valid
    /// `Burned` rejection of "the rate is within budget". Capped at
    /// `f64::MAX` for JSON representability.
    pub e_value: Option<f64>,
}

impl Serialize for GoalBurnDown {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(String::from("incident"), self.incident.to_value());
        map.insert(String::from("budget"), self.budget.to_value());
        map.insert(String::from("observed"), self.observed.to_value());
        // `weighted` keeps its explicit `null` from the derived days —
        // legacy rows must stay byte-identical.
        map.insert(String::from("weighted"), self.weighted.to_value());
        map.insert(String::from("point"), self.point.to_value());
        map.insert(String::from("upper_bound"), self.upper_bound.to_value());
        map.insert(String::from("consumed"), self.consumed.to_value());
        map.insert(String::from("sprt"), self.sprt.to_value());
        map.insert(String::from("looks"), self.looks.to_value());
        map.insert(String::from("alert"), self.alert.to_value());
        if let Some(v) = &self.seq_lower {
            map.insert(String::from("seq_lower"), v.to_value());
        }
        if let Some(v) = &self.seq_upper {
            map.insert(String::from("seq_upper"), v.to_value());
        }
        if let Some(v) = &self.e_value {
            map.insert(String::from("e_value"), v.to_value());
        }
        serde::Value::Object(map)
    }
}

/// Burn-down row of one consequence class of the norm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBurnDown {
    /// The consequence class.
    pub class: ConsequenceClassId,
    /// Its acceptable budget `f_acc(v_j)`.
    pub budget: Frequency,
    /// Point estimate of the class load (share-weighted sum of point
    /// rates).
    pub point_load: Frequency,
    /// Conservative upper bound on the class load (share-weighted sum of
    /// per-type upper bounds).
    pub load_upper_bound: Frequency,
    /// `point_load / budget`.
    pub consumed: f64,
    /// The escalation level.
    pub alert: AlertLevel,
}

/// Burn-down rows of one named evidence context: the context's share of
/// the exposure and its per-goal budget consumption, computed from its
/// refinement row in the [`EvidenceLedger`]. The context name is a
/// canonical ODD-band key for banded fleet logs (any number of
/// dimensions), or a bare zone name for legacy campaign ledgers — the
/// struct and its `zone` field keep their historical names for artefact
/// compatibility.
///
/// Context rows are *refinements*: per-goal alerts here localise where a
/// budget is being spent, while the authoritative global verdict stays
/// with [`FleetReport::goals`] (computed from the exact global row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneBurnDown {
    /// The context name (serialised as `zone` for artefact
    /// compatibility).
    pub zone: String,
    /// Exposure attributed to this zone, hours.
    pub exposure_hours: f64,
    /// Per-safety-goal rows within this zone, in incident-id order.
    pub goals: Vec<GoalBurnDown>,
}

/// The serialisable burn-down artefact: one snapshot of "how fast is the
/// fleet spending its risk budgets".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Version of this report schema (see [`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Analysis parameters.
    pub config: BurnDownConfig,
    /// Total fleet exposure, hours.
    pub exposure_hours: f64,
    /// Distinct vehicles that reported.
    pub vehicles: u64,
    /// Events successfully parsed.
    pub events: u64,
    /// Raw observations that were not incidents under the classification.
    pub unclassified: u64,
    /// Skipped-line tallies of the underlying log.
    pub skipped: SkipCounts,
    /// Per-safety-goal rows, in incident-id order.
    pub goals: Vec<GoalBurnDown>,
    /// Per-consequence-class rows, in severity order.
    pub classes: Vec<ClassBurnDown>,
    /// Per-zone refinement rows (empty unless
    /// [`BurnDownConfig::by_zone`] is set), in zone-name order.
    pub zones: Vec<ZoneBurnDown>,
}

impl FleetReport {
    /// Returns `true` when any goal or class is burned.
    pub fn any_burned(&self) -> bool {
        self.goals.iter().any(|g| g.alert == AlertLevel::Burned)
            || self.classes.iter().any(|c| c.alert == AlertLevel::Burned)
    }

    /// The highest alert level across all rows.
    pub fn worst_alert(&self) -> AlertLevel {
        self.goals
            .iter()
            .map(|g| g.alert)
            .chain(self.classes.iter().map(|c| c.alert))
            .max()
            .unwrap_or(AlertLevel::Ok)
    }

    /// The row of one goal, if present.
    pub fn goal(&self, id: &IncidentTypeId) -> Option<&GoalBurnDown> {
        self.goals.iter().find(|g| &g.incident == id)
    }

    /// The row of one class, if present.
    pub fn class(&self, id: &ConsequenceClassId) -> Option<&ClassBurnDown> {
        self.classes.iter().find(|c| &c.class == id)
    }

    /// Canonical pretty-printed JSON. Deterministic: the same state and
    /// config always produce the same bytes, for any ingest shard count.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports are serialisable")
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet burn-down over {:.1} h from {} vehicles ({} events, {} lines skipped):",
            self.exposure_hours,
            self.vehicles,
            self.events,
            self.skipped.total(),
        )?;
        for g in &self.goals {
            writeln!(
                f,
                "  I_{}: {} events, point {} / budget {} ({:.0}% consumed), sprt {:?} -> {}",
                g.incident,
                g.observed.count,
                g.point,
                g.budget,
                g.consumed * 100.0,
                g.sprt,
                g.alert,
            )?;
        }
        for c in &self.classes {
            writeln!(
                f,
                "  {}: load {} / budget {} ({:.0}% consumed) -> {}",
                c.class,
                c.point_load,
                c.budget,
                c.consumed * 100.0,
                c.alert,
            )?;
        }
        for z in &self.zones {
            let label = if z.zone.contains('=') {
                "context"
            } else {
                "zone"
            };
            writeln!(f, "  {label} {} ({:.1} h):", z.zone, z.exposure_hours)?;
            for g in &z.goals {
                writeln!(
                    f,
                    "    I_{}: {} events, point {} / budget {} ({:.0}% consumed) -> {}",
                    g.incident,
                    g.observed.count,
                    g.point,
                    g.budget,
                    g.consumed * 100.0,
                    g.alert,
                )?;
            }
        }
        Ok(())
    }
}

/// Per-goal rows over one evidence slice (the global row or one zone's
/// refinement row). Returns the rows and the per-goal lower bounds the
/// class propagation needs.
fn goal_rows(
    allocation: &Allocation,
    exposure: Hours,
    count_of: &dyn Fn(&str) -> WeightedCount,
    config: &BurnDownConfig,
) -> Result<(Vec<GoalBurnDown>, Vec<Frequency>), FleetError> {
    let mut goals = Vec::new();
    let mut lower_bounds = Vec::new();
    for (incident, budget) in allocation.budgets() {
        if budget.as_per_hour() <= 0.0 {
            return Err(FleetError::InvalidConfig(format!(
                "incident {incident} has a zero budget; burn-down needs positive budgets"
            )));
        }
        let count = count_of(incident.as_str());
        let observed = PoissonRate::new(count.observations(), exposure);
        // Unit-weight evidence takes the exact integer path — identical
        // numbers to pre-ledger burn-down. Weighted evidence is monitored
        // as its Kish effective count over the effective exposure.
        let weighted = if count.is_unweighted() {
            None
        } else {
            Some(WeightedPoissonRate::new(count, exposure))
        };
        // With zero exposure there is no evidence in either direction: the
        // exact bounds are undefined (reported as zero) and only the SPRT's
        // `Continue` carries meaning.
        let (point, upper_bound, lower_bound) = if exposure.value() > 0.0 {
            match &weighted {
                Some(w) => (
                    w.point_estimate()?,
                    w.upper_bound(config.confidence)?,
                    w.lower_bound(config.confidence)?,
                ),
                None => (
                    observed.point_estimate()?,
                    observed.upper_bound(config.confidence)?,
                    observed.lower_bound(config.confidence)?,
                ),
            }
        } else {
            (Frequency::ZERO, Frequency::ZERO, Frequency::ZERO)
        };
        let sprt_test = PoissonSprt::new(
            budget.scaled(config.sprt_fraction)?,
            budget,
            config.alpha,
            config.beta,
        )?;
        let sprt = match &weighted {
            Some(w) => {
                let (k_eff, t_eff) = w.effective();
                sprt_test.decide_effective(k_eff, t_eff)
            }
            None => sprt_test.decide(observed.count, exposure),
        };
        let consumed = point.ratio(budget).unwrap_or(0.0);
        // Sequential mode: the same effective evidence drives the
        // anytime-valid instruments — a confidence sequence at the
        // configured confidence and the budget e-process at SPRT α — and
        // the verdict moves onto them.
        let (seq_lower, seq_upper, e_value, seq_burned) = if config.sequential {
            let mixture = GammaMixture::default_at(budget)?;
            let confseq = PoissonConfSeq::new(1.0 - config.confidence, mixture)?;
            let e_process = BudgetEValue::new(budget, mixture)?;
            let (k_eff, t_eff) = match &weighted {
                Some(w) => w.effective(),
                None => (observed.count as f64, exposure),
            };
            let log_e = e_process.log_e_value_effective(k_eff, t_eff)?;
            let (seq_lo, seq_hi) = if t_eff.value() > 0.0 {
                let interval = confseq.interval_effective(k_eff, t_eff)?;
                (interval.lower, interval.upper)
            } else {
                // No exposure: the sequence is vacuous, reported as zeros
                // like the exact bounds.
                (Frequency::ZERO, Frequency::ZERO)
            };
            (
                Some(seq_lo),
                Some(seq_hi),
                Some(log_e.exp().min(f64::MAX)),
                log_e >= -config.alpha.ln(),
            )
        } else {
            (None, None, None, false)
        };
        let alert = if config.sequential {
            if seq_burned || seq_lower.is_some_and(|lo| lo > budget) {
                AlertLevel::Burned
            } else if consumed >= config.watch_ratio {
                AlertLevel::Watch
            } else {
                AlertLevel::Ok
            }
        } else if sprt == SprtDecision::AcceptAlternative || lower_bound > budget {
            AlertLevel::Burned
        } else if consumed >= config.watch_ratio {
            AlertLevel::Watch
        } else {
            AlertLevel::Ok
        };
        // Class propagation inherits the verdict's currency: anytime-valid
        // lower bounds in sequential mode, Garwood otherwise.
        lower_bounds.push(match seq_lower {
            Some(lo) => lo,
            None => lower_bound,
        });
        goals.push(GoalBurnDown {
            incident: incident.clone(),
            budget,
            observed,
            weighted,
            point,
            upper_bound,
            consumed,
            sprt,
            looks: 1,
            alert,
            seq_lower,
            seq_upper,
            e_value,
        });
    }
    Ok((goals, lower_bounds))
}

/// Computes the burn-down of every budget directly against an
/// [`EvidenceLedger`] — the evidence-currency entry point. The ledger may
/// be pure fleet evidence ([`FleetState::evidence`]), a design-time
/// campaign ledger (weighted or not), or any merge of the two; weighted
/// counts are monitored via their Kish effective statistics while
/// unit-weight evidence reproduces the exact integer-count analysis.
///
/// Fleet-operational metadata (vehicles, events, skip tallies) is zeroed
/// here; [`burn_down`] fills it from a [`FleetState`].
///
/// # Errors
///
/// Returns [`FleetError`] for an invalid configuration, a zero budget in
/// the allocation (a zero budget cannot parametrise the SPRT), or a share
/// matrix referencing classes outside the norm.
pub fn burn_down_evidence(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    evidence: &EvidenceLedger,
    config: &BurnDownConfig,
) -> Result<FleetReport, FleetError> {
    burn_down_evidence_filtered(norm, allocation, evidence, config, &ContextFilter::all())
}

/// [`burn_down_evidence`] with a [`ContextFilter`] restricting which
/// named contexts get refinement rows (when [`BurnDownConfig::by_zone`]
/// is set). The filter only selects rows — the global goal and class
/// verdicts always cover the whole ledger, so filtering can never hide a
/// burned budget.
///
/// # Errors
///
/// As [`burn_down_evidence`].
pub fn burn_down_evidence_filtered(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    evidence: &EvidenceLedger,
    config: &BurnDownConfig,
    filter: &ContextFilter,
) -> Result<FleetReport, FleetError> {
    config.validate()?;
    for class in allocation.shares().referenced_classes() {
        if norm.class(class).is_none() {
            return Err(FleetError::Core(qrn_core::CoreError::UnknownId {
                kind: "consequence class",
                id: class.as_str().to_string(),
            }));
        }
    }
    let exposure = Hours::new(evidence.exposure())?;
    let (goals, lower_bounds) = goal_rows(allocation, exposure, &|k| evidence.count(k), config)?;
    let classes = norm
        .classes()
        .map(|c| {
            let budget = norm.budget(c.id()).expect("class is in norm");
            let mut point_load = Frequency::ZERO;
            let mut upper = Frequency::ZERO;
            let mut lower = Frequency::ZERO;
            for (g, lo) in goals.iter().zip(&lower_bounds) {
                let share = allocation.shares().share(&g.incident, c.id());
                point_load = point_load + g.point * share;
                upper = upper + g.upper_bound * share;
                lower = lower + *lo * share;
            }
            let consumed = point_load.ratio(budget).unwrap_or(0.0);
            let alert = if lower > budget {
                AlertLevel::Burned
            } else if consumed >= config.watch_ratio {
                AlertLevel::Watch
            } else {
                AlertLevel::Ok
            };
            ClassBurnDown {
                class: c.id().clone(),
                budget,
                point_load,
                load_upper_bound: upper,
                consumed,
                alert,
            }
        })
        .collect();
    let mut zones = Vec::new();
    if config.by_zone {
        for (name, row) in evidence.named_contexts() {
            if !filter.wants(name) {
                continue;
            }
            let zone_exposure = Hours::new(row.exposure_hours())?;
            let (zone_goals, _) = goal_rows(allocation, zone_exposure, &|k| row.count(k), config)?;
            zones.push(ZoneBurnDown {
                zone: name.to_string(),
                exposure_hours: row.exposure_hours(),
                goals: zone_goals,
            });
        }
    }
    Ok(FleetReport {
        schema_version: if config.sequential {
            SEQUENTIAL_REPORT_SCHEMA_VERSION
        } else {
            REPORT_SCHEMA_VERSION
        },
        config: *config,
        exposure_hours: evidence.exposure(),
        vehicles: 0,
        events: 0,
        unclassified: evidence.unclassified().observations(),
        skipped: SkipCounts::default(),
        goals,
        classes,
        zones,
    })
}

/// Computes the burn-down of every incident-type and consequence-class
/// budget against the live fleet state.
///
/// # Errors
///
/// Returns [`FleetError`] for an invalid configuration, a zero budget in
/// the allocation (a zero budget cannot parametrise the SPRT), or a share
/// matrix referencing classes outside the norm.
pub fn burn_down(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    state: &FleetState,
    config: &BurnDownConfig,
) -> Result<FleetReport, FleetError> {
    burn_down_filtered(norm, allocation, state, config, &ContextFilter::all())
}

/// [`burn_down`] with a [`ContextFilter`] restricting the per-context
/// refinement rows.
///
/// # Errors
///
/// As [`burn_down`].
pub fn burn_down_filtered(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    state: &FleetState,
    config: &BurnDownConfig,
    filter: &ContextFilter,
) -> Result<FleetReport, FleetError> {
    let mut report =
        burn_down_evidence_filtered(norm, allocation, state.evidence(), config, filter)?;
    report.vehicles = state.vehicle_count();
    report.events = state.events();
    report.skipped = state.skipped();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{to_jsonl, FleetEvent};
    use crate::ingest::ingest_str;
    use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
    use qrn_core::incident::IncidentRecord;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::{Hours, Speed};

    fn clean_log(hours_total: f64) -> String {
        let events: Vec<FleetEvent> = (0..13)
            .map(|i| FleetEvent::Exposure {
                vehicle: format!("V{i:03}"),
                hours: Hours::new(hours_total / 13.0).unwrap(),
            })
            .collect();
        to_jsonl(&events)
    }

    fn vru_crash_log(hours_total: f64, crashes: usize) -> String {
        let mut events = vec![FleetEvent::Exposure {
            vehicle: "V000".into(),
            hours: Hours::new(hours_total).unwrap(),
        }];
        for i in 0..crashes {
            events.push(FleetEvent::Incident {
                vehicle: format!("V{:03}", i % 7),
                record: IncidentRecord::collision(
                    Involvement::ego_with(ObjectType::Vru),
                    Speed::from_kmh(30.0).unwrap(),
                ),
            });
        }
        to_jsonl(&events)
    }

    fn setup(log: &str) -> FleetReport {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str(log, &classification, 2).unwrap();
        burn_down(&norm, &allocation, &state, &BurnDownConfig::default()).unwrap()
    }

    #[test]
    fn clean_fleet_is_ok_everywhere_eventually() {
        // Long clean exposure: every SPRT accepts H0, nothing consumed.
        // Needs to be astronomically long because zero-event acceptance of
        // the *smallest* budget takes T ≳ ln((1-α)/β) / (0.9·f_{I_k}).
        let report = setup(&clean_log(1.0e12));
        assert!(!report.any_burned());
        assert_eq!(report.worst_alert(), AlertLevel::Ok);
        for g in &report.goals {
            assert_eq!(g.sprt, SprtDecision::AcceptNull, "{}", g.incident);
            assert_eq!(g.observed.count, 0);
            assert_eq!(g.consumed, 0.0);
        }
    }

    #[test]
    fn young_fleet_is_ok_but_undecided() {
        let report = setup(&clean_log(100.0));
        assert!(!report.any_burned());
        for g in &report.goals {
            assert_eq!(g.sprt, SprtDecision::Continue, "{}", g.incident);
        }
    }

    #[test]
    fn over_budget_type_burns_with_accept_alternative() {
        // 40 severe VRU collisions (I3) in 1000 h: astronomically above
        // I3's ~1e-7/h budget.
        let report = setup(&vru_crash_log(1000.0, 40));
        let i3 = report.goal(&"I3".into()).unwrap();
        assert_eq!(i3.alert, AlertLevel::Burned);
        assert_eq!(i3.sprt, SprtDecision::AcceptAlternative);
        assert!(i3.consumed > 1.0);
        assert!(report.any_burned());
        assert_eq!(report.worst_alert(), AlertLevel::Burned);
        // The classes I3 feeds into burn too.
        assert_eq!(
            report.class(&"vS3".into()).unwrap().alert,
            AlertLevel::Burned
        );
    }

    #[test]
    fn zero_exposure_reports_without_panic() {
        let report = setup("");
        assert_eq!(report.exposure_hours, 0.0);
        for g in &report.goals {
            assert_eq!(g.point, Frequency::ZERO);
            assert_eq!(g.consumed, 0.0);
            // No evidence at all: the sequential test must keep observing.
            assert_eq!(g.sprt, SprtDecision::Continue);
            assert_ne!(g.alert, AlertLevel::Burned);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str("", &classification, 1).unwrap();
        for bad in [
            BurnDownConfig {
                confidence: 1.0,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                alpha: 0.0,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                sprt_fraction: 1.5,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                watch_ratio: -1.0,
                ..BurnDownConfig::default()
            },
        ] {
            assert!(burn_down(&norm, &allocation, &state, &bad).is_err());
        }
    }

    #[test]
    fn report_carries_schema_version_3_and_no_zone_rows_by_default() {
        let report = setup(&clean_log(100.0));
        assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
        assert!(report.zones.is_empty());
        assert!(report.goals.iter().all(|g| g.weighted.is_none()));
        // An offline one-shot report is its own first SPRT look.
        assert!(report.goals.iter().all(|g| g.looks == 1));
    }

    #[test]
    fn ledger_burn_down_matches_state_burn_down() {
        // The FleetState path is the evidence path plus operational
        // metadata: rows must be identical.
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str(&vru_crash_log(5000.0, 3), &classification, 2).unwrap();
        let config = BurnDownConfig::default();
        let from_state = burn_down(&norm, &allocation, &state, &config).unwrap();
        let from_ledger =
            burn_down_evidence(&norm, &allocation, state.evidence(), &config).unwrap();
        assert_eq!(from_state.goals, from_ledger.goals);
        assert_eq!(from_state.classes, from_ledger.classes);
        assert_eq!(from_state.exposure_hours, from_ledger.exposure_hours);
        assert_eq!(from_ledger.vehicles, 0);
        assert_eq!(from_state.vehicles, state.vehicle_count());
    }

    /// A weighted campaign-style ledger: 16 observations of weight 0.125
    /// on I3 over a million hours, with an "urban" refinement row.
    fn weighted_ledger() -> EvidenceLedger {
        let mut ledger = EvidenceLedger::new();
        ledger.add_exposure(None, 1.0e6);
        ledger.add_exposure(Some("urban"), 4.0e5);
        for _ in 0..16 {
            ledger.add_incident(None, "I3", 0.125);
            ledger.add_incident(Some("urban"), "I3", 0.125);
        }
        ledger
    }

    #[test]
    fn weighted_evidence_uses_effective_statistics() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let config = BurnDownConfig::default();
        let report = burn_down_evidence(&norm, &allocation, &weighted_ledger(), &config).unwrap();

        let i3 = report.goal(&"I3".into()).unwrap();
        let w = i3
            .weighted
            .as_ref()
            .expect("weighted evidence sets the weighted view");
        assert_eq!(i3.observed.count, 16);
        assert!((w.count.total() - 2.0).abs() < 1e-12);
        // Point estimate is the weighted mass over the exposure, not the
        // observation count.
        let exposure = Hours::new(1.0e6).unwrap();
        let expected_point = w.point_estimate().unwrap();
        assert_eq!(i3.point, expected_point);
        assert!(
            i3.point.as_per_hour()
                < PoissonRate::new(16, exposure)
                    .point_estimate()
                    .unwrap()
                    .as_per_hour()
        );
        // The upper bound comes from k_eff = 2 effective events, so it is
        // far below the integer-16 Garwood bound.
        let integer_upper = PoissonRate::new(16, exposure)
            .upper_bound(config.confidence)
            .unwrap();
        assert!(i3.upper_bound < integer_upper);
        // SPRT runs on (k_eff, T_eff), and must agree with calling the
        // test directly.
        let (k_eff, t_eff) = w.effective();
        let expected_sprt = PoissonSprt::new(
            i3.budget.scaled(config.sprt_fraction).unwrap(),
            i3.budget,
            config.alpha,
            config.beta,
        )
        .unwrap()
        .decide_effective(k_eff, t_eff);
        assert_eq!(i3.sprt, expected_sprt);
        // Unweighted goals in the same report stay on the exact path.
        assert!(report
            .goals
            .iter()
            .filter(|g| g.incident != "I3".into())
            .all(|g| g.weighted.is_none()));
    }

    #[test]
    fn by_zone_reports_refinement_rows() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let config = BurnDownConfig {
            by_zone: true,
            ..BurnDownConfig::default()
        };
        let report = burn_down_evidence(&norm, &allocation, &weighted_ledger(), &config).unwrap();
        assert_eq!(report.zones.len(), 1);
        let zone = &report.zones[0];
        assert_eq!(zone.zone, "urban");
        assert_eq!(zone.exposure_hours, 4.0e5);
        assert_eq!(zone.goals.len(), report.goals.len());
        let i3 = zone
            .goals
            .iter()
            .find(|g| g.incident == "I3".into())
            .unwrap();
        assert_eq!(i3.observed.count, 16);
        assert!(i3.weighted.is_some());
        // Same mass over less exposure: the zone's point estimate exceeds
        // the global one.
        let global_i3 = report.goal(&"I3".into()).unwrap();
        assert!(i3.point > global_i3.point);
        // The zone rows render in the text report.
        let text = report.to_string();
        assert!(text.contains("zone urban"), "{text}");
    }

    #[test]
    fn fleet_and_campaign_ledgers_merge_into_combined_burn_down() {
        // The acceptance scenario: operational fleet evidence (unit
        // weight, global row) merged with a weighted design-time campaign
        // ledger (weighted counts + zone refinement) drives one combined
        // burn-down.
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str(&vru_crash_log(2.0e5, 1), &classification, 2).unwrap();

        let combined = state.evidence().clone().merged(&weighted_ledger());
        let config = BurnDownConfig {
            by_zone: true,
            ..BurnDownConfig::default()
        };
        let report = burn_down_evidence(&norm, &allocation, &combined, &config).unwrap();
        assert!((report.exposure_hours - 1.2e6).abs() < 1e-3);
        let i3 = report.goal(&"I3".into()).unwrap();
        // 1 fleet crash (weight 1) + 16 campaign observations (0.125 each).
        assert_eq!(i3.observed.count, 17);
        let w = i3.weighted.as_ref().expect("merged evidence is weighted");
        assert!((w.count.total() - 3.0).abs() < 1e-12);
        // Zone refinement survives the merge.
        assert_eq!(report.zones.len(), 1);
        assert_eq!(report.zones[0].zone, "urban");
    }

    /// A banded ledger with context-key rows across three dimensions.
    fn banded_ledger() -> EvidenceLedger {
        let mut ledger = EvidenceLedger::new();
        for (key, hours) in [
            ("lighting=day,weather=clear,zone=urban", 50.0),
            ("lighting=day,weather=fog,zone=urban", 20.0),
            ("lighting=night,weather=fog,zone=highway", 30.0),
        ] {
            ledger.add_exposure(None, hours);
            ledger.add_exposure(Some(key), hours);
        }
        ledger.add_incident(None, "I3", 1.0);
        ledger.add_incident(Some("lighting=day,weather=fog,zone=urban"), "I3", 1.0);
        ledger
    }

    #[test]
    fn context_filter_parses_and_matches_key_pairs() {
        let fog = ContextFilter::parse(["weather=fog"]).unwrap();
        assert!(fog.wants("lighting=day,weather=fog,zone=urban"));
        assert!(!fog.wants("lighting=day,weather=clear,zone=urban"));
        // bare legacy names match only the empty filter
        assert!(!fog.wants("urban"));
        assert!(ContextFilter::all().wants("urban"));
        let both = ContextFilter::parse(["weather=fog", "zone=urban"]).unwrap();
        assert!(both.wants("lighting=day,weather=fog,zone=urban"));
        assert!(!both.wants("lighting=night,weather=fog,zone=highway"));
        // a clause value must match the whole token, not a prefix
        let urban = ContextFilter::parse(["zone=urban"]).unwrap();
        assert!(!urban.wants("zone=urbanish"));
        assert!(ContextFilter::parse(["weather"]).is_err());
        assert!(ContextFilter::parse(["=fog"]).is_err());
        assert!(ContextFilter::parse(["weather="]).is_err());
    }

    #[test]
    fn by_context_rows_respect_the_dimension_filter() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let config = BurnDownConfig {
            by_zone: true,
            ..BurnDownConfig::default()
        };
        let ledger = banded_ledger();
        let all = burn_down_evidence(&norm, &allocation, &ledger, &config).unwrap();
        assert_eq!(all.zones.len(), 3);
        let fog = burn_down_evidence_filtered(
            &norm,
            &allocation,
            &ledger,
            &config,
            &ContextFilter::parse(["weather=fog"]).unwrap(),
        )
        .unwrap();
        assert_eq!(fog.zones.len(), 2);
        assert!(fog.zones.iter().all(|z| z.zone.contains("weather=fog")));
        // filtering selects rows; it never changes the global verdict
        assert_eq!(fog.goals, all.goals);
        assert_eq!(fog.classes, all.classes);
        assert_eq!(fog.exposure_hours, all.exposure_hours);
        // filtered rows are the matching subset of the unfiltered rows
        for z in &fog.zones {
            assert!(all.zones.contains(z));
        }
        // context-key rows render with the "context" label
        let text = fog.to_string();
        assert!(text.contains("context lighting=day,weather=fog,zone=urban"));
    }

    #[test]
    fn legacy_report_bytes_carry_no_sequential_keys() {
        // The flag off is the pre-sequential world: canonical JSON must
        // not even mention the new columns, so existing artefacts stay
        // byte-identical.
        let report = setup(&vru_crash_log(5000.0, 3));
        assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
        let json = report.to_canonical_json();
        for key in ["seq_lower", "seq_upper", "e_value", "sequential"] {
            assert!(!json.contains(key), "legacy bytes grew a {key:?} key");
        }
        // The legacy `weighted: null` placeholder is still emitted.
        assert!(json.contains("\"weighted\": null"), "{json}");
    }

    fn sequential_report(log: &str) -> FleetReport {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str(log, &classification, 2).unwrap();
        let config = BurnDownConfig {
            sequential: true,
            ..BurnDownConfig::default()
        };
        burn_down(&norm, &allocation, &state, &config).unwrap()
    }

    #[test]
    fn sequential_mode_stamps_schema_4_and_fills_the_columns() {
        let report = sequential_report(&vru_crash_log(5000.0, 3));
        assert_eq!(report.schema_version, SEQUENTIAL_REPORT_SCHEMA_VERSION);
        for g in &report.goals {
            let lo = g.seq_lower.expect("sequential rows carry seq_lower");
            let hi = g.seq_upper.expect("sequential rows carry seq_upper");
            let e = g.e_value.expect("sequential rows carry e_value");
            assert!(lo <= hi, "{}", g.incident);
            assert!(e.is_finite() && e >= 0.0, "{}", g.incident);
            // Anytime validity costs width: the sequence's upper endpoint
            // is never tighter than Garwood's at the same evidence.
            assert!(hi >= g.upper_bound, "{}", g.incident);
        }
        let json = report.to_canonical_json();
        assert!(json.contains("\"seq_upper\""));
        assert!(json.contains("\"sequential\": true"));
    }

    #[test]
    fn sequential_verdict_burns_on_overwhelming_evidence_only() {
        // 40 I3 events in 1000 h, ~5 orders of magnitude over budget:
        // the e-process must reject.
        let burned = sequential_report(&vru_crash_log(1000.0, 40));
        let i3 = burned.goal(&"I3".into()).unwrap();
        assert_eq!(i3.alert, AlertLevel::Burned);
        assert!(i3.e_value.unwrap() > 1.0 / burned.config.alpha);
        // The class propagation uses the sequential lower bounds and
        // still flags the class I3 feeds.
        assert_eq!(
            burned.class(&"vS3".into()).unwrap().alert,
            AlertLevel::Burned
        );
        // A clean young fleet stays Ok: no evidence, e-value ≈ 1.
        let clean = sequential_report(&clean_log(100.0));
        for g in &clean.goals {
            assert_eq!(g.alert, AlertLevel::Ok, "{}", g.incident);
            assert!(g.e_value.unwrap() <= 1.0 + 1e-9, "{}", g.incident);
            assert_eq!(g.seq_lower.unwrap(), Frequency::ZERO);
        }
    }

    #[test]
    fn sequential_zero_exposure_reports_vacuous_zeros() {
        let report = sequential_report("");
        for g in &report.goals {
            assert_eq!(g.seq_lower.unwrap(), Frequency::ZERO);
            assert_eq!(g.seq_upper.unwrap(), Frequency::ZERO);
            assert!((g.e_value.unwrap() - 1.0).abs() < 1e-12);
            assert_ne!(g.alert, AlertLevel::Burned);
        }
    }

    #[test]
    fn sequential_report_round_trips_and_old_configs_deserialise() {
        let report = sequential_report(&vru_crash_log(5000.0, 3));
        let json = report.to_canonical_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(back.config.sequential);
        // A config serialised before the sequential column existed loads
        // with the flag off.
        let legacy = r#"{
            "confidence": 0.95, "alpha": 0.05, "beta": 0.05,
            "sprt_fraction": 0.1, "watch_ratio": 0.5, "by_zone": false
        }"#;
        let config: BurnDownConfig = serde_json::from_str(legacy).unwrap();
        assert!(!config.sequential);
        assert_eq!(config, BurnDownConfig::default());
    }

    #[test]
    fn sequential_weighted_evidence_drives_effective_statistics() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let config = BurnDownConfig {
            sequential: true,
            ..BurnDownConfig::default()
        };
        let report = burn_down_evidence(&norm, &allocation, &weighted_ledger(), &config).unwrap();
        let i3 = report.goal(&"I3".into()).unwrap();
        let w = i3.weighted.as_ref().unwrap();
        let (k_eff, t_eff) = w.effective();
        // The stored columns are exactly the confseq primitives evaluated
        // at the Kish effective statistics.
        let mixture = GammaMixture::default_at(i3.budget).unwrap();
        let expected = PoissonConfSeq::new(1.0 - config.confidence, mixture)
            .unwrap()
            .interval_effective(k_eff, t_eff)
            .unwrap();
        assert_eq!(i3.seq_lower.unwrap(), expected.lower);
        assert_eq!(i3.seq_upper.unwrap(), expected.upper);
        let expected_e = BudgetEValue::new(i3.budget, mixture)
            .unwrap()
            .log_e_value_effective(k_eff, t_eff)
            .unwrap()
            .exp();
        assert!((i3.e_value.unwrap() - expected_e).abs() <= 1e-12 * expected_e.abs());
    }

    #[test]
    fn report_serde_round_trip_and_canonical_json() {
        let report = setup(&vru_crash_log(5000.0, 3));
        let json = report.to_canonical_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(back.to_canonical_json(), json);
    }

    #[test]
    fn display_lists_goals_classes_and_alerts() {
        let text = setup(&vru_crash_log(1000.0, 40)).to_string();
        assert!(text.contains("I_I3"));
        assert!(text.contains("BURNED"));
        assert!(text.contains("vS3"));
    }
}
