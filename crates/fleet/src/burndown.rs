//! Budget burn-down: live fleet state × (norm, allocation) → alerting.
//!
//! For every incident type `I_k` with budget `f_{I_k}` the tracker runs
//! two complementary statistical instruments over the same evidence:
//!
//! * **Wald's SPRT** ([`qrn_stats::sequential::PoissonSprt`]) of
//!   `H0: rate = fraction·budget` against `H1: rate = budget` — the
//!   *sequential* view, legitimate to consult after every event, which is
//!   exactly what a continuously-monitoring fleet does.
//! * The **exact Poisson upper bound** (Garwood) at the configured
//!   confidence — the *snapshot* view, comparable with the design-time
//!   verification in `qrn_core::verification`.
//!
//! # Alert levels
//!
//! | Level | Meaning | Trigger |
//! |---|---|---|
//! | `Ok` | consuming the budget as planned | neither of the below |
//! | `Watch` | consumption is elevated; investigate | point estimate ≥ `watch_ratio`·budget |
//! | `Burned` | budget statistically exhausted | SPRT accepts H1, or the exact lower bound exceeds the budget |
//!
//! `Burned` is deliberately evidence-based, not point-estimate-based: one
//! unlucky incident in ten fleet-hours does not burn a `1e-6/h` budget —
//! it sets `Watch` until the exposure is large enough for the SPRT or the
//! exact bound to conclude. Consequence-class (`v_j`) rows reuse the
//! conservative share-matrix propagation of `qrn_core::verification`:
//! class upper bounds sum per-type upper bounds, so a class-level `Ok` is
//! trustworthy while a class-level `Burned` (lower bounds above budget) is
//! a strong flag to read the per-goal rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_core::allocation::Allocation;
use qrn_core::consequence::ConsequenceClassId;
use qrn_core::incident::IncidentTypeId;
use qrn_core::norm::QuantitativeRiskNorm;
use qrn_stats::poisson::PoissonRate;
use qrn_stats::sequential::{PoissonSprt, SprtDecision};
use qrn_units::Frequency;

use crate::error::FleetError;
use crate::event::SkipCounts;
use crate::ingest::FleetState;

/// Escalation level of one budget row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertLevel {
    /// Budget consumption is unremarkable.
    Ok,
    /// Consumption is elevated relative to the budget; investigate.
    Watch,
    /// The budget is statistically exhausted at the configured error
    /// levels.
    Burned,
}

impl fmt::Display for AlertLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertLevel::Ok => f.write_str("ok"),
            AlertLevel::Watch => f.write_str("WATCH"),
            AlertLevel::Burned => f.write_str("BURNED"),
        }
    }
}

/// Parameters of the burn-down analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnDownConfig {
    /// One-sided confidence for the exact Poisson bounds.
    pub confidence: f64,
    /// SPRT α: probability of accepting H1 when the true rate is the
    /// comfortable H0 fraction of the budget.
    pub alpha: f64,
    /// SPRT β: probability of accepting H0 when the true rate is at the
    /// budget.
    pub beta: f64,
    /// H0 rate as a fraction of the budget (`0 < fraction < 1`): the rate
    /// the safety organisation planned for.
    pub sprt_fraction: f64,
    /// Point-estimate share of budget above which a row escalates to
    /// [`AlertLevel::Watch`].
    pub watch_ratio: f64,
}

impl Default for BurnDownConfig {
    fn default() -> Self {
        BurnDownConfig {
            confidence: 0.95,
            alpha: 0.05,
            beta: 0.05,
            sprt_fraction: 0.1,
            watch_ratio: 0.5,
        }
    }
}

impl BurnDownConfig {
    fn validate(&self) -> Result<(), FleetError> {
        for (name, v) in [
            ("confidence", self.confidence),
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("sprt_fraction", self.sprt_fraction),
        ] {
            if !(v.is_finite() && 0.0 < v && v < 1.0) {
                return Err(FleetError::InvalidConfig(format!(
                    "{name} must lie strictly between 0 and 1, got {v}"
                )));
            }
        }
        if !(self.watch_ratio.is_finite() && self.watch_ratio > 0.0) {
            return Err(FleetError::InvalidConfig(format!(
                "watch_ratio must be positive, got {}",
                self.watch_ratio
            )));
        }
        Ok(())
    }
}

/// Burn-down row of one incident-type budget (one safety goal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalBurnDown {
    /// The incident type.
    pub incident: IncidentTypeId,
    /// Its frequency budget `f_{I_k}`.
    pub budget: Frequency,
    /// Observed count over the fleet exposure.
    pub observed: PoissonRate,
    /// Point estimate of the rate (count / exposure; zero at zero
    /// exposure).
    pub point: Frequency,
    /// Exact one-sided upper confidence bound on the rate.
    pub upper_bound: Frequency,
    /// `point / budget`: the fraction of the budget the point estimate
    /// consumes.
    pub consumed: f64,
    /// The sequential test's current decision.
    pub sprt: SprtDecision,
    /// The escalation level.
    pub alert: AlertLevel,
}

/// Burn-down row of one consequence class of the norm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBurnDown {
    /// The consequence class.
    pub class: ConsequenceClassId,
    /// Its acceptable budget `f_acc(v_j)`.
    pub budget: Frequency,
    /// Point estimate of the class load (share-weighted sum of point
    /// rates).
    pub point_load: Frequency,
    /// Conservative upper bound on the class load (share-weighted sum of
    /// per-type upper bounds).
    pub load_upper_bound: Frequency,
    /// `point_load / budget`.
    pub consumed: f64,
    /// The escalation level.
    pub alert: AlertLevel,
}

/// The serialisable burn-down artefact: one snapshot of "how fast is the
/// fleet spending its risk budgets".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Event-schema version of the log this report was computed from.
    pub schema_version: u64,
    /// Analysis parameters.
    pub config: BurnDownConfig,
    /// Total fleet exposure, hours.
    pub exposure_hours: f64,
    /// Distinct vehicles that reported.
    pub vehicles: u64,
    /// Events successfully parsed.
    pub events: u64,
    /// Raw observations that were not incidents under the classification.
    pub unclassified: u64,
    /// Skipped-line tallies of the underlying log.
    pub skipped: SkipCounts,
    /// Per-safety-goal rows, in incident-id order.
    pub goals: Vec<GoalBurnDown>,
    /// Per-consequence-class rows, in severity order.
    pub classes: Vec<ClassBurnDown>,
}

impl FleetReport {
    /// Returns `true` when any goal or class is burned.
    pub fn any_burned(&self) -> bool {
        self.goals.iter().any(|g| g.alert == AlertLevel::Burned)
            || self.classes.iter().any(|c| c.alert == AlertLevel::Burned)
    }

    /// The highest alert level across all rows.
    pub fn worst_alert(&self) -> AlertLevel {
        self.goals
            .iter()
            .map(|g| g.alert)
            .chain(self.classes.iter().map(|c| c.alert))
            .max()
            .unwrap_or(AlertLevel::Ok)
    }

    /// The row of one goal, if present.
    pub fn goal(&self, id: &IncidentTypeId) -> Option<&GoalBurnDown> {
        self.goals.iter().find(|g| &g.incident == id)
    }

    /// The row of one class, if present.
    pub fn class(&self, id: &ConsequenceClassId) -> Option<&ClassBurnDown> {
        self.classes.iter().find(|c| &c.class == id)
    }

    /// Canonical pretty-printed JSON. Deterministic: the same state and
    /// config always produce the same bytes, for any ingest shard count.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports are serialisable")
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet burn-down over {:.1} h from {} vehicles ({} events, {} lines skipped):",
            self.exposure_hours,
            self.vehicles,
            self.events,
            self.skipped.total(),
        )?;
        for g in &self.goals {
            writeln!(
                f,
                "  I_{}: {} events, point {} / budget {} ({:.0}% consumed), sprt {:?} -> {}",
                g.incident,
                g.observed.count,
                g.point,
                g.budget,
                g.consumed * 100.0,
                g.sprt,
                g.alert,
            )?;
        }
        for c in &self.classes {
            writeln!(
                f,
                "  {}: load {} / budget {} ({:.0}% consumed) -> {}",
                c.class,
                c.point_load,
                c.budget,
                c.consumed * 100.0,
                c.alert,
            )?;
        }
        Ok(())
    }
}

/// Computes the burn-down of every incident-type and consequence-class
/// budget against the live fleet state.
///
/// # Errors
///
/// Returns [`FleetError`] for an invalid configuration, a zero budget in
/// the allocation (a zero budget cannot parametrise the SPRT), or a share
/// matrix referencing classes outside the norm.
pub fn burn_down(
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
    state: &FleetState,
    config: &BurnDownConfig,
) -> Result<FleetReport, FleetError> {
    config.validate()?;
    for class in allocation.shares().referenced_classes() {
        if norm.class(class).is_none() {
            return Err(FleetError::Core(qrn_core::CoreError::UnknownId {
                kind: "consequence class",
                id: class.as_str().to_string(),
            }));
        }
    }
    let exposure = state.exposure();
    let mut goals = Vec::new();
    let mut lower_bounds = Vec::new();
    for (incident, budget) in allocation.budgets() {
        if budget.as_per_hour() <= 0.0 {
            return Err(FleetError::InvalidConfig(format!(
                "incident {incident} has a zero budget; burn-down needs positive budgets"
            )));
        }
        let observed = PoissonRate::new(state.count(incident), exposure);
        // With zero exposure there is no evidence in either direction: the
        // exact bounds are undefined (reported as zero) and only the SPRT's
        // `Continue` carries meaning.
        let (point, upper_bound, lower_bound) = if exposure.value() > 0.0 {
            (
                observed.point_estimate()?,
                observed.upper_bound(config.confidence)?,
                observed.lower_bound(config.confidence)?,
            )
        } else {
            (Frequency::ZERO, Frequency::ZERO, Frequency::ZERO)
        };
        let sprt = PoissonSprt::new(
            budget.scaled(config.sprt_fraction)?,
            budget,
            config.alpha,
            config.beta,
        )?
        .decide(observed.count, exposure);
        let consumed = point.ratio(budget).unwrap_or(0.0);
        let alert = if sprt == SprtDecision::AcceptAlternative || lower_bound > budget {
            AlertLevel::Burned
        } else if consumed >= config.watch_ratio {
            AlertLevel::Watch
        } else {
            AlertLevel::Ok
        };
        lower_bounds.push(lower_bound);
        goals.push(GoalBurnDown {
            incident: incident.clone(),
            budget,
            observed,
            point,
            upper_bound,
            consumed,
            sprt,
            alert,
        });
    }
    let classes = norm
        .classes()
        .map(|c| {
            let budget = norm.budget(c.id()).expect("class is in norm");
            let mut point_load = Frequency::ZERO;
            let mut upper = Frequency::ZERO;
            let mut lower = Frequency::ZERO;
            for (g, lo) in goals.iter().zip(&lower_bounds) {
                let share = allocation.shares().share(&g.incident, c.id());
                point_load = point_load + g.point * share;
                upper = upper + g.upper_bound * share;
                lower = lower + *lo * share;
            }
            let consumed = point_load.ratio(budget).unwrap_or(0.0);
            let alert = if lower > budget {
                AlertLevel::Burned
            } else if consumed >= config.watch_ratio {
                AlertLevel::Watch
            } else {
                AlertLevel::Ok
            };
            ClassBurnDown {
                class: c.id().clone(),
                budget,
                point_load,
                load_upper_bound: upper,
                consumed,
                alert,
            }
        })
        .collect();
    Ok(FleetReport {
        schema_version: crate::event::SCHEMA_VERSION,
        config: *config,
        exposure_hours: exposure.value(),
        vehicles: state.vehicle_count(),
        events: state.events(),
        unclassified: state.unclassified(),
        skipped: state.skipped(),
        goals,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{to_jsonl, FleetEvent};
    use crate::ingest::ingest_str;
    use qrn_core::examples::{paper_allocation, paper_classification, paper_norm};
    use qrn_core::incident::IncidentRecord;
    use qrn_core::object::{Involvement, ObjectType};
    use qrn_units::{Hours, Speed};

    fn clean_log(hours_total: f64) -> String {
        let events: Vec<FleetEvent> = (0..13)
            .map(|i| FleetEvent::Exposure {
                vehicle: format!("V{i:03}"),
                hours: Hours::new(hours_total / 13.0).unwrap(),
            })
            .collect();
        to_jsonl(&events)
    }

    fn vru_crash_log(hours_total: f64, crashes: usize) -> String {
        let mut events = vec![FleetEvent::Exposure {
            vehicle: "V000".into(),
            hours: Hours::new(hours_total).unwrap(),
        }];
        for i in 0..crashes {
            events.push(FleetEvent::Incident {
                vehicle: format!("V{:03}", i % 7),
                record: IncidentRecord::collision(
                    Involvement::ego_with(ObjectType::Vru),
                    Speed::from_kmh(30.0).unwrap(),
                ),
            });
        }
        to_jsonl(&events)
    }

    fn setup(log: &str) -> FleetReport {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str(log, &classification, 2).unwrap();
        burn_down(&norm, &allocation, &state, &BurnDownConfig::default()).unwrap()
    }

    #[test]
    fn clean_fleet_is_ok_everywhere_eventually() {
        // Long clean exposure: every SPRT accepts H0, nothing consumed.
        // Needs to be astronomically long because zero-event acceptance of
        // the *smallest* budget takes T ≳ ln((1-α)/β) / (0.9·f_{I_k}).
        let report = setup(&clean_log(1.0e12));
        assert!(!report.any_burned());
        assert_eq!(report.worst_alert(), AlertLevel::Ok);
        for g in &report.goals {
            assert_eq!(g.sprt, SprtDecision::AcceptNull, "{}", g.incident);
            assert_eq!(g.observed.count, 0);
            assert_eq!(g.consumed, 0.0);
        }
    }

    #[test]
    fn young_fleet_is_ok_but_undecided() {
        let report = setup(&clean_log(100.0));
        assert!(!report.any_burned());
        for g in &report.goals {
            assert_eq!(g.sprt, SprtDecision::Continue, "{}", g.incident);
        }
    }

    #[test]
    fn over_budget_type_burns_with_accept_alternative() {
        // 40 severe VRU collisions (I3) in 1000 h: astronomically above
        // I3's ~1e-7/h budget.
        let report = setup(&vru_crash_log(1000.0, 40));
        let i3 = report.goal(&"I3".into()).unwrap();
        assert_eq!(i3.alert, AlertLevel::Burned);
        assert_eq!(i3.sprt, SprtDecision::AcceptAlternative);
        assert!(i3.consumed > 1.0);
        assert!(report.any_burned());
        assert_eq!(report.worst_alert(), AlertLevel::Burned);
        // The classes I3 feeds into burn too.
        assert_eq!(
            report.class(&"vS3".into()).unwrap().alert,
            AlertLevel::Burned
        );
    }

    #[test]
    fn zero_exposure_reports_without_panic() {
        let report = setup("");
        assert_eq!(report.exposure_hours, 0.0);
        for g in &report.goals {
            assert_eq!(g.point, Frequency::ZERO);
            assert_eq!(g.consumed, 0.0);
            // No evidence at all: the sequential test must keep observing.
            assert_eq!(g.sprt, SprtDecision::Continue);
            assert_ne!(g.alert, AlertLevel::Burned);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let state = ingest_str("", &classification, 1).unwrap();
        for bad in [
            BurnDownConfig {
                confidence: 1.0,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                alpha: 0.0,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                sprt_fraction: 1.5,
                ..BurnDownConfig::default()
            },
            BurnDownConfig {
                watch_ratio: -1.0,
                ..BurnDownConfig::default()
            },
        ] {
            assert!(burn_down(&norm, &allocation, &state, &bad).is_err());
        }
    }

    #[test]
    fn report_serde_round_trip_and_canonical_json() {
        let report = setup(&vru_crash_log(5000.0, 3));
        let json = report.to_canonical_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(back.to_canonical_json(), json);
    }

    #[test]
    fn display_lists_goals_classes_and_alerts() {
        let text = setup(&vru_crash_log(1000.0, 40)).to_string();
        assert!(text.contains("I_I3"));
        assert!(text.contains("BURNED"));
        assert!(text.contains("vS3"));
    }
}
