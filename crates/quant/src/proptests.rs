//! Property-based tests for the rate algebra.

use proptest::prelude::*;

use qrn_units::Frequency;

use crate::element::Element;
use crate::ftree::RateModel;
use crate::importance::{birnbaum_importance, importance_ranking};

fn leaf_rates() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-9f64..1e-1, 1..6)
}

fn series(rates: &[f64]) -> RateModel {
    RateModel::any_of(
        rates
            .iter()
            .enumerate()
            .map(|(i, r)| {
                RateModel::basic(Element::new(
                    format!("e{i}"),
                    Frequency::per_hour(*r).expect("strategy range is valid"),
                ))
            })
            .collect(),
    )
}

fn parallel(rates: &[f64]) -> RateModel {
    RateModel::all_of(
        rates
            .iter()
            .enumerate()
            .map(|(i, r)| {
                RateModel::basic(Element::new(
                    format!("e{i}"),
                    Frequency::per_hour(*r).expect("strategy range is valid"),
                ))
            })
            .collect(),
    )
}

proptest! {
    /// OR of exponentials has exactly the summed rate; AND is bounded by
    /// its weakest member.
    #[test]
    fn gate_bounds(rates in leaf_rates()) {
        let or = series(&rates).rate().expect("p < 1").as_per_hour();
        let sum: f64 = rates.iter().sum();
        prop_assert!((or - sum).abs() <= 1e-9 * sum.max(1.0));

        let and = parallel(&rates).rate().expect("p < 1").as_per_hour();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(and <= min * 1.0001);
    }

    /// The rare-event approximation upper-bounds the exact OR rate... in
    /// fact they are equal for OR; for AND the approximation is within a
    /// factor (1 + p) of exact for small p.
    #[test]
    fn approximation_quality(rates in leaf_rates()) {
        let m = parallel(&rates);
        let exact = m.rate().expect("p < 1").as_per_hour();
        let approx = m.rate_rare_approx();
        if approx > 0.0 {
            let ratio = exact / approx;
            prop_assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        }
    }

    /// Exact (common-cause aware) evaluation equals the naive one when all
    /// ids are distinct.
    #[test]
    fn exact_equals_naive_without_sharing(rates in leaf_rates()) {
        for m in [series(&rates), parallel(&rates)] {
            let naive = m.hourly_probability();
            let exact = m.hourly_probability_exact();
            prop_assert!((naive - exact).abs() <= 1e-12);
        }
    }

    /// Sharing an element across AND branches never *decreases* the
    /// violation probability (positive dependence).
    #[test]
    fn common_cause_is_never_optimistic(shared in 1e-6f64..1e-2, others in leaf_rates()) {
        let branch = |i: usize, r: f64, shared: f64| {
            RateModel::any_of(vec![
                RateModel::basic(Element::new(
                    "shared",
                    Frequency::per_hour(shared).expect("valid"),
                )),
                RateModel::basic(Element::new(
                    format!("o{i}"),
                    Frequency::per_hour(r).expect("valid"),
                )),
            ])
        };
        let m = RateModel::all_of(
            others.iter().enumerate().map(|(i, r)| branch(i, *r, shared)).collect(),
        );
        prop_assert!(m.hourly_probability_exact() >= m.hourly_probability() - 1e-12);
    }

    /// Birnbaum importances are probabilities, and the ranking is sorted.
    #[test]
    fn importance_is_a_sorted_probability(rates in leaf_rates()) {
        let m = parallel(&rates);
        let ranking = importance_ranking(&m);
        prop_assert_eq!(ranking.len(), rates.len());
        for pair in ranking.windows(2) {
            prop_assert!(pair[0].birnbaum >= pair[1].birnbaum);
        }
        for entry in &ranking {
            prop_assert!((0.0..=1.0).contains(&entry.birnbaum));
            prop_assert_eq!(
                birnbaum_importance(&m, &entry.id).expect("known id"),
                entry.birnbaum
            );
        }
    }
}
