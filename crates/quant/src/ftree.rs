//! Rate algebra over architectures: AND / OR composition of violation
//! rates.
//!
//! The model is a fault-tree over requirement violations:
//!
//! * an **OR** node ([`RateModel::any_of`]) violates when *any* child does
//!   — a series architecture; rates approximately add;
//! * an **AND** node ([`RateModel::all_of`]) violates only when *all*
//!   children do — a redundant architecture; per-hour violation
//!   probabilities multiply.
//!
//! Two evaluation modes are provided. [`RateModel::rate`] is exact under
//! the stated model: children are independent and an AND node requires
//! coincidence within a one-hour window (each child's per-hour violation
//! probability is `1 − e^{−r·1h}`). [`RateModel::rate_rare_approx`] is the
//! usual first-order approximation (sum for OR, product of per-hour rates
//! for AND), valid when every rate is far below 1/hour — the regime every
//! safety budget lives in. The unit tests pin the two against each other.
//!
//! The independence assumption is load-bearing and deliberately explicit:
//! diversity between redundant channels is what a quantitative safety case
//! must argue (the paper: "being able to take into account redundancy
//! contributions of just a few orders of magnitude").

use serde::{Deserialize, Serialize};

use qrn_units::{Frequency, UnitError};

use crate::element::Element;

/// A violation-rate model over an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateModel {
    /// A basic element with a known violation rate.
    Basic(Element),
    /// Violated when any child is violated (series / non-redundant).
    AnyOf(Vec<RateModel>),
    /// Violated only when every child is violated within the coincidence
    /// window (parallel / redundant).
    AllOf(Vec<RateModel>),
}

impl RateModel {
    /// Wraps a basic element.
    pub fn basic(element: Element) -> Self {
        RateModel::Basic(element)
    }

    /// Creates an OR (series) node.
    pub fn any_of(children: Vec<RateModel>) -> Self {
        RateModel::AnyOf(children)
    }

    /// Creates an AND (redundant) node.
    pub fn all_of(children: Vec<RateModel>) -> Self {
        RateModel::AllOf(children)
    }

    /// Per-hour violation probability of the modelled (sub)system.
    ///
    /// Children are assumed independent; an empty OR never fires
    /// (probability 0) and an empty AND always fires (probability 1),
    /// the usual identities of the two gates.
    ///
    /// **Common-cause warning:** if the same element id appears in several
    /// places (a shared service feeding redundant channels), this method
    /// treats the copies as independent and will *understate* the true
    /// probability — use [`RateModel::hourly_probability_exact`] instead,
    /// which conditions on shared elements.
    pub fn hourly_probability(&self) -> f64 {
        match self {
            RateModel::Basic(e) => 1.0 - (-e.rate().as_per_hour()).exp(),
            RateModel::AnyOf(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.hourly_probability())
                    .product::<f64>()
            }
            RateModel::AllOf(children) => children
                .iter()
                .map(RateModel::hourly_probability)
                .product::<f64>(),
        }
    }

    /// Exact composed violation rate (events per hour) under the model's
    /// independence and one-hour coincidence assumptions.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] only in the degenerate case of an empty AND
    /// node (probability 1 has no finite rate).
    pub fn rate(&self) -> Result<Frequency, UnitError> {
        let p = self.hourly_probability();
        // r = -ln(1 - p): the rate whose per-hour probability is p.
        Frequency::per_hour(-(1.0 - p).ln())
    }

    /// First-order rare-event approximation: OR sums rates, AND multiplies
    /// per-hour rates. Accurate to `O(r²)` when all rates ≪ 1/h.
    pub fn rate_rare_approx(&self) -> f64 {
        match self {
            RateModel::Basic(e) => e.rate().as_per_hour(),
            RateModel::AnyOf(children) => children.iter().map(RateModel::rate_rare_approx).sum(),
            RateModel::AllOf(children) => {
                children.iter().map(RateModel::rate_rare_approx).product()
            }
        }
    }

    /// Element ids that occur more than once in the model — shared
    /// services whose failure is a **common cause** across gates.
    pub fn duplicated_ids(&self) -> Vec<String> {
        let mut ids: Vec<&str> = self.elements().into_iter().map(Element::id).collect();
        ids.sort_unstable();
        let mut out = Vec::new();
        for window in ids.windows(2) {
            if window[0] == window[1] && out.last().map(String::as_str) != Some(window[0]) {
                out.push(window[0].to_string());
            }
        }
        out
    }

    /// Per-hour violation probability with overrides: every element whose
    /// id appears in `forced` contributes the forced probability instead
    /// of its own.
    fn probability_with_overrides(&self, forced: &std::collections::BTreeMap<&str, f64>) -> f64 {
        match self {
            RateModel::Basic(e) => forced
                .get(e.id())
                .copied()
                .unwrap_or_else(|| 1.0 - (-e.rate().as_per_hour()).exp()),
            RateModel::AnyOf(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.probability_with_overrides(forced))
                    .product::<f64>()
            }
            RateModel::AllOf(children) => children
                .iter()
                .map(|c| c.probability_with_overrides(forced))
                .product(),
        }
    }

    /// Exact per-hour violation probability in the presence of shared
    /// (common-cause) elements, via Shannon conditioning: each duplicated
    /// id is pinned to failed/ok in turn and the results are weighted by
    /// its own probability. Identical to [`RateModel::hourly_probability`]
    /// when no id is duplicated.
    ///
    /// # Panics
    ///
    /// Panics when more than 20 distinct ids are duplicated (2²⁰ states);
    /// a model with that much sharing needs restructuring, not evaluation.
    pub fn hourly_probability_exact(&self) -> f64 {
        let dups = self.duplicated_ids();
        assert!(
            dups.len() <= 20,
            "too many shared elements ({}) for exact conditioning",
            dups.len()
        );
        // Per-id failure probability (copies share the rate of the first
        // occurrence; validated equal in practice since they model one
        // physical element).
        let p_of = |id: &str| -> f64 {
            let e = self
                .elements()
                .into_iter()
                .find(|e| e.id() == id)
                .expect("id came from the model");
            1.0 - (-e.rate().as_per_hour()).exp()
        };
        let mut total = 0.0;
        for state in 0..(1u32 << dups.len()) {
            let mut weight = 1.0;
            let mut forced = std::collections::BTreeMap::new();
            for (i, id) in dups.iter().enumerate() {
                let failed = state & (1 << i) != 0;
                let p = p_of(id);
                weight *= if failed { p } else { 1.0 - p };
                forced.insert(id.as_str(), if failed { 1.0 } else { 0.0 });
            }
            if weight > 0.0 {
                total += weight * self.probability_with_overrides(&forced);
            }
        }
        total
    }

    /// Exact composed violation rate accounting for common-cause sharing;
    /// see [`RateModel::hourly_probability_exact`].
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] when the violation probability is 1 (no
    /// finite rate exists).
    pub fn rate_exact(&self) -> Result<Frequency, UnitError> {
        Frequency::per_hour(-(1.0 - self.hourly_probability_exact()).ln())
    }

    /// All basic elements in the model, depth-first.
    pub fn elements(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        self.collect_elements(&mut out);
        out
    }

    fn collect_elements<'a>(&'a self, out: &mut Vec<&'a Element>) {
        match self {
            RateModel::Basic(e) => out.push(e),
            RateModel::AnyOf(children) | RateModel::AllOf(children) => {
                for c in children {
                    c.collect_elements(out);
                }
            }
        }
    }

    /// Number of basic elements in the model.
    pub fn element_count(&self) -> usize {
        match self {
            RateModel::Basic(_) => 1,
            RateModel::AnyOf(children) | RateModel::AllOf(children) => {
                children.iter().map(RateModel::element_count).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic(id: &str, rate: f64) -> RateModel {
        RateModel::basic(Element::new(id, Frequency::per_hour(rate).unwrap()))
    }

    #[test]
    fn basic_rate_round_trips() {
        let m = basic("a", 1e-5);
        assert!((m.rate().unwrap().as_per_hour() - 1e-5).abs() < 1e-12);
        assert!((m.rate_rare_approx() - 1e-5).abs() < 1e-20);
    }

    #[test]
    fn or_adds_rates_in_rare_regime() {
        let m = RateModel::any_of(vec![basic("a", 1e-6), basic("b", 2e-6), basic("c", 3e-6)]);
        let exact = m.rate().unwrap().as_per_hour();
        let approx = m.rate_rare_approx();
        assert!((approx - 6e-6).abs() < 1e-18);
        assert!((exact - approx).abs() / approx < 1e-5);
    }

    #[test]
    fn and_multiplies_probabilities() {
        let m = RateModel::all_of(vec![basic("a", 1e-3), basic("b", 1e-3), basic("c", 1e-3)]);
        let exact = m.rate().unwrap().as_per_hour();
        let approx = m.rate_rare_approx();
        assert!((approx - 1e-9).abs() < 1e-18);
        assert!((exact - approx).abs() / approx < 1e-2);
    }

    #[test]
    fn redundancy_beats_series() {
        let series = RateModel::any_of(vec![basic("a", 1e-3), basic("b", 1e-3)]);
        let parallel = RateModel::all_of(vec![basic("a", 1e-3), basic("b", 1e-3)]);
        assert!(parallel.rate().unwrap() < series.rate().unwrap());
    }

    #[test]
    fn nested_composition() {
        // Two diverse stacks, each a series of sensor + predictor;
        // the stacks are redundant.
        let stack = |s: &str| {
            RateModel::any_of(vec![
                basic(&format!("{s}-sense"), 1e-3),
                basic(&format!("{s}-pred"), 1e-3),
            ])
        };
        let fused = RateModel::all_of(vec![stack("a"), stack("b")]);
        let approx = fused.rate_rare_approx();
        assert!((approx - 4e-6).abs() < 1e-15);
        assert_eq!(fused.element_count(), 4);
        assert_eq!(fused.elements().len(), 4);
    }

    #[test]
    fn gate_identities() {
        let empty_or = RateModel::any_of(vec![]);
        assert_eq!(empty_or.hourly_probability(), 0.0);
        assert_eq!(empty_or.rate().unwrap(), Frequency::ZERO);
        let empty_and = RateModel::all_of(vec![]);
        assert_eq!(empty_and.hourly_probability(), 1.0);
        // probability 1 has no finite rate
        assert!(empty_and.rate().is_err());
    }

    #[test]
    fn exact_rate_saturates_below_probability_one() {
        // Very high rates: probability approaches 1, exact rate stays finite
        // for p < 1 and the approximation overshoots.
        let m = RateModel::any_of(vec![basic("a", 2.0), basic("b", 2.0)]);
        let exact = m.rate().unwrap().as_per_hour();
        assert!(
            (exact - 4.0).abs() < 1e-12,
            "rates add exactly for OR of exponentials"
        );
    }

    #[test]
    fn serde_round_trip() {
        let m = RateModel::all_of(vec![basic("a", 1e-3), basic("b", 1e-4)]);
        let back: RateModel = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn duplicated_ids_are_detected_once_each() {
        let m = RateModel::all_of(vec![
            RateModel::any_of(vec![basic("shared", 1e-4), basic("a", 1e-3)]),
            RateModel::any_of(vec![basic("shared", 1e-4), basic("b", 1e-3)]),
            RateModel::any_of(vec![basic("shared", 1e-4), basic("c", 1e-3)]),
        ]);
        assert_eq!(m.duplicated_ids(), vec!["shared".to_string()]);
        assert!(basic("a", 1e-3).duplicated_ids().is_empty());
    }

    #[test]
    fn exact_probability_matches_naive_without_sharing() {
        let m = RateModel::all_of(vec![basic("a", 1e-3), basic("b", 2e-3)]);
        let naive = m.hourly_probability();
        let exact = m.hourly_probability_exact();
        assert!((naive - exact).abs() < 1e-15);
    }

    #[test]
    fn common_cause_dominates_the_exact_rate() {
        // Redundant channels that all depend on one shared service: the
        // naive rate is the product (~1e-9-ish), the true rate is pinned
        // by the shared service (~1e-4).
        let m = RateModel::all_of(vec![
            RateModel::any_of(vec![basic("shared", 1e-4), basic("a", 1e-3)]),
            RateModel::any_of(vec![basic("shared", 1e-4), basic("b", 1e-3)]),
            RateModel::any_of(vec![basic("shared", 1e-4), basic("c", 1e-3)]),
        ]);
        let naive = m.rate().unwrap().as_per_hour();
        let exact = m.rate_exact().unwrap().as_per_hour();
        assert!(naive < 1e-7, "naive {naive}");
        assert!((exact - 1e-4).abs() / 1e-4 < 0.05, "exact {exact}");
        assert!(exact > 100.0 * naive);
    }

    #[test]
    fn exact_rate_agrees_with_hand_computation() {
        // System = AND(OR(s, a), OR(s, b)): P = p_s + (1-p_s)·p_a·p_b.
        let ps = 1.0 - (-1e-4f64).exp();
        let pa = 1.0 - (-1e-3f64).exp();
        let pb = 1.0 - (-2e-3f64).exp();
        let expect = ps + (1.0 - ps) * pa * pb;
        let m = RateModel::all_of(vec![
            RateModel::any_of(vec![basic("s", 1e-4), basic("a", 1e-3)]),
            RateModel::any_of(vec![basic("s", 1e-4), basic("b", 2e-3)]),
        ]);
        let exact = m.hourly_probability_exact();
        assert!((exact - expect).abs() < 1e-12, "{exact} vs {expect}");
    }
}
