//! Element importance analysis: which element's integrity matters most?
//!
//! In a quantitative framework, "where should the next engineering unit of
//! effort go?" has a classical answer: **Birnbaum importance**, the partial
//! derivative of the system violation probability with respect to one
//! element's violation probability,
//! `I_B(i) = P(system | i failed) − P(system | i works)`.
//! Series elements matter almost fully; deep-redundancy elements matter
//! only as much as the rest of their gate is likely to fail too — which is
//! exactly the intuition Sec. V uses when it lets redundant channels carry
//! individually modest budgets.

use serde::{Deserialize, Serialize};

use crate::ftree::RateModel;

/// One element's Birnbaum importance in a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementImportance {
    /// The element id.
    pub id: String,
    /// `P(system violated | element violated) − P(system violated | element ok)`.
    pub birnbaum: f64,
}

/// Evaluates the model's hourly violation probability with the probability
/// of every element named `id` forced to `forced`.
fn probability_with(model: &RateModel, id: &str, forced: f64) -> f64 {
    match model {
        RateModel::Basic(e) => {
            if e.id() == id {
                forced
            } else {
                1.0 - (-e.rate().as_per_hour()).exp()
            }
        }
        RateModel::AnyOf(children) => {
            1.0 - children
                .iter()
                .map(|c| 1.0 - probability_with(c, id, forced))
                .product::<f64>()
        }
        RateModel::AllOf(children) => children
            .iter()
            .map(|c| probability_with(c, id, forced))
            .product(),
    }
}

/// Computes the Birnbaum importance of the element named `id`, or `None`
/// when no element carries that id. When several elements share the id
/// (e.g. a common-cause component instantiated twice), they are perturbed
/// together, which is the correct treatment for a common cause.
///
/// # Examples
///
/// ```
/// use qrn_quant::element::Element;
/// use qrn_quant::ftree::RateModel;
/// use qrn_quant::importance::birnbaum_importance;
/// use qrn_units::Frequency;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = RateModel::all_of(vec![
///     RateModel::basic(Element::new("a", Frequency::per_hour(1e-3)?)),
///     RateModel::basic(Element::new("b", Frequency::per_hour(1e-3)?)),
/// ]);
/// // In a 2-way redundancy, a's importance is b's failure probability.
/// let i = birnbaum_importance(&model, "a").unwrap();
/// assert!((i - 1e-3).abs() / 1e-3 < 1e-2);
/// # Ok(())
/// # }
/// ```
pub fn birnbaum_importance(model: &RateModel, id: &str) -> Option<f64> {
    if !model.elements().iter().any(|e| e.id() == id) {
        return None;
    }
    Some(probability_with(model, id, 1.0) - probability_with(model, id, 0.0))
}

/// Ranks every element by Birnbaum importance, most important first.
/// Elements sharing an id appear once.
pub fn importance_ranking(model: &RateModel) -> Vec<ElementImportance> {
    let mut ids: Vec<&str> = model.elements().iter().map(|e| e.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut out: Vec<ElementImportance> = ids
        .into_iter()
        .map(|id| ElementImportance {
            id: id.to_string(),
            birnbaum: birnbaum_importance(model, id).expect("id came from the model"),
        })
        .collect();
    out.sort_by(|a, b| {
        b.birnbaum
            .partial_cmp(&a.birnbaum)
            .expect("probabilities are not NaN")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use qrn_units::Frequency;

    fn basic(id: &str, rate: f64) -> RateModel {
        RateModel::basic(Element::new(id, Frequency::per_hour(rate).unwrap()))
    }

    #[test]
    fn series_elements_have_near_unit_importance() {
        let model = RateModel::any_of(vec![basic("a", 1e-4), basic("b", 1e-4)]);
        let i = birnbaum_importance(&model, "a").unwrap();
        assert!((i - 1.0).abs() < 1e-3, "series importance {i}");
    }

    #[test]
    fn parallel_importance_equals_partner_probability() {
        let model = RateModel::all_of(vec![basic("a", 1e-3), basic("b", 2e-3)]);
        let ia = birnbaum_importance(&model, "a").unwrap();
        let ib = birnbaum_importance(&model, "b").unwrap();
        // I(a) = p_b, I(b) = p_a
        assert!((ia - 2e-3).abs() / 2e-3 < 1e-2);
        assert!((ib - 1e-3).abs() / 1e-3 < 1e-2);
        // the weaker partner is the more important one
        assert!(ia > ib);
    }

    #[test]
    fn unknown_element_is_none() {
        let model = basic("a", 1e-3);
        assert_eq!(birnbaum_importance(&model, "ghost"), None);
    }

    #[test]
    fn ranking_orders_by_importance() {
        // A series of a weak element and a 2-redundant pair: the series
        // element dominates.
        let model = RateModel::any_of(vec![
            basic("single-point", 1e-5),
            RateModel::all_of(vec![basic("red-1", 1e-3), basic("red-2", 1e-3)]),
        ]);
        let ranking = importance_ranking(&model);
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].id, "single-point");
        assert!(ranking[0].birnbaum > 100.0 * ranking[1].birnbaum);
    }

    #[test]
    fn shared_ids_are_perturbed_together() {
        // The same sensor feeding both redundant channels is a common
        // cause: its importance is that of a series element.
        let model = RateModel::all_of(vec![
            RateModel::any_of(vec![basic("shared-sensor", 1e-4), basic("ch1", 1e-3)]),
            RateModel::any_of(vec![basic("shared-sensor", 1e-4), basic("ch2", 1e-3)]),
        ]);
        let shared = birnbaum_importance(&model, "shared-sensor").unwrap();
        let ch1 = birnbaum_importance(&model, "ch1").unwrap();
        assert!(
            shared > 100.0 * ch1,
            "common cause {shared} must dominate channel {ch1}"
        );
    }

    #[test]
    fn importance_matches_numeric_derivative() {
        let model = RateModel::any_of(vec![
            basic("x", 2e-3),
            RateModel::all_of(vec![basic("y", 5e-3), basic("z", 7e-3)]),
        ]);
        // numeric dP/dp_x via central difference on the definition
        let h = 1e-7;
        let up = super::probability_with(&model, "x", (1.0 - (-2e-3f64).exp()) + h);
        let dn = super::probability_with(&model, "x", (1.0 - (-2e-3f64).exp()) - h);
        let numeric = (up - dn) / (2.0 * h);
        let analytic = birnbaum_importance(&model, "x").unwrap();
        assert!((numeric - analytic).abs() < 1e-5, "{numeric} vs {analytic}");
    }

    #[test]
    fn serde_round_trip() {
        let model = RateModel::any_of(vec![basic("a", 1e-4)]);
        let ranking = importance_ranking(&model);
        let back: Vec<ElementImportance> =
            serde_json::from_str(&serde_json::to_string(&ranking).unwrap()).unwrap();
        assert_eq!(ranking, back);
    }
}
