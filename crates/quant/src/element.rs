//! Architecture elements carrying violation-rate budgets.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::Frequency;

/// An architecture element (sensing channel, prediction block, actuator
/// path, software component) with the rate at which it violates its
/// allocated safety requirement.
///
/// The rate is deliberately *cause-agnostic*: systematic software faults,
/// random hardware faults and sensor performance limitations all drain the
/// same budget (Sec. V: "one budget to be met by all contributing causes").
///
/// # Examples
///
/// ```
/// use qrn_quant::element::Element;
/// use qrn_units::Frequency;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let camera = Element::new("camera-freespace", Frequency::per_hour(1e-3)?)
///     .with_description("camera channel overestimates drivable area");
/// assert_eq!(camera.id(), "camera-freespace");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    id: String,
    rate: Frequency,
    description: String,
}

impl Element {
    /// Creates an element with its requirement-violation rate.
    pub fn new(id: impl Into<String>, rate: Frequency) -> Self {
        Element {
            id: id.into(),
            rate,
            description: String::new(),
        }
    }

    /// Attaches a free-text description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The element's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The element's violation rate.
    pub fn rate(&self) -> Frequency {
        self.rate
    }

    /// The free-text description (possibly empty).
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.id, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let e = Element::new("radar", Frequency::per_hour(2e-4).unwrap())
            .with_description("radar misses VRU");
        assert_eq!(e.id(), "radar");
        assert_eq!(e.rate().as_per_hour(), 2e-4);
        assert!(e.description().contains("VRU"));
        assert!(e.to_string().contains("radar"));
    }

    #[test]
    fn serde_round_trip() {
        let e = Element::new("radar", Frequency::per_hour(2e-4).unwrap());
        let back: Element = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(e, back);
    }
}
