//! Quantitative refinement versus ASIL decomposition: the Sec. V
//! comparison, executable.
//!
//! The paper's drivable-area example: a requirement not to overestimate
//! the VRU-free drivable area carries an ASIL-D-grade integrity target.
//! Decomposing it into several *diverse, individually modest* perception
//! channels gives each channel a rate "that in traditional ISO 26262 only
//! would be in the QM range" — yet their redundant combination meets the
//! vehicle-level target. The qualitative decomposition menu has no scheme
//! "D → QM + QM + QM", so the same architecture cannot be credited
//! qualitatively. This module computes both sides.

use serde::{Deserialize, Serialize};

use qrn_hara::asil::Asil;
use qrn_hara::decomposition::valid_decompositions;
use qrn_units::{Frequency, UnitError};

use crate::element::Element;
use crate::ftree::RateModel;

/// The strictest ASIL whose indicative random-hardware-fault target the
/// given rate meets, or `None` when the rate misses even the ASIL B/C
/// target (i.e. it is "in the QM range" in the paper's informal sense —
/// QM and ASIL A carry no numeric target).
///
/// # Examples
///
/// ```
/// use qrn_hara::asil::Asil;
/// use qrn_quant::compare::asil_equivalent;
/// use qrn_units::Frequency;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// assert_eq!(asil_equivalent(Frequency::per_hour(5e-9)?), Some(Asil::D));
/// assert_eq!(asil_equivalent(Frequency::per_hour(5e-8)?), Some(Asil::C));
/// assert_eq!(asil_equivalent(Frequency::per_hour(1e-3)?), None);
/// # Ok(())
/// # }
/// ```
pub fn asil_equivalent(rate: Frequency) -> Option<Asil> {
    // Walk from the strictest target down.
    for asil in [Asil::D, Asil::C] {
        let target = asil
            .random_hw_fault_target()
            .expect("D and C carry targets");
        if rate <= target {
            return Some(asil);
        }
    }
    None
}

/// Returns `true` when repeated application of the ISO 26262-9
/// decomposition schemes can turn a `parent` requirement into exactly the
/// multiset `leaves` of decomposed requirements.
///
/// The search applies each permitted scheme recursively; `[parent]` itself
/// is always reachable (no decomposition applied).
///
/// # Examples
///
/// ```
/// use qrn_hara::asil::Asil;
/// use qrn_quant::compare::can_decompose_to;
///
/// // D -> B(D) + B(D), then one B -> A(B) + A(B):
/// assert!(can_decompose_to(Asil::D, &[Asil::B, Asil::A, Asil::A]));
/// // but no chain ever reaches all-QM leaves:
/// assert!(!can_decompose_to(Asil::D, &[Asil::QM, Asil::QM, Asil::QM]));
/// ```
pub fn can_decompose_to(parent: Asil, leaves: &[Asil]) -> bool {
    let mut target = leaves.to_vec();
    target.sort();
    can_reach(parent, &target)
}

fn can_reach(parent: Asil, target: &[Asil]) -> bool {
    if target == [parent] {
        return true;
    }
    if target.len() < 2 {
        return false;
    }
    // Try every permitted split of `parent` into (a, b), and every way of
    // partitioning `target` into a sub-multiset reachable from `a` and the
    // remainder reachable from `b`.
    for (a, b) in valid_decompositions(parent) {
        // Enumerate sub-multisets by bitmask (targets are small).
        let n = target.len();
        for mask in 1..(1u32 << n) - 1 {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (i, &asil) in target.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    left.push(asil);
                } else {
                    right.push(asil);
                }
            }
            if can_reach(a, &left) && can_reach(b, &right) {
                return true;
            }
        }
    }
    false
}

/// The two-sided comparison for a redundant architecture of `n` identical
/// channels against a vehicle-level budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionComparison {
    /// The vehicle-level violation budget (e.g. the ASIL D target).
    pub budget: Frequency,
    /// Per-channel violation rate.
    pub channel_rate: Frequency,
    /// Number of redundant channels.
    pub channels: usize,
    /// Composed rate of the redundant architecture.
    pub combined_rate: Frequency,
    /// Whether the quantitative composition meets the budget.
    pub quantitative_ok: bool,
    /// The ASIL-equivalent of a single channel's rate (None = "QM range").
    pub channel_asil_equivalent: Option<Asil>,
    /// Whether ISO 26262-9 decomposition can assign each channel an
    /// integrity level matching its numeric rate (i.e. decompose an
    /// ASIL-D-grade parent into `channels` copies of the channel's
    /// equivalent level).
    pub asil_decomposition_ok: bool,
}

/// Builds the comparison for `n` identical redundant channels.
///
/// # Errors
///
/// Returns [`UnitError`] when `n` is zero (an empty AND gate has violation
/// probability 1).
pub fn compare_redundancy(
    budget: Frequency,
    channel_rate: Frequency,
    channels: usize,
) -> Result<DecompositionComparison, UnitError> {
    let arch = RateModel::all_of(
        (0..channels)
            .map(|i| RateModel::basic(Element::new(format!("channel-{i}"), channel_rate)))
            .collect(),
    );
    let combined_rate = arch.rate()?;
    let channel_asil_equivalent = asil_equivalent(channel_rate);
    let parent = asil_equivalent(budget).unwrap_or(Asil::D);
    // The qualitative route needs each channel to carry the level its rate
    // "earns": QM-range channels mean all-QM leaves.
    let leaves: Vec<Asil> = (0..channels)
        .map(|_| channel_asil_equivalent.unwrap_or(Asil::QM))
        .collect();
    let asil_decomposition_ok = can_decompose_to(parent, &leaves);
    Ok(DecompositionComparison {
        budget,
        channel_rate,
        channels,
        combined_rate,
        quantitative_ok: combined_rate <= budget,
        channel_asil_equivalent,
        asil_decomposition_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fph(x: f64) -> Frequency {
        Frequency::per_hour(x).unwrap()
    }

    #[test]
    fn asil_equivalents() {
        assert_eq!(asil_equivalent(fph(1e-8)), Some(Asil::D));
        assert_eq!(asil_equivalent(fph(1e-7)), Some(Asil::C));
        assert_eq!(asil_equivalent(fph(2e-7)), None);
        assert_eq!(asil_equivalent(fph(0.0)), Some(Asil::D));
    }

    #[test]
    fn decomposition_reachability_matches_standard() {
        // direct schemes
        assert!(can_decompose_to(Asil::D, &[Asil::C, Asil::A]));
        assert!(can_decompose_to(Asil::D, &[Asil::B, Asil::B]));
        assert!(can_decompose_to(Asil::D, &[Asil::D, Asil::QM]));
        // chained: D -> B+B -> (A+A)+B
        assert!(can_decompose_to(Asil::D, &[Asil::A, Asil::A, Asil::B]));
        // chained twice: D -> B+B -> A+A+A+A
        assert!(can_decompose_to(
            Asil::D,
            &[Asil::A, Asil::A, Asil::A, Asil::A]
        ));
        // illegal
        assert!(!can_decompose_to(Asil::D, &[Asil::A, Asil::A]));
        assert!(!can_decompose_to(Asil::C, &[Asil::A, Asil::A]));
        // trivial
        assert!(can_decompose_to(Asil::B, &[Asil::B]));
        assert!(!can_decompose_to(Asil::B, &[]));
    }

    #[test]
    fn no_chain_reaches_all_qm() {
        for parent in [Asil::A, Asil::B, Asil::C, Asil::D] {
            for n in 1..=4 {
                let leaves = vec![Asil::QM; n];
                assert!(
                    !can_decompose_to(parent, &leaves),
                    "{parent} -> {n} x QM should be impossible"
                );
            }
        }
    }

    #[test]
    fn drivable_area_example() {
        // Three diverse channels at 1e-3/h against the ASIL D target.
        let cmp = compare_redundancy(fph(1e-8), fph(1e-3), 3).unwrap();
        assert!(
            cmp.quantitative_ok,
            "combined {} vs 1e-8",
            cmp.combined_rate
        );
        assert_eq!(cmp.channel_asil_equivalent, None, "channels are QM-range");
        assert!(
            !cmp.asil_decomposition_ok,
            "no qualitative scheme D -> QM+QM+QM exists"
        );
    }

    #[test]
    fn two_channels_at_qm_rates_do_not_meet_d() {
        // 1e-3 * 1e-3 = 1e-6 > 1e-8: quantitative check honestly fails too.
        let cmp = compare_redundancy(fph(1e-8), fph(1e-3), 2).unwrap();
        assert!(!cmp.quantitative_ok);
    }

    #[test]
    fn zero_channels_is_an_error() {
        assert!(compare_redundancy(fph(1e-8), fph(1e-3), 0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let cmp = compare_redundancy(fph(1e-8), fph(1e-3), 3).unwrap();
        let back: DecompositionComparison =
            serde_json::from_str(&serde_json::to_string(&cmp).unwrap()).unwrap();
        assert_eq!(cmp, back);
    }
}
