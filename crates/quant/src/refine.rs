//! Refining a quantitative safety goal into an architecture and verifying
//! the composition.
//!
//! The QRN safety goal hands the solution domain a single number: the
//! maximum violation frequency. Refinement means proposing an architecture
//! ([`crate::ftree::RateModel`]) whose composed rate meets that number —
//! with ordinary arithmetic taking the place of ASIL inheritance.

use std::fmt;

use serde::{Deserialize, Serialize};

use qrn_units::{Frequency, UnitError};

use crate::ftree::RateModel;

/// A proposed refinement of one safety-goal budget into an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Refinement {
    /// The safety goal's violation budget.
    pub budget: Frequency,
    /// The proposed architecture.
    pub architecture: RateModel,
}

/// The outcome of verifying a refinement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinementReport {
    /// The goal budget.
    pub budget: Frequency,
    /// The architecture's composed violation rate (exact model).
    pub achieved: Frequency,
    /// `achieved / budget`, or `None` for a zero budget.
    pub utilisation: Option<f64>,
}

impl RefinementReport {
    /// Returns `true` when the composed rate meets the budget.
    pub fn meets_budget(&self) -> bool {
        self.achieved <= self.budget
    }

    /// Margin left under the budget (zero when over).
    pub fn margin(&self) -> Frequency {
        self.budget.saturating_sub(self.achieved)
    }
}

impl fmt::Display for RefinementReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "achieved {} vs budget {} -> {}",
            self.achieved,
            self.budget,
            if self.meets_budget() {
                "MEETS"
            } else {
                "EXCEEDS"
            }
        )
    }
}

impl Refinement {
    /// Creates a refinement.
    pub fn new(budget: Frequency, architecture: RateModel) -> Self {
        Refinement {
            budget,
            architecture,
        }
    }

    /// Verifies the composed rate against the budget, assuming element
    /// independence (see the common-cause warning on
    /// [`RateModel::hourly_probability`]).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a degenerate architecture whose violation
    /// probability is 1 (an empty AND gate).
    pub fn verify(&self) -> Result<RefinementReport, UnitError> {
        let achieved = self.architecture.rate()?;
        Ok(RefinementReport {
            budget: self.budget,
            achieved,
            utilisation: achieved.ratio(self.budget),
        })
    }

    /// Verifies the composed rate with exact common-cause treatment for
    /// shared element ids ([`RateModel::rate_exact`]). Always at least as
    /// pessimistic as [`Refinement::verify`] for coherent architectures.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] for a degenerate architecture whose violation
    /// probability is 1.
    pub fn verify_exact(&self) -> Result<RefinementReport, UnitError> {
        let achieved = self.architecture.rate_exact()?;
        Ok(RefinementReport {
            budget: self.budget,
            achieved,
            utilisation: achieved.ratio(self.budget),
        })
    }
}

/// Splits a budget equally across `n` series contributors: each gets
/// `budget / n`, so their OR-composition still meets the budget.
///
/// This is the quantitative analogue of "refine a safety goal into `n`
/// requirements" — and unlike ASIL inheritance, it *does* get harder per
/// element as `n` grows, which is exactly the paper's point about
/// complexity (Sec. V: thousands of inheriting elements keep full ASIL
/// under the qualitative rules, while here each would get a thousandth of
/// the budget).
///
/// # Errors
///
/// Returns [`UnitError`] when `n` is zero.
pub fn split_budget_equally(budget: Frequency, n: usize) -> Result<Frequency, UnitError> {
    if n == 0 {
        return Err(UnitError::OutOfRange {
            quantity: "number of budget shares",
            value: 0.0,
            min: 1.0,
            max: f64::MAX,
        });
    }
    budget.scaled(1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn fph(x: f64) -> Frequency {
        Frequency::per_hour(x).unwrap()
    }

    fn basic(id: &str, rate: f64) -> RateModel {
        RateModel::basic(Element::new(id, fph(rate)))
    }

    #[test]
    fn meeting_and_exceeding() {
        let ok = Refinement::new(fph(1e-6), basic("a", 1e-7))
            .verify()
            .unwrap();
        assert!(ok.meets_budget());
        assert!((ok.utilisation.unwrap() - 0.1).abs() < 1e-6);
        assert!(ok.margin() > Frequency::ZERO);

        let bad = Refinement::new(fph(1e-8), basic("a", 1e-7))
            .verify()
            .unwrap();
        assert!(!bad.meets_budget());
        assert_eq!(bad.margin(), Frequency::ZERO);
    }

    #[test]
    fn redundant_architecture_meets_tough_budget() {
        // The drivable-area example: three QM-grade channels redundantly.
        let arch = RateModel::all_of(vec![
            basic("cam", 1e-3),
            basic("lidar", 1e-3),
            basic("radar", 1e-3),
        ]);
        let report = Refinement::new(fph(1e-8), arch).verify().unwrap();
        assert!(report.meets_budget(), "{report}");
    }

    #[test]
    fn series_architecture_drains_budget_linearly() {
        let arch = RateModel::any_of((0..10).map(|i| basic(&format!("e{i}"), 1e-7)).collect());
        let report = Refinement::new(fph(1e-6), arch).verify().unwrap();
        assert!(report.meets_budget());
        assert!((report.utilisation.unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn split_budget_equally_composes_back() {
        let budget = fph(1e-6);
        let per_element = split_budget_equally(budget, 1000).unwrap();
        let arch = RateModel::any_of(
            (0..1000)
                .map(|i| basic(&format!("e{i}"), per_element.as_per_hour()))
                .collect(),
        );
        let report = Refinement::new(budget, arch).verify().unwrap();
        assert!(report.meets_budget());
        assert!(split_budget_equally(budget, 0).is_err());
    }

    #[test]
    fn exact_verification_catches_the_common_cause_trap() {
        let shared = || basic("shared-localisation", 2e-5);
        let arch = RateModel::all_of(vec![
            RateModel::any_of(vec![shared(), basic("cam", 1e-3)]),
            RateModel::any_of(vec![shared(), basic("lidar", 1e-3)]),
            RateModel::any_of(vec![shared(), basic("radar", 1e-3)]),
        ]);
        let refinement = Refinement::new(fph(1e-8), arch);
        // Naive independence says the budget is met…
        assert!(refinement.verify().unwrap().meets_budget());
        // …exact conditioning on the shared service says it is not.
        assert!(!refinement.verify_exact().unwrap().meets_budget());
    }

    #[test]
    fn report_display() {
        let r = Refinement::new(fph(1e-6), basic("a", 1e-7))
            .verify()
            .unwrap();
        assert!(r.to_string().contains("MEETS"));
    }

    #[test]
    fn serde_round_trip() {
        let r = Refinement::new(fph(1e-6), basic("a", 1e-7));
        let back: Refinement = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
