//! Quantitative assurance framework (Sec. V of the QRN paper).
//!
//! A safety goal produced by the QRN method carries a *numeric* integrity
//! attribute (a maximum violation frequency), so its refinement into an
//! architecture can use "traditional mathematical quantitative rules,
//! instead of the qualitative ordinary rules of ISO 26262 of ASIL
//! inheritance and ASIL decomposition". This crate provides:
//!
//! * [`element`] — architecture elements with violation-rate budgets,
//!   cause-agnostic ("one budget to be met by all contributing causes,
//!   regardless whether they could be described as systematic faults …
//!   random hardware faults; or as performance limitations").
//! * [`ftree`] — rate algebra over AND (redundancy) / OR (series)
//!   combinations, with both exact per-hour probability composition and
//!   the rare-event approximation.
//! * [`refine`] — refining a safety-goal budget into an architecture and
//!   verifying that the composed rate meets it.
//! * [`compare`] — the paper's drivable-area example: redundant channels
//!   whose individual rates are "in the QM range" composing to ASIL-D
//!   -grade integrity, which the qualitative decomposition menu cannot
//!   express.
//!
//! # Examples
//!
//! ```
//! use qrn_quant::element::Element;
//! use qrn_quant::ftree::RateModel;
//! use qrn_units::Frequency;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three diverse perception channels, each failing 1e-3 per hour.
//! let channel = |id: &str| -> Result<RateModel, qrn_units::UnitError> {
//!     Ok(RateModel::basic(Element::new(id, Frequency::per_hour(1e-3)?)))
//! };
//! let fused = RateModel::all_of(vec![channel("cam")?, channel("lidar")?, channel("radar")?]);
//! // Combined: ~1e-9 per hour, beyond the ASIL D target of 1e-8.
//! assert!(fused.rate()?.as_per_hour() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod element;
pub mod ftree;
pub mod importance;
pub mod refine;

pub use compare::{asil_equivalent, can_decompose_to, DecompositionComparison};
pub use element::Element;
pub use ftree::RateModel;
pub use importance::{birnbaum_importance, importance_ranking, ElementImportance};
pub use refine::{Refinement, RefinementReport};

#[cfg(test)]
mod proptests;
