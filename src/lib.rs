//! # qrn — The Quantitative Risk Norm toolkit
//!
//! A production-quality Rust implementation of the methodology of
//! *"The Quantitative Risk Norm — A Proposed Tailoring of HARA for ADS"*
//! (Warg, Johansson, Skoglund, Thorsén, Brännström, Gyllenhammar,
//! Sanfridson; DSN-W/SSIV 2020), together with every substrate needed to
//! exercise it end-to-end: the ISO 26262 HARA baseline it replaces, an ODD
//! model with contextual exposure, exact rare-event statistics, a
//! quantitative assurance framework, and a traffic simulator standing in
//! for fleet data.
//!
//! This crate is a facade: it re-exports the workspace crates as modules.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`units`] | `qrn-units` | typed quantities (frequency, speed, hours…) |
//! | [`stats`] | `qrn-stats` | exact Poisson/binomial intervals, SPRT, RNG |
//! | [`odd`] | `qrn-odd` | ODD specs, contexts, contextual exposure |
//! | [`hara`] | `qrn-hara` | S/E/C, ASIL, situation spaces, decomposition |
//! | [`core`] | `qrn-core` | the QRN: norm, MECE classification, Eq. (1), safety goals, verification |
//! | [`quant`] | `qrn-quant` | rate algebra, refinement, ASIL comparison |
//! | [`sim`] | `qrn-sim` | tactical policies, encounters, Monte Carlo |
//! | [`fleet`] | `qrn-fleet` | telemetry event logs, sharded ingest, budget burn-down monitoring |
//! | [`serve`] | `qrn-serve` | live evidence server: streaming ingest, burn-down queries, Prometheus metrics |
//! | [`store`] | `qrn-store` | append-only evidence store: durable segments, snapshots, time-travel replay |
//!
//! # The pipeline in five lines
//!
//! ```
//! use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let norm = paper_norm()?;                       // Fig. 2: acceptable risk
//! let classification = paper_classification()?;   // Fig. 4: MECE incident types
//! let allocation = paper_allocation(&classification)?; // Fig. 5: budgets + shares
//! assert!(allocation.check(&norm)?.is_fulfilled());    // Eq. (1)
//! let goals = qrn::core::safety_goal::derive_safety_goals(&classification, &allocation)?;
//! assert!(goals.iter().any(|g| g.id() == "SG-I2"));    // the paper's SG-I2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use qrn_core as core;
pub use qrn_fleet as fleet;
pub use qrn_hara as hara;
pub use qrn_odd as odd;
pub use qrn_quant as quant;
pub use qrn_serve as serve;
pub use qrn_sim as sim;
pub use qrn_stats as stats;
pub use qrn_store as store;
pub use qrn_units as units;
