//! End-to-end integration: ODD → norm → classification → allocation →
//! safety goals → simulation → statistical verdicts, across all crates.

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::safety_goal::{derive_with_certificate, goal_for};
use qrn::core::verification::{verify, MeasuredIncidents, Verdict};
use qrn::sim::faults::{Degradation, FaultPlan};
use qrn::sim::monte_carlo::Campaign;
use qrn::sim::policy::{CautiousPolicy, ReactivePolicy};
use qrn::sim::scenario::{mixed_scenario, urban_scenario};
use qrn::units::{Hours, Probability};

#[test]
fn paper_pipeline_holds_together() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();

    // Eq. (1) holds for the example allocation.
    let eq1 = allocation.check(&norm).unwrap();
    assert!(eq1.is_fulfilled());

    // One budgeted goal per MECE leaf, certificate holds.
    let (goals, certificate) = derive_with_certificate(&classification, &allocation).unwrap();
    assert!(certificate.holds());
    assert_eq!(goals.len(), classification.leaves().len());

    // The paper's named goal exists with the paper's wording.
    let sg_i2 = goal_for(&goals, &"I2".into()).unwrap();
    assert!(sg_i2.to_string().contains("Avoid collision Ego↔VRU"));
}

#[test]
fn simulated_fleet_feeds_verification() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();

    let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
        .hours(Hours::new(200.0).unwrap())
        .seed(1)
        .run()
        .unwrap();
    let (measured, non_incidents) = result.measured(&classification);

    // Every raw record is either classified or a benign closest approach.
    assert_eq!(
        measured.total() as usize + non_incidents,
        result.records.len()
    );

    // Verification runs and produces a verdict for every goal and class.
    let report = verify(&norm, &allocation, &measured, 0.95).unwrap();
    assert_eq!(report.goals.len(), classification.leaves().len());
    assert_eq!(report.classes.len(), norm.len());
}

#[test]
fn campaigns_are_reproducible_across_runs() {
    let run = || {
        Campaign::new(mixed_scenario().unwrap(), ReactivePolicy::default())
            .hours(Hours::new(80.0).unwrap())
            .seed(42)
            .workers(2)
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
}

#[test]
fn fault_injection_worsens_measured_rates() {
    let classification = paper_classification().unwrap();
    let run = |faults: FaultPlan, seed: u64| {
        let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(Hours::new(400.0).unwrap())
            .seed(seed)
            .faults(faults)
            .run()
            .unwrap();
        result.measured(&classification).0
    };
    let healthy = run(FaultPlan::none(), 5);
    let degraded = run(
        FaultPlan {
            brake: Some(Degradation {
                probability: Probability::new(0.5).unwrap(),
                factor: 0.3,
            }),
            sensor: Some(Degradation {
                probability: Probability::new(0.2).unwrap(),
                factor: 0.4,
            }),
        },
        5,
    );
    // Collisions in the severe VRU band go up under degradation.
    let severe = |m: &MeasuredIncidents| m.count(&"I3".into()) + m.count(&"I4".into());
    assert!(
        severe(&degraded) > severe(&healthy),
        "degraded {} vs healthy {}",
        severe(&degraded),
        severe(&healthy)
    );
}

#[test]
fn pooling_measurements_tightens_bounds() {
    let classification = paper_classification().unwrap();
    let run = |seed: u64| {
        Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
            .hours(Hours::new(100.0).unwrap())
            .seed(seed)
            .run()
            .unwrap()
            .measured(&classification)
            .0
    };
    let a = run(10);
    let b = run(11);
    let pooled = a.clone().merged(&b);
    assert_eq!(pooled.exposure(), Hours::new(200.0).unwrap());
    // The pooled upper bound on a rare type is tighter than either part's.
    let id = "I4".into();
    let bound = |m: &MeasuredIncidents| m.observation(&id).upper_bound(0.95).unwrap();
    assert!(bound(&pooled) <= bound(&a));
    assert!(bound(&pooled) <= bound(&b));
}

#[test]
fn verdicts_move_in_the_right_direction_with_exposure() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    // Zero incidents: with little exposure everything is inconclusive,
    // with astronomic exposure everything is demonstrated.
    let short = MeasuredIncidents::new(Default::default(), Hours::new(1.0).unwrap());
    let long = MeasuredIncidents::new(Default::default(), Hours::new(1e13).unwrap());
    let short_report = verify(&norm, &allocation, &short, 0.95).unwrap();
    let long_report = verify(&norm, &allocation, &long, 0.95).unwrap();
    assert!(short_report
        .goals
        .iter()
        .all(|g| g.verdict == Verdict::Inconclusive));
    assert!(long_report.all_demonstrated());
}
