//! End-to-end evidence-ledger pipeline: campaigns and splitting runs emit
//! ledgers, fleet ingest builds a ledger-backed state, and the combined
//! burn-down consumes the merged whole — with golden guards on the
//! checked-in experiment artefacts.

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::verification::{verify, verify_evidence};
use qrn::fleet::burndown::{burn_down_evidence, BurnDownConfig, REPORT_SCHEMA_VERSION};
use qrn::fleet::ingest::ingest_str;
use qrn::fleet::telemetry::{Policy, Scenario, TelemetryConfig};
use qrn::sim::monte_carlo::Campaign;
use qrn::sim::policy::{CautiousPolicy, ReactivePolicy};
use qrn::sim::scenario::urban_scenario;
use qrn::sim::SplittingConfig;
use qrn::stats::evidence::EvidenceLedger;
use qrn::units::Hours;

/// The combined design-time + operational burn-down artefact is a pure
/// function of the evidence: worker counts, shard counts and merge order
/// must never change a byte of it.
#[test]
fn combined_burn_down_artefact_is_byte_stable() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let log = TelemetryConfig::new(4)
        .scenario(Scenario::Urban)
        .policy(Policy::Cautious)
        .hours(Hours::new(60.0).unwrap())
        .seed(5)
        .generate_jsonl()
        .unwrap();

    let build = |workers: usize, shards: usize, flip_merge: bool| {
        let splitting = Campaign::new(urban_scenario().unwrap(), ReactivePolicy::default())
            .hours(Hours::new(30.0).unwrap())
            .seed(9)
            .workers(workers)
            .run_splitting(&classification, &SplittingConfig::geometric(4))
            .unwrap();
        let state = ingest_str(&log, &classification, shards).unwrap();
        let mut combined = if flip_merge {
            let mut c = splitting.evidence.clone();
            c.merge(state.evidence());
            c
        } else {
            let mut c = state.evidence().clone();
            c.merge(&splitting.evidence);
            c
        };
        // Merging an empty ledger is the identity.
        combined.merge(&EvidenceLedger::new());
        let config = BurnDownConfig {
            by_zone: true,
            ..BurnDownConfig::default()
        };
        let report = burn_down_evidence(&norm, &allocation, &combined, &config).unwrap();
        serde_json::to_string_pretty(&report).unwrap()
    };

    let reference = build(1, 1, false);
    assert_eq!(
        reference,
        build(4, 7, false),
        "workers/shards changed bytes"
    );
    assert_eq!(reference, build(2, 3, true), "merge order changed bytes");

    let report: qrn::fleet::burndown::FleetReport = serde_json::from_str(&reference).unwrap();
    assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
    assert!((report.exposure_hours - 90.0).abs() < 1e-6);
    assert!(!report.zones.is_empty(), "splitting zones must survive");
}

/// The unit-weight ledger path is exact: verifying a crude campaign via
/// its evidence ledger must agree with the classic record-tally path on
/// every verdict and bound.
#[test]
fn crude_ledger_verification_matches_record_tally() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
        .hours(Hours::new(150.0).unwrap())
        .seed(3)
        .run()
        .unwrap();
    let (measured, _) = result.measured(&classification);
    let ledger = result.evidence(&classification);

    let classic = verify(&norm, &allocation, &measured, 0.95).unwrap();
    let via_ledger = verify_evidence(&norm, &allocation, &ledger, 0.95).unwrap();
    assert_eq!(classic.goals.len(), via_ledger.goals.len());
    for (a, b) in classic.goals.iter().zip(&via_ledger.goals) {
        assert_eq!(a.incident, b.incident);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.observed, b.observed);
        assert_eq!(a.upper_bound, b.upper_bound);
        assert!(b.weighted.is_none(), "unit-weight evidence must stay exact");
    }
}

/// Golden guard: the checked-in experiment artefacts keep their schema.
/// CI regenerates them and fails on any byte drift; this test documents
/// (and locally enforces) the key layout a reader of `results/` relies on.
#[test]
fn checked_in_experiment_artefacts_keep_their_schema() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let read = |name: &str| -> String {
        std::fs::read_to_string(root.join("results").join(name)).unwrap()
    };

    let eq1 = read("exp_eq1_montecarlo.json");
    for key in [
        "allocation_margin",
        "budget_margin",
        "eq1_fulfilled",
        "fault_injected",
        "hours",
        "verification",
    ] {
        assert!(
            eq1.contains(&format!("\"{key}\"")),
            "exp_eq1_montecarlo.json lost {key}"
        );
    }

    let rare = read("exp_rare_event.json");
    for key in [
        "cross_check",
        "crude",
        "quick",
        "rare_leaf",
        "splitting",
        "variance_reduction",
        "world",
    ] {
        assert!(
            rare.contains(&format!("\"{key}\"")),
            "exp_rare_event.json lost {key}"
        );
    }
    // The checked-in artefact is the full-budget run, not the CI smoke.
    assert!(rare.contains("\"quick\": false"));
}
