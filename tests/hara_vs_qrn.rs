//! Integration of the baseline (ISO 26262 HARA, ASIL algebra) with the QRN
//! route: the comparisons the paper's Secs. II and V make, checked.

use qrn::core::examples::{paper_allocation, paper_classification};
use qrn::core::safety_goal::derive_with_certificate;
use qrn::hara::analysis::{CompletenessAssumption, Hara, HazardousEvent};
use qrn::hara::asil::Asil;
use qrn::hara::hazard::{hazop_matrix, Guideword, Hazard};
use qrn::hara::severity::{Controllability, Exposure, Severity};
use qrn::hara::situation::{ads_situation_dimensions, SituationSpace};
use qrn::quant::compare::{can_decompose_to, compare_redundancy};
use qrn::quant::refine::{split_budget_equally, Refinement};
use qrn::quant::{Element, RateModel};
use qrn::units::Frequency;

#[test]
fn situation_space_grows_while_qrn_leaves_do_not() {
    let leaves = paper_classification().unwrap().leaves().len();
    let mut previous = 0u128;
    for detail in 1..=4 {
        let space = SituationSpace::new(ads_situation_dimensions(detail));
        assert!(space.cardinality() > previous);
        previous = space.cardinality();
        // The QRN incident-type count is independent of the detail knob.
        assert_eq!(paper_classification().unwrap().leaves().len(), leaves);
    }
    assert!(previous > 1_000_000_000_000u128);
}

#[test]
fn classical_hara_carries_undischargeable_assumptions() {
    let mut hara = Hara::new("ADS item");
    let situation = SituationSpace::new(ads_situation_dimensions(1))
        .situation_at(0)
        .unwrap();
    hara.add_event(HazardousEvent::new(
        Hazard::new("H1", "braking", Guideword::TooLittle),
        situation,
        Severity::S3,
        Exposure::E4,
        Controllability::C3,
    ));
    // The four assumptions are exactly the paper's four critiques.
    assert_eq!(hara.completeness_assumptions().len(), 4);
    assert!(hara
        .completeness_assumptions()
        .contains(&CompletenessAssumption::ExposureIsGivenInput));
    // And the qualitative route tops out at one ASIL-D goal per hazard.
    let goals = hara.safety_goals();
    assert_eq!(goals.len(), 1);
    assert_eq!(goals[0].asil, Asil::D);
}

#[test]
fn qrn_certificate_replaces_situation_completeness() {
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let (_, certificate) = derive_with_certificate(&classification, &allocation).unwrap();
    assert!(certificate.holds());
    // The certificate's probe budget is trivially small compared to any
    // situation space — completeness became checkable.
    assert!(certificate.mece.probes < 100_000);
}

#[test]
fn hazop_scales_linearly_but_situations_multiply() {
    let hazards = hazop_matrix(&["braking", "steering"]);
    assert_eq!(hazards.len(), 16);
    let space = SituationSpace::new(ads_situation_dimensions(1));
    let hes = space.cardinality() * hazards.len() as u128;
    assert_eq!(hes, space.cardinality() * 16);
}

#[test]
fn quantitative_route_credits_what_asil_decomposition_cannot() {
    let budget = Frequency::per_hour(1e-8).unwrap();
    let channel = Frequency::per_hour(1e-3).unwrap();
    let cmp = compare_redundancy(budget, channel, 3).unwrap();
    assert!(cmp.quantitative_ok);
    assert!(!cmp.asil_decomposition_ok);
    // The equivalent qualitative question: can D reach three QM leaves?
    assert!(!can_decompose_to(Asil::D, &[Asil::QM, Asil::QM, Asil::QM]));
    // While a legal scheme like B+B is of course reachable.
    assert!(can_decompose_to(Asil::D, &[Asil::B, Asil::B]));
}

#[test]
fn budget_splitting_composes_back_to_the_goal() {
    // An SG budget refined into 50 series elements still meets the goal
    // when each element meets its split budget.
    let budget = Frequency::per_hour(1e-6).unwrap();
    let per_element = split_budget_equally(budget, 50).unwrap();
    let architecture = RateModel::any_of(
        (0..50)
            .map(|i| RateModel::basic(Element::new(format!("sw-{i}"), per_element)))
            .collect(),
    );
    let report = Refinement::new(budget, architecture).verify().unwrap();
    assert!(report.meets_budget());
    // ASIL inheritance on the same fan-out keeps full integrity on every
    // element — the qualitative calculus never gets harder with n.
    let mut requirement = qrn::hara::decomposition::Requirement::new("SG", Asil::D);
    requirement.inherit(50);
    assert_eq!(requirement.leaves_at_or_above(Asil::D), 50);
}

#[test]
fn asil_targets_anchor_the_quantitative_frame() {
    // The rate targets that make "QM-range" a meaningful phrase.
    assert!(Asil::D.random_hw_fault_target().unwrap() < Asil::B.random_hw_fault_target().unwrap());
    assert_eq!(Asil::A.random_hw_fault_target(), None);
}
