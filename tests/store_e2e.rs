//! End-to-end tests of the store-backed evidence server over real
//! localhost TCP: store recovery versus the checkpoint path (byte
//! identity), and `?as_of=` time travel versus the offline report
//! pipeline (byte identity, no SPRT look spent).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::fleet::burndown::{burn_down, BurnDownConfig, FleetReport};
use qrn::fleet::ingest::{ingest_str, FleetState};
use qrn::fleet::telemetry::TelemetryConfig;
use qrn::serve::{ServeConfig, Server};
use qrn::store::StoreReader;
use qrn::units::Hours;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qrn-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_config(store: &std::path::Path) -> ServeConfig {
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let mut config = ServeConfig::new(paper_norm().unwrap(), classification, allocation);
    config.port = 0;
    config.workers = 2;
    config.io_timeout = Duration::from_secs(5);
    config.shards = 2;
    config.store = Some(store.to_path_buf());
    config
}

/// One raw HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, &format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// One sequenced telemetry log split into three upload batches.
/// Splitting *after* seq stamping keeps every vehicle's sequence
/// monotone across batches, so the store's screening accepts them all.
fn sequenced_batches() -> Vec<String> {
    let log = TelemetryConfig::new(4)
        .hours(Hours::new(96.0).unwrap())
        .seed(5)
        .stamp_seq(true)
        .generate_jsonl()
        .unwrap();
    let lines: Vec<&str> = log.lines().collect();
    let per_batch = lines.len().div_ceil(3);
    lines
        .chunks(per_batch)
        .map(|chunk| {
            let mut batch = String::new();
            for line in chunk {
                batch.push_str(line);
                batch.push('\n');
            }
            batch
        })
        .collect()
}

/// The offline fold of the same batches: `qrn fleet ingest` semantics.
fn offline_state(batches: &[String]) -> FleetState {
    let classification = paper_classification().unwrap();
    let mut state = FleetState::default();
    for batch in batches {
        state.merge(&ingest_str(batch, &classification, 4).unwrap());
    }
    state
}

fn offline_report(batches: &[String]) -> String {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    burn_down(
        &norm,
        &allocation,
        &offline_state(batches),
        &BurnDownConfig::default(),
    )
    .unwrap()
    .to_canonical_json()
}

fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[test]
fn store_recovery_is_byte_identical_to_the_checkpoint_path() {
    let dir = temp_dir("recovery");
    let store_dir = dir.join("store");
    let mut config = test_config(&store_dir);
    // Both durability paths at once: every accepted batch goes to the
    // store, and the graceful drain writes a final checkpoint.
    let checkpoint = dir.join("live-state.json");
    config.checkpoint = Some(checkpoint.clone());

    let batches = sequenced_batches();
    let handle = Server::start(config.clone()).unwrap();
    let addr = handle.addr();
    for batch in &batches {
        let (status, body) = post(addr, "/v1/ingest", batch);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"stored\": true"), "{body}");
    }
    handle.stop().unwrap();

    // The store's full replay folds to exactly the bytes the checkpoint
    // holds — two independent durability paths, one state.
    let reader = StoreReader::open(
        &store_dir.join("default"),
        paper_classification().unwrap(),
        3,
    )
    .unwrap();
    let replayed = reader.fold_as_of(None).unwrap();
    assert_eq!(
        std::fs::read_to_string(&checkpoint).unwrap(),
        serde_json::to_string_pretty(&replayed.state).unwrap(),
        "store replay differs from the final checkpoint"
    );
    assert_eq!(
        serde_json::to_string_pretty(&replayed.state).unwrap(),
        serde_json::to_string_pretty(&offline_state(&batches)).unwrap(),
        "store replay differs from offline ingest"
    );

    // A restarted store-backed server (no checkpoint configured) serves
    // the identical burn-down: recovery comes from the store alone. The
    // first look matches the offline report's one and only look.
    let mut config = test_config(&store_dir);
    config.checkpoint = None;
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();
    let (status, body) = get(addr, "/v1/burndown");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, offline_report(&batches));
    handle.stop().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn as_of_time_travel_matches_the_offline_report_and_spends_no_look() {
    let dir = temp_dir("as-of");
    let store_dir = dir.join("store");
    let batches = sequenced_batches();
    let handle = Server::start(test_config(&store_dir)).unwrap();
    let addr = handle.addr();

    // First batch, then a cut timestamp strictly between the first and
    // second append (record timestamps come from the server's clock and
    // are forced monotone, so sleeping past the cut keeps it strict).
    let (status, body) = post(addr, "/v1/ingest", &batches[0]);
    assert_eq!(status, 200, "{body}");
    let cut = now_millis();
    std::thread::sleep(Duration::from_millis(25));
    for batch in &batches[1..] {
        assert_eq!(post(addr, "/v1/ingest", batch).0, 200);
    }

    // Time travel to the cut sees exactly the first batch, rendered
    // byte-identically to the offline `fleet report` pipeline; the far
    // future sees everything.
    let (status, body) = get(addr, &format!("/v1/burndown?as_of={cut}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, offline_report(&batches[..1]));
    let (status, body) = get(addr, &format!("/v1/burndown?as_of={}", u64::MAX));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, offline_report(&batches));

    // The history timeline is served and non-trivial.
    let (status, body) = get(addr, "/v1/history");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"points\""), "{body}");

    // Historical replays are audits, not decisions: the live burn-down
    // below is still the *first* SPRT look.
    let (status, body) = get(addr, "/v1/burndown");
    assert_eq!(status, 200, "{body}");
    let report: FleetReport = serde_json::from_str(&body).unwrap();
    assert!(report.goals.iter().all(|g| g.looks == 1), "{body}");

    // Malformed cuts are client errors, not replays.
    assert_eq!(get(addr, "/v1/burndown?as_of=yesterday").0, 400);
    handle.stop().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
