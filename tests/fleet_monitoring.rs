//! End-to-end fleet monitoring through the facade: synthetic telemetry →
//! JSONL → sharded ingest → burn-down report, with the two contract
//! properties the subsystem exists for:
//!
//! 1. **Determinism**: the serialised [`FleetReport`] is byte-identical
//!    for any ingest shard count (1 vs 8), because the block partition of
//!    the log depends only on the log, never on scheduling.
//! 2. **Alerting**: a deliberately over-budget incident type comes out
//!    `Burned` with the sequential test at `AcceptAlternative`.

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::incident::IncidentRecord;
use qrn::core::object::{Involvement, ObjectType};
use qrn::fleet::burndown::{burn_down, AlertLevel, BurnDownConfig};
use qrn::fleet::event::{parse_jsonl, to_jsonl};
use qrn::fleet::ingest::ingest_str;
use qrn::fleet::telemetry::TelemetryConfig;
use qrn::stats::sequential::SprtDecision;
use qrn::units::{Hours, Speed};

fn telemetry_log(hours: f64, injected_crashes: u64) -> String {
    let crash = IncidentRecord::collision(
        Involvement::ego_with(ObjectType::Vru),
        Speed::from_kmh(45.0).unwrap(),
    );
    let events = TelemetryConfig::new(6)
        .hours(Hours::new(hours).unwrap())
        .seed(1234)
        .inject(crash, injected_crashes)
        .generate()
        .unwrap();
    to_jsonl(&events)
}

#[test]
fn report_bytes_identical_for_one_and_eight_shards() {
    let log = telemetry_log(90.0, 5);
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();

    let mut jsons = Vec::new();
    for shards in [1usize, 8] {
        let state = ingest_str(&log, &classification, shards).unwrap();
        let report = burn_down(&norm, &allocation, &state, &BurnDownConfig::default()).unwrap();
        jsons.push(report.to_canonical_json());
    }
    assert_eq!(jsons[0], jsons[1]);
}

#[test]
fn over_budget_incident_type_is_burned_with_accept_alternative() {
    // 15 injected severe VRU collisions in 120 h against I3's ~1e-8/h
    // budget: the SPRT must conclude for the alternative and the row must
    // escalate to Burned.
    let log = telemetry_log(120.0, 15);
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let state = ingest_str(&log, &classification, 4).unwrap();
    let report = burn_down(&norm, &allocation, &state, &BurnDownConfig::default()).unwrap();

    let i3 = report.goal(&"I3".into()).expect("I3 is allocated");
    assert_eq!(i3.sprt, SprtDecision::AcceptAlternative);
    assert_eq!(i3.alert, AlertLevel::Burned);
    assert!(i3.observed.count >= 15);
    assert!(report.any_burned());
    // The burn propagates to the consequence classes I3 feeds.
    assert_eq!(
        report.class(&"vS3".into()).unwrap().alert,
        AlertLevel::Burned
    );
}

#[test]
fn tolerant_parser_survives_a_corrupted_log_segment() {
    let clean = telemetry_log(50.0, 0);
    let clean_events = parse_jsonl(&clean).0.len();
    // Corrupt the stream the ways real pipelines do: truncation garbage,
    // a future schema version, and an unknown event kind.
    let dirty = format!(
        "{clean}{{\"v\":1,\"event\":\"exposure\",\"vehicle\"\n\
         {{\"v\":99,\"event\":\"exposure\",\"vehicle\":\"V9\",\"hours\":1.0}}\n\
         {{\"v\":1,\"event\":\"teleport\",\"vehicle\":\"V9\"}}\n"
    );
    let classification = paper_classification().unwrap();
    let state = ingest_str(&dirty, &classification, 3).unwrap();
    assert_eq!(state.events(), clean_events as u64);
    assert_eq!(state.skipped().total(), 3);
    // The corrupted tail never changes the monitored quantities.
    let clean_state = ingest_str(&clean, &classification, 3).unwrap();
    assert_eq!(state.exposure(), clean_state.exposure());
    assert_eq!(
        state.counts().collect::<Vec<_>>(),
        clean_state.counts().collect::<Vec<_>>()
    );
}

/// Scale demonstration: a hundred-thousand-hour fleet streamed through
/// generation, ingest and burn-down. Run explicitly (release mode
/// recommended): `cargo test --release --test fleet_monitoring -- --ignored`.
#[test]
#[ignore = "long-running scale demonstration"]
fn hundred_thousand_hour_fleet_burns_down() {
    let log = telemetry_log(100_000.0, 50);
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let state = ingest_str(&log, &classification, 8).unwrap();
    assert!((state.exposure().value() - 100_000.0).abs() < 1e-6 * 100_000.0);
    let report = burn_down(&norm, &allocation, &state, &BurnDownConfig::default()).unwrap();
    assert_eq!(
        report.goal(&"I3".into()).unwrap().sprt,
        SprtDecision::AcceptAlternative
    );
    assert!(report.any_burned());
}
