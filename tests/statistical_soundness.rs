//! Statistical soundness of the verification machinery, checked by
//! simulation: exact bounds must actually cover at their nominal rate, and
//! demonstration decisions must be consistent under pooling.

use qrn::stats::poisson::{required_exposure_zero_events, PoissonRate};
use qrn::stats::rng::{poisson, seeded};
use qrn::stats::sequential::{PoissonSprt, SprtDecision};
use qrn::units::{Frequency, Hours};

#[test]
fn garwood_interval_covers_at_nominal_rate() {
    // Simulate many Poisson experiments at a known rate; the 90% interval
    // must contain the truth in ≥ ~90% of them (Garwood is conservative).
    let true_rate = 3.0e-4;
    let exposure = Hours::new(20_000.0).unwrap();
    let mean = true_rate * exposure.value();
    let mut rng = seeded(1234);
    let trials = 4_000;
    let mut covered = 0;
    for _ in 0..trials {
        let k = poisson(&mut rng, mean);
        let ci = PoissonRate::new(k, exposure)
            .confidence_interval(0.90)
            .unwrap();
        if ci.contains(Frequency::per_hour(true_rate).unwrap()) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        coverage >= 0.90 - 0.015,
        "coverage {coverage} below nominal 0.90"
    );
    assert!(coverage <= 1.0);
}

#[test]
fn upper_bound_is_an_honest_demonstration_criterion() {
    // Type-I error: when the true rate EQUALS the budget, claiming
    // "demonstrated below budget" at 95% must happen in at most ~5% of
    // campaigns.
    let budget = 1.0e-3;
    let exposure = Hours::new(50_000.0).unwrap();
    let mean = budget * exposure.value();
    let mut rng = seeded(99);
    let trials = 2_000;
    let mut false_demonstrations = 0;
    for _ in 0..trials {
        let k = poisson(&mut rng, mean);
        let obs = PoissonRate::new(k, exposure);
        if obs
            .demonstrates_below(Frequency::per_hour(budget).unwrap(), 0.95)
            .unwrap()
        {
            false_demonstrations += 1;
        }
    }
    let rate = false_demonstrations as f64 / trials as f64;
    assert!(rate <= 0.05 + 0.01, "false demonstration rate {rate}");
}

#[test]
fn rule_of_three_boundary_is_exact() {
    // At exactly the required exposure with zero events, the demonstration
    // succeeds; just below it, it fails.
    let budget = Frequency::per_hour(1e-6).unwrap();
    let needed = required_exposure_zero_events(budget, 0.95).unwrap();
    let just_enough = PoissonRate::new(0, Hours::new(needed.value() * 1.0001).unwrap());
    let not_enough = PoissonRate::new(0, Hours::new(needed.value() * 0.9999).unwrap());
    assert!(just_enough.demonstrates_below(budget, 0.95).unwrap());
    assert!(!not_enough.demonstrates_below(budget, 0.95).unwrap());
}

#[test]
fn sprt_errors_stay_near_nominal() {
    // Under H0 (low rate), the SPRT should rarely accept H1.
    let r0 = 1e-5;
    let r1 = 1e-4;
    let sprt = PoissonSprt::new(
        Frequency::per_hour(r0).unwrap(),
        Frequency::per_hour(r1).unwrap(),
        0.05,
        0.05,
    )
    .unwrap();
    let mut rng = seeded(7);
    let trials = 500;
    let mut wrong = 0;
    for _ in 0..trials {
        // Feed evidence in chunks until a decision.
        let chunk = Hours::new(20_000.0).unwrap();
        let mut events = 0u64;
        let mut exposure = 0.0;
        let decision = loop {
            events += poisson(&mut rng, r0 * chunk.value());
            exposure += chunk.value();
            match sprt.decide(events, Hours::new(exposure).unwrap()) {
                SprtDecision::Continue => continue,
                other => break other,
            }
        };
        if decision == SprtDecision::AcceptAlternative {
            wrong += 1;
        }
    }
    let alpha_hat = wrong as f64 / trials as f64;
    assert!(alpha_hat <= 0.05 + 0.02, "empirical alpha {alpha_hat}");
}

#[test]
fn pooled_observation_equals_single_long_campaign() {
    let a = PoissonRate::new(2, Hours::new(1e4).unwrap());
    let b = PoissonRate::new(3, Hours::new(4e4).unwrap());
    let pooled = a.merged(b);
    let single = PoissonRate::new(5, Hours::new(5e4).unwrap());
    assert_eq!(pooled, single);
    assert_eq!(
        pooled.upper_bound(0.95).unwrap(),
        single.upper_bound(0.95).unwrap()
    );
}
