//! Cross-crate serde integration: a complete safety-case bundle survives a
//! JSON round trip bit-for-bit. In practice this is the artefact a safety
//! organisation would check into its evidence store.

use serde::{Deserialize, Serialize};

use qrn::core::allocation::Allocation;
use qrn::core::classification::IncidentClassification;
use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::norm::QuantitativeRiskNorm;
use qrn::core::safety_goal::{derive_with_certificate, CompletenessCertificate, SafetyGoal};
use qrn::core::verification::{verify, MeasuredIncidents, VerificationReport};
use qrn::odd::attribute::{Constraint, Dimension};
use qrn::odd::spec::OddSpec;
use qrn::sim::monte_carlo::Campaign;
use qrn::sim::policy::CautiousPolicy;
use qrn::sim::scenario::urban_scenario;
use qrn::units::Hours;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct SafetyCaseBundle {
    odd: OddSpec,
    norm: QuantitativeRiskNorm,
    classification: IncidentClassification,
    allocation: Allocation,
    goals: Vec<SafetyGoal>,
    certificate: CompletenessCertificate,
    measured: MeasuredIncidents,
    report: VerificationReport,
}

fn bundle() -> SafetyCaseBundle {
    let odd = OddSpec::builder()
        .constrain(
            Dimension::new("zone"),
            Constraint::any_of(["residential", "school", "arterial"]),
        )
        .constrain(
            Dimension::new("speed_limit_kmh"),
            Constraint::range(0.0, 60.0).unwrap(),
        )
        .build();
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let (goals, certificate) = derive_with_certificate(&classification, &allocation).unwrap();
    let result = Campaign::new(urban_scenario().unwrap(), CautiousPolicy::default())
        .hours(Hours::new(60.0).unwrap())
        .seed(3)
        .run()
        .unwrap();
    let (measured, _) = result.measured(&classification);
    let report = verify(&norm, &allocation, &measured, 0.95).unwrap();
    SafetyCaseBundle {
        odd,
        norm,
        classification,
        allocation,
        goals,
        certificate,
        measured,
        report,
    }
}

#[test]
fn bundle_round_trips_exactly() {
    let original = bundle();
    let json = serde_json::to_string_pretty(&original).unwrap();
    let back: SafetyCaseBundle = serde_json::from_str(&json).unwrap();
    assert_eq!(original, back);
}

#[test]
fn deserialized_bundle_is_still_checkable() {
    let original = bundle();
    let json = serde_json::to_string(&original).unwrap();
    let back: SafetyCaseBundle = serde_json::from_str(&json).unwrap();

    // Re-running the checks on the deserialized artefacts reproduces the
    // stored conclusions — the bundle is evidence, not just data.
    assert!(back.allocation.check(&back.norm).unwrap().is_fulfilled());
    assert!(back.certificate.holds());
    let recheck = verify(&back.norm, &back.allocation, &back.measured, 0.95).unwrap();
    assert_eq!(recheck, back.report);
    let mece = back.classification.verify_mece();
    assert!(mece.is_mece());
}

#[test]
fn bundle_json_is_human_greppable() {
    let json = serde_json::to_string_pretty(&bundle()).unwrap();
    // The artefact should read like the safety case it encodes.
    for needle in ["vS3", "I2", "EgoVru", "confidence", "budget"] {
        assert!(json.contains(needle), "bundle JSON lacks {needle}");
    }
}
