//! Empirical validation of the contextual exposure model (Sec. II-B.4):
//! the simulator's observed per-zone challenge rates must match the rates
//! the `qrn-odd` exposure model prescribes, within exact statistical
//! bounds — closing the loop between the model and the world it drives.

use qrn::odd::context::{Context, Value};
use qrn::odd::exposure::SituationalFactor;
use qrn::sim::monte_carlo::Campaign;
use qrn::sim::policy::CautiousPolicy;
use qrn::sim::scenario::{urban_scenario, zone_dimension};
use qrn::stats::poisson::{rate_equality_p_value, PoissonRate};
use qrn::units::Hours;

#[test]
fn observed_zone_rates_match_the_configured_model() {
    let config = urban_scenario().unwrap();
    let result = Campaign::new(config.clone(), CautiousPolicy::default())
        .hours(Hours::new(600.0).unwrap())
        .seed(21)
        .workers(8)
        .run()
        .unwrap();

    for zone in &config.zones {
        // The configured total challenge rate in this zone.
        let expected: f64 = config
            .challenges
            .iter()
            .map(|c| {
                config
                    .exposure
                    .rate(&c.factor, &zone.context)
                    .expect("factors have base rates")
                    .as_per_hour()
            })
            .sum();
        let observed = result
            .zone_encounter_rate(&zone.name)
            .expect("zone visited")
            .as_per_hour();
        // Within 3 sigma of the Poisson expectation.
        let hours = result.zone_exposure(&zone.name).value();
        let sigma = (expected / hours).sqrt();
        assert!(
            (observed - expected).abs() < 4.0 * sigma,
            "zone {}: observed {observed}/h vs configured {expected}/h (sigma {sigma})",
            zone.name
        );
    }
}

#[test]
fn school_multiplier_is_statistically_established() {
    let config = urban_scenario().unwrap();
    let result = Campaign::new(config.clone(), CautiousPolicy::default())
        .hours(Hours::new(600.0).unwrap())
        .seed(22)
        .workers(8)
        .run()
        .unwrap();

    // Compare observed school vs residential encounter *counts* with the
    // exact conditional test: under equal rates the p-value would be
    // large; the 8x pedestrian multiplier must reject equality decisively.
    let count = |zone: &str| -> PoissonRate {
        let hours = result.zone_exposure(zone);
        let events = (result.zone_encounter_rate(zone).unwrap().as_per_hour() * hours.value())
            .round() as u64;
        PoissonRate::new(events, hours)
    };
    let p = rate_equality_p_value(count("school"), count("residential")).unwrap();
    assert!(p < 1e-6, "school/residential equality p-value {p}");

    // Sanity: the model itself prescribes the ratio we are detecting.
    let ped = SituationalFactor::new("pedestrian_crossing");
    let school_ctx = Context::builder()
        .set(zone_dimension(), Value::category("school"))
        .build();
    let residential_ctx = Context::builder()
        .set(zone_dimension(), Value::category("residential"))
        .build();
    let ratio = config
        .exposure
        .rate(&ped, &school_ctx)
        .unwrap()
        .as_per_hour()
        / config
            .exposure
            .rate(&ped, &residential_ctx)
            .unwrap()
            .as_per_hour();
    assert!((ratio - 8.0).abs() < 1e-9);
}
