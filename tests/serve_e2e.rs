//! End-to-end tests of the live evidence server over real localhost TCP:
//! concurrent ingest determinism, checkpoint byte-identity with the
//! offline pipeline, protocol defence (413/400-skip/429) and graceful
//! drain with look-counter persistence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::fleet::burndown::{burn_down, BurnDownConfig, FleetReport};
use qrn::fleet::ingest::{ingest_str, FleetState};
use qrn::fleet::telemetry::TelemetryConfig;
use qrn::serve::{ServeConfig, Server};
use qrn::stats::prometheus::validate_exposition;
use qrn::units::Hours;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qrn-serve-e2e-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_config(tag: &str) -> (ServeConfig, PathBuf) {
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    let mut config = ServeConfig::new(paper_norm().unwrap(), classification, allocation);
    config.port = 0;
    config.workers = 3;
    config.io_timeout = Duration::from_secs(5);
    config.shards = 2;
    let checkpoint = temp_dir(tag).join("live-state.json");
    let _ = std::fs::remove_file(&checkpoint);
    let _ = std::fs::remove_file(temp_dir(tag).join("live-state.json.looks.json"));
    config.checkpoint = Some(checkpoint.clone());
    (config, checkpoint)
}

/// One raw HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, &format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Three disjoint telemetry segments with dyadic exposure chunks, so
/// float folds are exact and merge order cannot matter.
fn segments() -> Vec<String> {
    [3u64, 4, 5]
        .iter()
        .map(|&seed| {
            TelemetryConfig::new(4)
                .hours(Hours::new(32.0).unwrap())
                .seed(seed)
                .generate_jsonl()
                .unwrap()
        })
        .collect()
}

/// The offline fold of the same segments: `qrn fleet ingest` semantics.
fn offline_state(segments: &[String]) -> FleetState {
    let classification = paper_classification().unwrap();
    let mut state = FleetState::default();
    for segment in segments {
        state.merge(&ingest_str(segment, &classification, 4).unwrap());
    }
    state
}

#[test]
fn concurrent_ingest_matches_offline_pipeline_byte_for_byte() {
    // The state-shard count must never change a single byte of any
    // served or checkpointed artefact: the cross-shard fold reuses the
    // dyadic merge order of offline ingest, and this sweep enforces it
    // for the shard counts named in the acceptance criteria.
    for state_shards in [1usize, 2, 4, 8] {
        let tag = format!("determinism-{state_shards}");
        let (mut config, checkpoint) = test_config(&tag);
        config.state_shards = state_shards;
        let handle = Server::start(config).unwrap();
        let addr = handle.addr();

        // Concurrent clients upload disjoint segments in whatever order
        // the scheduler produces.
        let segments = segments();
        let uploads: Vec<_> = segments
            .iter()
            .cloned()
            .map(|segment| {
                std::thread::spawn(move || {
                    let (status, body) = post(addr, "/v1/ingest", &segment);
                    assert_eq!(status, 200, "{body}");
                })
            })
            .collect();
        for upload in uploads {
            upload.join().unwrap();
        }

        // The served burn-down must be byte-identical to the offline
        // pipeline: ingest the same segments, run the same analysis,
        // print canonical JSON. (First server look == offline's one and
        // only look.)
        let offline = offline_state(&segments);
        let norm = paper_norm().unwrap();
        let classification = paper_classification().unwrap();
        let allocation = paper_allocation(&classification).unwrap();
        let offline_report =
            burn_down(&norm, &allocation, &offline, &BurnDownConfig::default()).unwrap();
        let (status, served) = get(addr, "/v1/burndown");
        assert_eq!(status, 200);
        assert_eq!(
            served,
            offline_report.to_canonical_json(),
            "state_shards={state_shards}"
        );

        // Graceful shutdown writes the final checkpoint; its bytes equal
        // the offline `fleet ingest --checkpoint` artefact of the same
        // segments.
        let (status, _) = post(addr, "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.wait().unwrap();
        assert_eq!(
            std::fs::read_to_string(&checkpoint).unwrap(),
            serde_json::to_string_pretty(&offline).unwrap(),
            "state_shards={state_shards}"
        );
    }
}

#[test]
fn multi_item_server_keeps_items_fully_isolated() {
    let (mut config, checkpoint) = test_config("multi-item");
    let classification = paper_classification().unwrap();
    let allocation = paper_allocation(&classification).unwrap();
    config.add_item("vru", paper_norm().unwrap(), classification, allocation);
    let vru_checkpoint = qrn::fleet::checkpoint::item_checkpoint_path(&checkpoint, "vru");
    let _ = std::fs::remove_file(&vru_checkpoint);
    let mut vru_sidecar = vru_checkpoint.clone().into_os_string();
    vru_sidecar.push(".looks.json");
    let _ = std::fs::remove_file(PathBuf::from(vru_sidecar));
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    let segments = segments();
    // Default item gets segments 0 and 1; the vru item gets segment 2.
    assert_eq!(post(addr, "/v1/ingest", &segments[0]).0, 200);
    assert_eq!(post(addr, "/v1/default/ingest", &segments[1]).0, 200);
    assert_eq!(post(addr, "/v1/vru/ingest", &segments[2]).0, 200);

    // Each item's burn-down sees only its own evidence, and looks are
    // counted per item: the vru look below must not move the default
    // item's counters.
    let (status, body) = get(addr, "/v1/vru/burndown");
    assert_eq!(status, 200, "{body}");
    let vru_report: FleetReport = serde_json::from_str(&body).unwrap();
    assert_eq!(vru_report.exposure_hours, 32.0);
    assert!(vru_report.goals.iter().all(|g| g.looks == 1), "{body}");

    let (_, body) = get(addr, "/v1/burndown");
    let default_report: FleetReport = serde_json::from_str(&body).unwrap();
    assert_eq!(default_report.exposure_hours, 64.0);
    assert!(default_report.goals.iter().all(|g| g.looks == 1), "{body}");

    // Metrics label both items and keep the exposition valid.
    let (_, metrics) = get(addr, "/metrics");
    validate_exposition(&metrics).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    assert!(
        metrics.contains("qrn_evidence_exposure_hours{item=\"default\"} 64"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qrn_evidence_exposure_hours{item=\"vru\"} 32"),
        "{metrics}"
    );

    // The drain writes one checkpoint per item; each matches the offline
    // ingest of only that item's segments, byte for byte.
    handle.stop().unwrap();
    assert_eq!(
        std::fs::read_to_string(&checkpoint).unwrap(),
        serde_json::to_string_pretty(&offline_state(&segments[..2])).unwrap()
    );
    assert_eq!(
        std::fs::read_to_string(&vru_checkpoint).unwrap(),
        serde_json::to_string_pretty(&offline_state(&segments[2..])).unwrap()
    );
}

#[test]
fn look_counters_survive_restart_via_sidecar() {
    let (config, checkpoint) = test_config("looks");
    let segments = segments();

    // First server: one segment, two looks.
    let handle = Server::start(config.clone()).unwrap();
    let addr = handle.addr();
    assert_eq!(post(addr, "/v1/ingest", &segments[0]).0, 200);
    for expected in [1u64, 2] {
        let (_, body) = get(addr, "/v1/burndown");
        let report: FleetReport = serde_json::from_str(&body).unwrap();
        assert!(report.goals.iter().all(|g| g.looks == expected), "{body}");
    }
    handle.stop().unwrap();
    let mut sidecar = checkpoint.clone().into_os_string();
    sidecar.push(".looks.json");
    assert!(PathBuf::from(&sidecar).exists());

    // Second server resumes both the state and the look counters: the
    // next look is the third, not a fresh first.
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();
    let (_, body) = get(addr, "/v1/burndown");
    let report: FleetReport = serde_json::from_str(&body).unwrap();
    assert!(report.goals.iter().all(|g| g.looks == 3), "{body}");
    assert_eq!(report.exposure_hours, 32.0);
    handle.stop().unwrap();
}

#[test]
fn metrics_are_valid_prometheus_exposition() {
    let (config, _) = test_config("metrics");
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();
    assert_eq!(post(addr, "/v1/ingest", &segments()[0]).0, 200);
    let _ = get(addr, "/v1/burndown");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    assert!(
        body.contains("qrn_evidence_exposure_hours{item=\"default\"} 32"),
        "{body}"
    );
    assert!(body.contains("qrn_http_request_seconds_bucket"), "{body}");
    assert!(body.contains("qrn_goal_budget_consumed"), "{body}");
    handle.stop().unwrap();
}

#[test]
fn oversized_body_answers_413_without_reading_it() {
    let (mut config, _) = test_config("oversized");
    config.max_body_bytes = 1024;
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    // Declare a 10 MiB body but never send it: the server must answer
    // from the headers alone.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 10485760\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");

    // A fitting body still works afterwards.
    let log = "{\"v\":1,\"event\":\"exposure\",\"vehicle\":\"V1\",\"hours\":1.0}";
    assert_eq!(post(addr, "/v1/ingest", log).0, 200);
    handle.stop().unwrap();
}

#[test]
fn bad_jsonl_is_skipped_per_line_not_rejected() {
    let (config, _) = test_config("badlines");
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();
    let log = "{\"v\":1,\"event\":\"exposure\",\"vehicle\":\"V1\",\"hours\":2.0}\n\
               this is not json\n\
               {\"v\":99,\"event\":\"exposure\",\"vehicle\":\"V2\",\"hours\":1.0}\n\
               {\"v\":1,\"event\":\"warp\",\"vehicle\":\"V3\"}\n";
    let (status, body) = post(addr, "/v1/ingest", log);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"segment_events\": 1"), "{body}");
    assert!(body.contains("\"bad_json\": 1"), "{body}");
    assert!(body.contains("\"unsupported_version\": 1"), "{body}");
    assert!(body.contains("\"unknown_kind\": 1"), "{body}");
    handle.stop().unwrap();
}

#[test]
fn full_queue_sheds_load_with_429() {
    let (mut config, _) = test_config("backpressure");
    config.workers = 1;
    config.queue_depth = 1;
    config.io_timeout = Duration::from_secs(10);
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    // Occupy the single worker with a held-open connection (no request
    // head yet), give the worker time to claim it, then fill the
    // one-slot queue with a second held connection.
    let mut held_a = TcpStream::connect(addr).unwrap();
    held_a.write_all(b"GET /healthz").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let mut held_b = TcpStream::connect(addr).unwrap();
    held_b.write_all(b"GET /healthz").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Worker busy + queue full: the accept thread itself answers 429.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 429, "{body}");

    // Releasing the held connections lets the backlog drain: finish the
    // first request and the server serves both, then new requests pass.
    held_a.write_all(b" HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut reply = String::new();
    held_a.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 200 "), "{reply}");
    held_b.write_all(b" HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut reply = String::new();
    held_b.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 200 "), "{reply}");
    assert_eq!(get(addr, "/healthz").0, 200);

    // The shed connection is visible in the metrics.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("qrn_http_rejected_total{reason=\"queue_full\"} 1"),
        "{metrics}"
    );
    handle.stop().unwrap();
}

#[test]
fn zone_queries_serve_refinement_rows() {
    let (mut config, _) = test_config("zones");
    // A design-time campaign ledger with an "urban" refinement row.
    let mut ledger = qrn::stats::evidence::EvidenceLedger::new();
    ledger.add_exposure(None, 1024.0);
    ledger.add_exposure(Some("urban"), 256.0);
    ledger.add_incident(None, "I2", 0.5);
    ledger.add_incident(Some("urban"), "I2", 0.5);
    config.push_evidence(ledger);
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    let (status, body) = get(addr, "/v1/burndown?zone=urban");
    assert_eq!(status, 200, "{body}");
    let zone: qrn::fleet::burndown::ZoneBurnDown = serde_json::from_str(&body).unwrap();
    assert_eq!(zone.zone, "urban");
    assert_eq!(zone.exposure_hours, 256.0);
    assert!(!zone.goals.is_empty());

    assert_eq!(get(addr, "/v1/burndown?zone=nowhere").0, 404);
    handle.stop().unwrap();
}

#[test]
fn corrupt_checkpoint_fails_startup_with_clear_error() {
    let (config, checkpoint) = test_config("corrupt");
    std::fs::write(&checkpoint, "{\"schema_ver").unwrap();
    let err = match Server::start(config) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("corrupt checkpoint must not start silently"),
    };
    assert!(err.contains("corrupt checkpoint"), "{err}");
    assert!(err.contains("live-state.json"), "{err}");
}
