//! Cross-checks of the two allocation solvers on the paper example: both
//! must fulfil Eq. (1), and waterfill must be max-min fair relative to any
//! equal-weight proportional allocation at the same utilisation target.

use std::collections::BTreeMap;

use qrn::core::allocation::{allocate_proportional, allocate_waterfill};
use qrn::core::examples::{paper_classification, paper_norm, paper_shares};
use qrn::core::incident::IncidentTypeId;
use qrn::units::Frequency;

#[test]
fn both_solvers_fulfil_eq1_on_the_paper_example() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let shares = paper_shares(&classification).unwrap();
    let ids: Vec<IncidentTypeId> = classification
        .leaves()
        .iter()
        .map(|l| l.id().clone())
        .collect();
    let weights: BTreeMap<IncidentTypeId, f64> = ids.iter().map(|id| (id.clone(), 1.0)).collect();

    let proportional = allocate_proportional(&norm, &shares, &weights, 0.9).unwrap();
    let waterfill = allocate_waterfill(
        &norm,
        &shares,
        &ids,
        Frequency::per_hour(1e-12).unwrap(),
        0.9,
    )
    .unwrap();

    assert!(proportional.check(&norm).unwrap().is_fulfilled());
    assert!(waterfill.check(&norm).unwrap().is_fulfilled());
}

#[test]
fn waterfill_dominates_equal_weight_proportional_on_the_minimum() {
    // Max-min fairness: the smallest waterfill budget is at least the
    // smallest equal-weight proportional budget (proportional is throttled
    // globally by the single binding class; waterfill only throttles the
    // incidents actually feeding it).
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let shares = paper_shares(&classification).unwrap();
    let ids: Vec<IncidentTypeId> = classification
        .leaves()
        .iter()
        .map(|l| l.id().clone())
        .collect();
    let weights: BTreeMap<IncidentTypeId, f64> = ids.iter().map(|id| (id.clone(), 1.0)).collect();

    let proportional = allocate_proportional(&norm, &shares, &weights, 0.9).unwrap();
    let waterfill = allocate_waterfill(
        &norm,
        &shares,
        &ids,
        Frequency::per_hour(1e-12).unwrap(),
        0.9,
    )
    .unwrap();

    let min_budget = |a: &qrn::core::Allocation| {
        ids.iter()
            .map(|id| a.incident_budget(id).unwrap().as_per_hour())
            .fold(f64::INFINITY, f64::min)
    };
    let total_budget = |a: &qrn::core::Allocation| {
        ids.iter()
            .map(|id| a.incident_budget(id).unwrap().as_per_hour())
            .sum::<f64>()
    };
    assert!(
        min_budget(&waterfill) >= min_budget(&proportional) * (1.0 - 1e-9),
        "waterfill min {} vs proportional min {}",
        min_budget(&waterfill),
        min_budget(&proportional)
    );
    // And waterfill spends at least as much total budget (it keeps raising
    // unconstrained incidents after the first class binds).
    assert!(total_budget(&waterfill) >= total_budget(&proportional) * (1.0 - 1e-9));
}

#[test]
fn waterfill_never_starves_a_budgeted_incident() {
    let norm = paper_norm().unwrap();
    let classification = paper_classification().unwrap();
    let shares = paper_shares(&classification).unwrap();
    let ids: Vec<IncidentTypeId> = classification
        .leaves()
        .iter()
        .map(|l| l.id().clone())
        .collect();
    let waterfill = allocate_waterfill(
        &norm,
        &shares,
        &ids,
        Frequency::per_hour(1e-12).unwrap(),
        0.5,
    )
    .unwrap();
    for id in &ids {
        assert!(
            waterfill.incident_budget(id).unwrap().as_per_hour() > 0.0,
            "{id} starved"
        );
    }
}
