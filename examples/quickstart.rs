//! Quickstart: build a quantitative risk norm, a MECE incident
//! classification, allocate budgets, derive safety goals, and check the
//! fulfilment inequality — the whole QRN method in one sitting.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::BTreeMap;
use std::error::Error;

use qrn::core::allocation::{allocate_proportional, ShareMatrix};
use qrn::core::classification::{GroupRules, IncidentClassification};
use qrn::core::consequence::{ConsequenceClass, ConsequenceDomain};
use qrn::core::incident::IncidentTypeId;
use qrn::core::norm::QuantitativeRiskNorm;
use qrn::core::object::InvolvementClass;
use qrn::core::safety_goal::derive_with_certificate;
use qrn::units::{Frequency, Meters, Probability, Speed};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The risk norm: what "sufficiently safe" means, as budgets.
    //    (Numbers are illustrative, as in the paper's footnote 3.)
    let norm = QuantitativeRiskNorm::builder()
        .class(
            ConsequenceClass::new("vQ1", ConsequenceDomain::Quality, 0, "scared road user"),
            Frequency::per_hour(1e-2)?,
        )
        .class(
            ConsequenceClass::new("vS1", ConsequenceDomain::Safety, 1, "light injuries"),
            Frequency::per_hour(1e-5)?,
        )
        .class(
            ConsequenceClass::new("vS3", ConsequenceDomain::Safety, 2, "fatality"),
            Frequency::per_hour(1e-8)?,
        )
        .build()?;
    println!("{norm}");

    // 2. A MECE incident classification. Every involvement group needs
    //    rules; here the interesting one is Ego<->VRU with the paper's
    //    I1/I2/I3 structure (plus the unbounded tail band I4).
    let ego_vru = GroupRules::builder()
        .collision_band_below(Speed::from_kmh(10.0)?, "I2")
        .collision_band_below(Speed::from_kmh(70.0)?, "I3")
        .collision_tail("I4")
        .near_miss_within(Meters::new(1.0)?)
        .near_miss_band_from(Speed::from_kmh(10.0)?, "I1")
        .build()?;
    let mut builder = IncidentClassification::builder();
    for class in InvolvementClass::ALL {
        if class == InvolvementClass::EgoVru {
            continue;
        }
        builder = builder.group(
            class,
            GroupRules::builder()
                .collision_band_below(Speed::from_kmh(15.0)?, format!("{class}/low"))
                .collision_tail(format!("{class}/high"))
                .build()?,
        );
    }
    let classification = builder.group(InvolvementClass::EgoVru, ego_vru).build()?;
    println!("{classification}");

    // 3. Contribution shares and an automatic budget allocation at 90%
    //    utilisation of the binding consequence class.
    let mut shares = ShareMatrix::builder()
        .share("I1", "vQ1", Probability::new(0.7)?)
        .share("I2", "vS1", Probability::new(0.6)?)
        .share("I3", "vS1", Probability::new(0.3)?)
        .share("I3", "vS3", Probability::new(0.2)?)
        .share("I4", "vS3", Probability::new(0.9)?);
    for leaf in classification.leaves() {
        let id = leaf.id().as_str();
        if !id.starts_with('I') {
            shares = shares.share(id, "vS1", Probability::new(0.3)?).share(
                id,
                "vS3",
                Probability::new(0.02)?,
            );
        }
    }
    let shares = shares.build()?;
    let weights: BTreeMap<IncidentTypeId, f64> = classification
        .leaves()
        .iter()
        .map(|leaf| {
            let w = if leaf.id().as_str() == "I1" {
                100.0
            } else {
                1.0
            };
            (leaf.id().clone(), w)
        })
        .collect();
    let allocation = allocate_proportional(&norm, &shares, &weights, 0.9)?;

    // 4. Eq. (1): every consequence class within budget?
    let report = allocation.check(&norm)?;
    print!("{report}");
    assert!(report.is_fulfilled());

    // 5. One safety goal per incident type, with the completeness
    //    certificate tying the goal set to the MECE classification.
    let (goals, certificate) = derive_with_certificate(&classification, &allocation)?;
    println!("\nDerived {} safety goals, e.g.:", goals.len());
    for goal in goals.iter().filter(|g| g.id().starts_with("SG-I")) {
        println!("  {goal}");
    }
    println!("\n{certificate}");
    assert!(certificate.holds());
    Ok(())
}
