//! Product-line reuse of one risk norm (Sec. VII of the paper): two
//! feature variants — an urban shuttle and a highway pilot — share the
//! same quantitative risk norm while allocating it differently.
//!
//! "While there may be some variability in the frequency allocation for
//! each incident type … the total acceptable risk for each consequence
//! class will be the same."
//!
//! Run with: `cargo run --example highway_product_line`

use std::collections::BTreeMap;
use std::error::Error;

use qrn::core::allocation::{allocate_proportional, Allocation};
use qrn::core::classification::IncidentClassification;
use qrn::core::examples::{paper_classification, paper_norm, paper_shares};
use qrn::core::incident::{IncidentTypeId, ToleranceMargin};
use qrn::core::norm::QuantitativeRiskNorm;
use qrn::core::object::{InvolvementClass, ObjectType};
use qrn::odd::attribute::{Constraint, Dimension};
use qrn::odd::spec::OddSpec;

/// Variant-specific weights: where each product expects its incidents.
fn variant_weights(
    classification: &IncidentClassification,
    vru_emphasis: f64,
    vehicle_emphasis: f64,
) -> BTreeMap<IncidentTypeId, f64> {
    classification
        .leaves()
        .iter()
        .map(|leaf| {
            let base = match leaf.margin() {
                ToleranceMargin::Proximity { .. } => 100.0,
                ToleranceMargin::ImpactSpeed { hi: Some(_), .. } => 5.0,
                ToleranceMargin::ImpactSpeed { hi: None, .. } => 0.01,
            };
            let class_factor = match leaf.involvement().class() {
                InvolvementClass::EgoVru | InvolvementClass::InducedVru => vru_emphasis,
                InvolvementClass::EgoCar | InvolvementClass::EgoTruck => vehicle_emphasis,
                _ => 1.0,
            };
            (leaf.id().clone(), base * class_factor)
        })
        .collect()
}

fn report_variant(
    name: &str,
    norm: &QuantitativeRiskNorm,
    allocation: &Allocation,
) -> Result<(), Box<dyn Error>> {
    let report = allocation.check(norm)?;
    assert!(report.is_fulfilled(), "variant {name} must fulfil Eq. (1)");
    println!("Variant {name}: Eq. (1) fulfilled");
    for id in ["I1", "I2", "I3"] {
        let f = allocation.incident_budget(&id.into())?;
        println!("  budget f_{id} = {f}");
    }
    // Ethics guard: no consequence class may be dominated entirely by a
    // single VRU incident type (the paper's Ego<->Child discussion).
    let fatal = "vS3".into();
    if let Some((incident, fraction)) = allocation.dominant_contributor(&fatal) {
        println!(
            "  dominant vS3 contributor: {incident} at {:.0}%",
            fraction * 100.0
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    // One norm for the whole product line.
    let norm = paper_norm()?;
    println!("{norm}");

    // One MECE classification, one share matrix (consequence physics does
    // not change between variants).
    let classification = paper_classification()?;
    let shares = paper_shares(&classification)?;

    // The urban shuttle expects VRU interactions; the highway pilot
    // expects vehicle interactions. Same norm, different allocations.
    let urban_weights = variant_weights(&classification, 10.0, 1.0);
    let highway_weights = variant_weights(&classification, 0.1, 10.0);
    let urban = allocate_proportional(&norm, &shares, &urban_weights, 0.9)?;
    let highway = allocate_proportional(&norm, &shares, &highway_weights, 0.9)?;

    report_variant("urban-shuttle", &norm, &urban)?;
    report_variant("highway-pilot", &norm, &highway)?;

    // The urban variant grants VRU incident types more budget; the
    // highway variant grants vehicle types more.
    let i2: IncidentTypeId = "I2".into();
    let urban_i2 = urban.incident_budget(&i2)?;
    let highway_i2 = highway.incident_budget(&i2)?;
    assert!(urban_i2 > highway_i2);
    println!(
        "\nEgo↔VRU low-speed budget: urban {urban_i2} vs highway {highway_i2} — \
         allocation differs, the norm does not."
    );

    // The variants' ODDs are restrictions of a master ODD: anything safe
    // in the variant ODD is inside the master envelope.
    let master = OddSpec::builder()
        .constrain(
            Dimension::new("road_type"),
            Constraint::any_of(["urban", "rural", "highway"]),
        )
        .constrain(
            Dimension::new("speed_limit_kmh"),
            Constraint::range(0.0, 130.0)?,
        )
        .build();
    let urban_odd = master
        .restricted(Dimension::new("road_type"), Constraint::any_of(["urban"]))?
        .restricted(
            Dimension::new("speed_limit_kmh"),
            Constraint::range(0.0, 60.0)?,
        )?;
    let highway_odd =
        master.restricted(Dimension::new("road_type"), Constraint::any_of(["highway"]))?;
    assert!(urban_odd.is_subset_of(&master));
    assert!(highway_odd.is_subset_of(&master));
    println!("\nUrban ODD:   {urban_odd}");
    println!("Highway ODD: {highway_odd}");

    // Sanity: the VRU classification is product-independent; both
    // variants restrict the same incident types.
    assert!(classification.incident_type(&i2).is_some_and(
        |t| t.involvement() == qrn::core::object::Involvement::ego_with(ObjectType::Vru)
    ));
    println!("\nBoth variants share classification, shares and norm: only the allocation varies.");
    Ok(())
}
