//! A miniature end-to-end safety case for an urban ADS feature:
//! ODD → risk norm → MECE classification → allocation → safety goals →
//! simulated fleet campaign → statistical verdicts.
//!
//! The budgets here are calibrated to the *synthetic* world so the
//! statistics have something to bite on — the point is the pipeline, not
//! the absolute numbers (the paper's footnote 3 applies throughout).
//!
//! Run with: `cargo run --release --example urban_ads_safety_case`

use std::error::Error;

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::safety_case::SafetyCase;
use qrn::core::safety_goal::derive_with_certificate;
use qrn::core::verification::{verify, Verdict};
use qrn::odd::attribute::{Constraint, Dimension};
use qrn::odd::context::{Context, Value};
use qrn::odd::monitor::OddMonitor;
use qrn::odd::spec::OddSpec;
use qrn::sim::monte_carlo::Campaign;
use qrn::sim::policy::CautiousPolicy;
use qrn::sim::scenario::urban_scenario;
use qrn::units::Hours;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Problem domain: ODD, norm, classification, goals -------------
    let odd = OddSpec::builder()
        .constrain(
            Dimension::new("zone"),
            Constraint::any_of(["residential", "school", "arterial"]),
        )
        .build();
    println!("Feature ODD: {odd}\n");

    let norm = paper_norm()?;
    println!("{norm}");

    let classification = paper_classification()?;
    let allocation = paper_allocation(&classification)?;
    let eq1 = allocation.check(&norm)?;
    print!("{eq1}");
    assert!(eq1.is_fulfilled());

    let (goals, certificate) = derive_with_certificate(&classification, &allocation)?;
    println!("\n{certificate}");
    println!("{} safety goals; the Fig. 5 trio:", goals.len());
    for goal in &goals {
        if matches!(goal.id(), "SG-I1" | "SG-I2" | "SG-I3") {
            println!("  {goal}");
        }
    }

    // --- Solution domain: drive the feature, watch the ODD ------------
    let hours = Hours::new(2_000.0)?;
    let campaign = Campaign::new(urban_scenario()?, CautiousPolicy::default())
        .hours(hours)
        .seed(2024)
        .workers(8);
    let result = campaign.run()?;
    println!("\nCampaign: {result}");

    // Exposure only counts inside the ODD; every zone of the urban route
    // is inside, which the monitor confirms.
    let mut monitor = OddMonitor::new(odd);
    for zone in ["residential", "school", "arterial"] {
        let ctx = Context::builder()
            .set(Dimension::new("zone"), Value::category(zone))
            .build();
        monitor.observe(&ctx, Hours::new(1.0)?);
    }
    assert_eq!(monitor.exits(), 0);
    println!(
        "ODD monitor: {:.0}% of sampled contexts inside, {} exits",
        monitor.inside_fraction().unwrap_or(0.0) * 100.0,
        monitor.exits()
    );

    // --- Verification: measured rates against goals and norm ----------
    let (measured, non_incidents) = result.measured(&classification);
    println!(
        "\nClassified {} incidents ({} uneventful closest approaches) over {}",
        measured.total(),
        non_incidents,
        measured.exposure()
    );
    let report = verify(&norm, &allocation, &measured, 0.95)?;
    let count = |v: Verdict| report.goals.iter().filter(|g| g.verdict == v).count();
    println!(
        "Safety-goal verdicts at 95%: {} demonstrated, {} inconclusive, {} violated",
        count(Verdict::Demonstrated),
        count(Verdict::Inconclusive),
        count(Verdict::Violated),
    );
    for class in &report.classes {
        println!(
            "  {}: load ≤ {} vs budget {} -> {}",
            class.class, class.load_upper_bound, class.budget, class.verdict
        );
    }
    // --- The assembled argument ----------------------------------------
    let case = SafetyCase::assemble(
        "urban ADS feature",
        &norm,
        &classification,
        &allocation,
        &report,
    )?;
    println!("\nAssembled safety case ({} claims):", case.size());
    // Print the top two levels; the full tree lives in the JSON bundle.
    println!(
        "[{}] {} — {}",
        case.top.id, case.top.statement, case.top.status
    );
    for child in &case.top.children {
        println!("  [{}] {} — {}", child.id, child.statement, child.status);
    }

    println!(
        "\nThe synthetic world is deliberately challenge-dense, so severe
classes are typically *violated* here: the machinery detects it instead of
hiding it, which is the property a safety case needs. Scale the norm (or
tame the world) and the verdicts flip to demonstrated — see the
exp_eq1_montecarlo experiment for that calibration."
    );
    Ok(())
}
