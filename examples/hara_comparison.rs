//! Classical ISO 26262 HARA versus the QRN tailoring, on the same item.
//!
//! The baseline elicits hazardous events over an operational-situation
//! space whose cardinality explodes (Sec. II-B.1), and produces
//! qualitative safety goals with ASILs. The QRN produces a *fixed,
//! provably complete* set of quantitative safety goals, independent of any
//! situation catalogue.
//!
//! Run with: `cargo run --example hara_comparison`

use std::error::Error;

use qrn::core::examples::{paper_allocation, paper_classification};
use qrn::core::safety_goal::derive_with_certificate;
use qrn::hara::analysis::{Hara, HazardousEvent};
use qrn::hara::hazard::hazop_matrix;
use qrn::hara::severity::{Controllability, Exposure, Severity};
use qrn::hara::situation::{ads_situation_dimensions, SituationSpace};

fn main() -> Result<(), Box<dyn Error>> {
    // --- The classical route -------------------------------------------
    let functions = ["braking", "steering", "propulsion", "perception"];
    let hazards = hazop_matrix(&functions);
    println!(
        "HAZOP over {} functions: {} hazards",
        functions.len(),
        hazards.len()
    );

    // The situation space an ADS would have to enumerate:
    for detail in 1..=3 {
        let space = SituationSpace::new(ads_situation_dimensions(detail));
        println!(
            "  situation space at detail {detail}: {} dimensions, {} situations",
            space.dimensions().len(),
            space.cardinality()
        );
    }
    let space = SituationSpace::new(ads_situation_dimensions(1));
    println!(
        "  … so even the coarsest space × {} hazards = {} hazardous events to classify",
        hazards.len(),
        space.cardinality() * hazards.len() as u128
    );

    // A classical HARA can only ever sample that space. Classify a few
    // situations for one hazard to show the output shape:
    let mut hara = Hara::new("urban ADS feature");
    for (i, situation) in space.iter().take(5).enumerate() {
        hara.add_event(HazardousEvent::new(
            hazards[3].clone(), // braking too little
            situation,
            Severity::S3,
            [
                Exposure::E4,
                Exposure::E3,
                Exposure::E2,
                Exposure::E3,
                Exposure::E4,
            ][i],
            Controllability::C3,
        ));
    }
    println!("\nClassical HARA sample ({} events):", hara.events().len());
    for goal in hara.safety_goals() {
        println!("  {goal}");
    }
    println!("  assumptions a reviewer must discharge:");
    for assumption in hara.completeness_assumptions() {
        println!(
            "    - {assumption:?} (challenged in {})",
            assumption.challenged_in()
        );
    }

    // --- The QRN route --------------------------------------------------
    let classification = paper_classification()?;
    let allocation = paper_allocation(&classification)?;
    let (goals, certificate) = derive_with_certificate(&classification, &allocation)?;
    println!(
        "\nQRN route: {} incident types -> {} safety goals, no situation catalogue.",
        classification.leaves().len(),
        goals.len()
    );
    println!("{certificate}");
    assert!(certificate.holds());

    println!(
        "\nThe classical route needs completeness over {} situations;\n\
         the QRN route needs completeness over {} MECE incident types —\n\
         and can *prove* it.",
        space.cardinality(),
        classification.leaves().len()
    );
    Ok(())
}
