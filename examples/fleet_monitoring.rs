//! Fleet monitoring: generate synthetic telemetry, ingest it with the
//! sharded streaming engine, and burn down the risk budgets against the
//! paper's norm and allocation — the operational half of the QRN loop,
//! where design-time budgets meet (simulated) field evidence.
//!
//! Run with: `cargo run --example fleet_monitoring`

use std::error::Error;

use qrn::core::examples::{paper_allocation, paper_classification, paper_norm};
use qrn::core::incident::IncidentRecord;
use qrn::core::object::{Involvement, ObjectType};
use qrn::fleet::burndown::{burn_down, AlertLevel, BurnDownConfig};
use qrn::fleet::event::to_jsonl;
use qrn::fleet::ingest::ingest_str;
use qrn::fleet::telemetry::TelemetryConfig;
use qrn::stats::sequential::SprtDecision;
use qrn::units::{Hours, Speed};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The design-time artefacts: acceptable risk, MECE incident types,
    //    budget allocation (Figs. 2, 4 and 5 of the paper).
    let norm = paper_norm()?;
    let classification = paper_classification()?;
    let allocation = paper_allocation(&classification)?;

    // 2. A synthetic fleet: eight vehicles, 160 h of urban driving — plus
    //    a dozen deliberately injected severe VRU collisions, the kind of
    //    systematic fault monitoring exists to catch.
    let crash = IncidentRecord::collision(
        Involvement::ego_with(ObjectType::Vru),
        Speed::from_kmh(45.0)?,
    );
    let events = TelemetryConfig::new(8)
        .hours(Hours::new(160.0)?)
        .seed(42)
        .inject(crash, 12)
        .generate()?;
    let log = to_jsonl(&events);
    println!(
        "telemetry: {} events, {} log bytes",
        events.len(),
        log.len()
    );

    // 3. Sharded streaming ingest. The shard count is a throughput knob
    //    only: four shards and one shard produce byte-identical state.
    let state = ingest_str(&log, &classification, 4)?;
    let single = ingest_str(&log, &classification, 1)?;
    assert_eq!(state, single);
    let incidents: u64 = state.counts().map(|(_, n)| n).sum();
    println!(
        "ingested {:.1} h from {} vehicles: {} incidents, {} benign observations",
        state.exposure().value(),
        state.vehicle_count(),
        incidents,
        state.unclassified(),
    );

    // 4. Burn down the budgets: Wald's SPRT plus exact Poisson bounds per
    //    incident type, conservative share-weighted propagation per
    //    consequence class.
    let report = burn_down(&norm, &allocation, &state, &BurnDownConfig::default())?;
    print!("{report}");

    // The injected collisions land in I3 (severe VRU collision), whose
    // tiny budget cannot survive 12 events in 160 h: the sequential test
    // concludes against the null and the row comes out Burned.
    let i3 = report.goal(&"I3".into()).expect("I3 is allocated");
    assert_eq!(i3.sprt, SprtDecision::AcceptAlternative);
    assert_eq!(i3.alert, AlertLevel::Burned);
    assert!(report.any_burned());
    println!("\nverdict: at least one budget is burned -> investigate before further deployment");
    Ok(())
}
