//! The paper's Sec. V worked example, end to end: refine the safety goal
//! "do not overestimate the VRU-free drivable area" into a redundant
//! perception architecture, verify it quantitatively, compare with what
//! ASIL decomposition could express, and rank the elements by importance.
//!
//! Run with: `cargo run --example drivable_area_refinement`

use std::error::Error;

use qrn::hara::asil::Asil;
use qrn::quant::compare::{asil_equivalent, can_decompose_to};
use qrn::quant::importance::importance_ranking;
use qrn::quant::refine::Refinement;
use qrn::quant::{Element, RateModel};
use qrn::units::Frequency;

fn main() -> Result<(), Box<dyn Error>> {
    // The vehicle-level requirement: overestimating the drivable area must
    // be rarer than the ASIL-D-grade target.
    let budget = Frequency::per_hour(1e-8)?;
    println!(
        "Safety requirement: do not overestimate the VRU-free drivable area,\n\
         to below {budget} (ASIL-D-grade integrity).\n"
    );

    // The architecture: three diverse perception stacks must *all* be
    // wrong for the fused free-space to be overestimated; each stack is a
    // series of its sensor channel and its prediction block. A shared
    // localisation service feeds all three (a common cause).
    let stack = |name: &str, sensor_rate: f64, predictor_rate: f64| {
        Ok::<RateModel, qrn::units::UnitError>(RateModel::any_of(vec![
            RateModel::basic(Element::new(
                format!("{name}-sensor"),
                Frequency::per_hour(sensor_rate)?,
            )),
            RateModel::basic(Element::new(
                format!("{name}-predictor"),
                Frequency::per_hour(predictor_rate)?,
            )),
            RateModel::basic(Element::new("localisation", Frequency::per_hour(2e-5)?)),
        ]))
    };
    let fused = RateModel::all_of(vec![
        stack("camera", 8e-4, 3e-4)?,
        stack("lidar", 5e-4, 3e-4)?,
        stack("radar", 2e-3, 4e-4)?,
    ]);

    // Quantitative verification, first naively (elements independent):
    let refinement = Refinement::new(budget, fused.clone());
    let naive = refinement.verify()?;
    println!(
        "Fused architecture ({} elements), naive independence: {naive}",
        fused.element_count()
    );
    assert!(naive.meets_budget());

    // …but the shared localisation is a COMMON CAUSE: if it fails, every
    // stack fails at once. Exact conditioning on shared ids exposes it:
    let exact = refinement.verify_exact()?;
    println!("Same architecture, common-cause-aware:        {exact}");
    assert!(!exact.meets_budget());
    println!(
        "The naive product hid a {:.0}x optimism — 'a correctly assigned\n\
         contribution … must be well substantiated' (Sec. III-B).\n",
        exact.achieved.as_per_hour() / naive.achieved.as_per_hour()
    );

    // The fix: give the shared service an integrity worthy of a
    // single-point element (a 1e-9-class localisation), then re-verify.
    let hardened_stack = |name: &str, sensor_rate: f64, predictor_rate: f64| {
        Ok::<RateModel, qrn::units::UnitError>(RateModel::any_of(vec![
            RateModel::basic(Element::new(
                format!("{name}-sensor"),
                Frequency::per_hour(sensor_rate)?,
            )),
            RateModel::basic(Element::new(
                format!("{name}-predictor"),
                Frequency::per_hour(predictor_rate)?,
            )),
            RateModel::basic(Element::new("localisation", Frequency::per_hour(1e-9)?)),
        ]))
    };
    let hardened = RateModel::all_of(vec![
        hardened_stack("camera", 8e-4, 3e-4)?,
        hardened_stack("lidar", 5e-4, 3e-4)?,
        hardened_stack("radar", 2e-3, 4e-4)?,
    ]);
    let fixed = Refinement::new(budget, hardened).verify_exact()?;
    println!("Hardened localisation (1e-9/h), exact:        {fixed}");
    assert!(fixed.meets_budget());

    // What a channel's rate would "earn" qualitatively:
    for (name, rate) in [("camera stack", 1.1e-3 + 2e-5), ("localisation", 2e-5)] {
        let equivalent = asil_equivalent(Frequency::per_hour(rate)?);
        println!(
            "  {name}: {rate:.1e}/h -> {}",
            equivalent
                .map(|a| a.to_string())
                .unwrap_or_else(|| "QM range (no ASIL target met)".into())
        );
    }
    // And the qualitative route cannot credit three QM-range channels:
    assert!(!can_decompose_to(Asil::D, &[Asil::QM, Asil::QM, Asil::QM]));
    println!(
        "\nISO 26262-9 has no scheme D -> QM+QM+QM: the redundant architecture\n\
         cannot be credited qualitatively, only quantitatively (Sec. V).\n"
    );

    // Importance analysis: where does the next unit of engineering effort
    // go? The shared localisation is a common cause and dominates.
    println!("Birnbaum importance ranking:");
    for entry in importance_ranking(&fused).iter().take(4) {
        println!("  {:<18} {:.3e}", entry.id, entry.birnbaum);
    }
    let ranking = importance_ranking(&fused);
    assert_eq!(ranking[0].id, "localisation");
    println!(
        "\nThe shared localisation service outranks every redundant channel —\n\
         the quantitative frame finds the common cause automatically; a\n\
         qualitative ASIL allocation would have treated it like any other\n\
         QM-range element."
    );
    Ok(())
}
