/root/repo/target/debug/librand.rlib: /root/repo/crates/compat/rand/src/lib.rs
