/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/compat/criterion/src/lib.rs
