/root/repo/target/debug/libserde_derive.so: /root/repo/crates/compat/serde_derive/src/lib.rs
