/root/repo/target/debug/examples/drivable_area_refinement-689ef0de40f3605f.d: examples/drivable_area_refinement.rs Cargo.toml

/root/repo/target/debug/examples/libdrivable_area_refinement-689ef0de40f3605f.rmeta: examples/drivable_area_refinement.rs Cargo.toml

examples/drivable_area_refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
