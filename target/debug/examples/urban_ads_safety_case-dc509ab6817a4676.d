/root/repo/target/debug/examples/urban_ads_safety_case-dc509ab6817a4676.d: examples/urban_ads_safety_case.rs

/root/repo/target/debug/examples/urban_ads_safety_case-dc509ab6817a4676: examples/urban_ads_safety_case.rs

examples/urban_ads_safety_case.rs:
