/root/repo/target/debug/examples/highway_product_line-f2a17e0f9951097e.d: examples/highway_product_line.rs

/root/repo/target/debug/examples/highway_product_line-f2a17e0f9951097e: examples/highway_product_line.rs

examples/highway_product_line.rs:
