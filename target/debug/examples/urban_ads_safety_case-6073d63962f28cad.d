/root/repo/target/debug/examples/urban_ads_safety_case-6073d63962f28cad.d: examples/urban_ads_safety_case.rs Cargo.toml

/root/repo/target/debug/examples/liburban_ads_safety_case-6073d63962f28cad.rmeta: examples/urban_ads_safety_case.rs Cargo.toml

examples/urban_ads_safety_case.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
