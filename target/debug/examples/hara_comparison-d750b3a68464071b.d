/root/repo/target/debug/examples/hara_comparison-d750b3a68464071b.d: examples/hara_comparison.rs

/root/repo/target/debug/examples/hara_comparison-d750b3a68464071b: examples/hara_comparison.rs

examples/hara_comparison.rs:
