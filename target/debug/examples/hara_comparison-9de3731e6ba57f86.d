/root/repo/target/debug/examples/hara_comparison-9de3731e6ba57f86.d: examples/hara_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libhara_comparison-9de3731e6ba57f86.rmeta: examples/hara_comparison.rs Cargo.toml

examples/hara_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
