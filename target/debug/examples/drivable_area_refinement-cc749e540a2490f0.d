/root/repo/target/debug/examples/drivable_area_refinement-cc749e540a2490f0.d: examples/drivable_area_refinement.rs

/root/repo/target/debug/examples/drivable_area_refinement-cc749e540a2490f0: examples/drivable_area_refinement.rs

examples/drivable_area_refinement.rs:
