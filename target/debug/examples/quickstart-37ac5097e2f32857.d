/root/repo/target/debug/examples/quickstart-37ac5097e2f32857.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-37ac5097e2f32857: examples/quickstart.rs

examples/quickstart.rs:
