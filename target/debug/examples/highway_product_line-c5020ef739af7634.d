/root/repo/target/debug/examples/highway_product_line-c5020ef739af7634.d: examples/highway_product_line.rs Cargo.toml

/root/repo/target/debug/examples/libhighway_product_line-c5020ef739af7634.rmeta: examples/highway_product_line.rs Cargo.toml

examples/highway_product_line.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
