/root/repo/target/debug/libserde_json.rlib: /root/repo/crates/compat/serde/src/lib.rs /root/repo/crates/compat/serde_derive/src/lib.rs /root/repo/crates/compat/serde_json/src/lib.rs
