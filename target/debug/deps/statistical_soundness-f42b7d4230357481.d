/root/repo/target/debug/deps/statistical_soundness-f42b7d4230357481.d: tests/statistical_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libstatistical_soundness-f42b7d4230357481.rmeta: tests/statistical_soundness.rs Cargo.toml

tests/statistical_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
