/root/repo/target/debug/deps/fig1_iso26262_risk-9c615291825189a3.d: crates/bench/src/bin/fig1_iso26262_risk.rs

/root/repo/target/debug/deps/fig1_iso26262_risk-9c615291825189a3: crates/bench/src/bin/fig1_iso26262_risk.rs

crates/bench/src/bin/fig1_iso26262_risk.rs:
