/root/repo/target/debug/deps/pipeline-c41809e0d9365f37.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-c41809e0d9365f37: tests/pipeline.rs

tests/pipeline.rs:
