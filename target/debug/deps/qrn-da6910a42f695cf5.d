/root/repo/target/debug/deps/qrn-da6910a42f695cf5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqrn-da6910a42f695cf5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
