/root/repo/target/debug/deps/fig4_classification-e6d890b0e5808e40.d: crates/bench/src/bin/fig4_classification.rs

/root/repo/target/debug/deps/fig4_classification-e6d890b0e5808e40: crates/bench/src/bin/fig4_classification.rs

crates/bench/src/bin/fig4_classification.rs:
