/root/repo/target/debug/deps/qrn_odd-0be0e9d2ca18c610.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs crates/odd/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_odd-0be0e9d2ca18c610.rmeta: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs crates/odd/src/proptests.rs Cargo.toml

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
crates/odd/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
