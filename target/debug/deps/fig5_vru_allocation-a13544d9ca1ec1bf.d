/root/repo/target/debug/deps/fig5_vru_allocation-a13544d9ca1ec1bf.d: crates/bench/src/bin/fig5_vru_allocation.rs

/root/repo/target/debug/deps/fig5_vru_allocation-a13544d9ca1ec1bf: crates/bench/src/bin/fig5_vru_allocation.rs

crates/bench/src/bin/fig5_vru_allocation.rs:
