/root/repo/target/debug/deps/serde_json-fc3f0eb8507f7a5d.d: crates/compat/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-fc3f0eb8507f7a5d.rmeta: crates/compat/serde_json/src/lib.rs Cargo.toml

crates/compat/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
