/root/repo/target/debug/deps/serde-9c33c62d201fb128.d: crates/compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-9c33c62d201fb128.rmeta: crates/compat/serde/src/lib.rs Cargo.toml

crates/compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
