/root/repo/target/debug/deps/exp_demonstrability-25c215abde481e47.d: crates/bench/src/bin/exp_demonstrability.rs

/root/repo/target/debug/deps/exp_demonstrability-25c215abde481e47: crates/bench/src/bin/exp_demonstrability.rs

crates/bench/src/bin/exp_demonstrability.rs:
