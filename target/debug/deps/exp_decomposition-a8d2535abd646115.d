/root/repo/target/debug/deps/exp_decomposition-a8d2535abd646115.d: crates/bench/src/bin/exp_decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libexp_decomposition-a8d2535abd646115.rmeta: crates/bench/src/bin/exp_decomposition.rs Cargo.toml

crates/bench/src/bin/exp_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
