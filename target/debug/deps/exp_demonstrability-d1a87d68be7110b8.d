/root/repo/target/debug/deps/exp_demonstrability-d1a87d68be7110b8.d: crates/bench/src/bin/exp_demonstrability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_demonstrability-d1a87d68be7110b8.rmeta: crates/bench/src/bin/exp_demonstrability.rs Cargo.toml

crates/bench/src/bin/exp_demonstrability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
