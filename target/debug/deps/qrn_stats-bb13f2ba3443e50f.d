/root/repo/target/debug/deps/qrn_stats-bb13f2ba3443e50f.d: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libqrn_stats-bb13f2ba3443e50f.rlib: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libqrn_stats-bb13f2ba3443e50f.rmeta: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/binomial.rs:
crates/stats/src/error.rs:
crates/stats/src/poisson.rs:
crates/stats/src/rng.rs:
crates/stats/src/sequential.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
