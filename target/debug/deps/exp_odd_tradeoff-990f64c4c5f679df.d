/root/repo/target/debug/deps/exp_odd_tradeoff-990f64c4c5f679df.d: crates/bench/src/bin/exp_odd_tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libexp_odd_tradeoff-990f64c4c5f679df.rmeta: crates/bench/src/bin/exp_odd_tradeoff.rs Cargo.toml

crates/bench/src/bin/exp_odd_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
