/root/repo/target/debug/deps/exp_decomposition-6a680347b6438b6c.d: crates/bench/src/bin/exp_decomposition.rs

/root/repo/target/debug/deps/exp_decomposition-6a680347b6438b6c: crates/bench/src/bin/exp_decomposition.rs

crates/bench/src/bin/exp_decomposition.rs:
