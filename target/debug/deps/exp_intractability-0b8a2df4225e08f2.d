/root/repo/target/debug/deps/exp_intractability-0b8a2df4225e08f2.d: crates/bench/src/bin/exp_intractability.rs

/root/repo/target/debug/deps/exp_intractability-0b8a2df4225e08f2: crates/bench/src/bin/exp_intractability.rs

crates/bench/src/bin/exp_intractability.rs:
