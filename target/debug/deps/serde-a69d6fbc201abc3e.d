/root/repo/target/debug/deps/serde-a69d6fbc201abc3e.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-a69d6fbc201abc3e: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
