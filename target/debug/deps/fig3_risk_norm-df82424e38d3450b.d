/root/repo/target/debug/deps/fig3_risk_norm-df82424e38d3450b.d: crates/bench/src/bin/fig3_risk_norm.rs

/root/repo/target/debug/deps/fig3_risk_norm-df82424e38d3450b: crates/bench/src/bin/fig3_risk_norm.rs

crates/bench/src/bin/fig3_risk_norm.rs:
