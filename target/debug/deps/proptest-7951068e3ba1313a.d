/root/repo/target/debug/deps/proptest-7951068e3ba1313a.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-7951068e3ba1313a: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
