/root/repo/target/debug/deps/bench_ftree-c2e939fe4ae89cd5.d: crates/bench/benches/bench_ftree.rs Cargo.toml

/root/repo/target/debug/deps/libbench_ftree-c2e939fe4ae89cd5.rmeta: crates/bench/benches/bench_ftree.rs Cargo.toml

crates/bench/benches/bench_ftree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
