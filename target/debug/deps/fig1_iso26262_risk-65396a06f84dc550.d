/root/repo/target/debug/deps/fig1_iso26262_risk-65396a06f84dc550.d: crates/bench/src/bin/fig1_iso26262_risk.rs

/root/repo/target/debug/deps/fig1_iso26262_risk-65396a06f84dc550: crates/bench/src/bin/fig1_iso26262_risk.rs

crates/bench/src/bin/fig1_iso26262_risk.rs:
