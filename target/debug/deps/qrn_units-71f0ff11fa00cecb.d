/root/repo/target/debug/deps/qrn_units-71f0ff11fa00cecb.d: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_units-71f0ff11fa00cecb.rmeta: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/accel.rs:
crates/units/src/distance.rs:
crates/units/src/error.rs:
crates/units/src/frequency.rs:
crates/units/src/probability.rs:
crates/units/src/speed.rs:
crates/units/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
