/root/repo/target/debug/deps/fig2_risk_spectrum-650af7087f574272.d: crates/bench/src/bin/fig2_risk_spectrum.rs

/root/repo/target/debug/deps/fig2_risk_spectrum-650af7087f574272: crates/bench/src/bin/fig2_risk_spectrum.rs

crates/bench/src/bin/fig2_risk_spectrum.rs:
