/root/repo/target/debug/deps/qrn_units-e7577036ba33491f.d: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

/root/repo/target/debug/deps/libqrn_units-e7577036ba33491f.rlib: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

/root/repo/target/debug/deps/libqrn_units-e7577036ba33491f.rmeta: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/accel.rs:
crates/units/src/distance.rs:
crates/units/src/error.rs:
crates/units/src/frequency.rs:
crates/units/src/probability.rs:
crates/units/src/speed.rs:
crates/units/src/time.rs:
