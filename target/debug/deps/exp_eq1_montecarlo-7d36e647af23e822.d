/root/repo/target/debug/deps/exp_eq1_montecarlo-7d36e647af23e822.d: crates/bench/src/bin/exp_eq1_montecarlo.rs

/root/repo/target/debug/deps/exp_eq1_montecarlo-7d36e647af23e822: crates/bench/src/bin/exp_eq1_montecarlo.rs

crates/bench/src/bin/exp_eq1_montecarlo.rs:
