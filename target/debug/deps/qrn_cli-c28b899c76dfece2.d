/root/repo/target/debug/deps/qrn_cli-c28b899c76dfece2.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_cli-c28b899c76dfece2.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
