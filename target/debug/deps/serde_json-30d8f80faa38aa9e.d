/root/repo/target/debug/deps/serde_json-30d8f80faa38aa9e.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-30d8f80faa38aa9e: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
