/root/repo/target/debug/deps/serde_derive-7b4eacd6040f3645.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7b4eacd6040f3645.so: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
