/root/repo/target/debug/deps/exp_odd_tradeoff-0ca502e81462fd33.d: crates/bench/src/bin/exp_odd_tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libexp_odd_tradeoff-0ca502e81462fd33.rmeta: crates/bench/src/bin/exp_odd_tradeoff.rs Cargo.toml

crates/bench/src/bin/exp_odd_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
