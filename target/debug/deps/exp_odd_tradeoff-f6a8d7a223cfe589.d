/root/repo/target/debug/deps/exp_odd_tradeoff-f6a8d7a223cfe589.d: crates/bench/src/bin/exp_odd_tradeoff.rs

/root/repo/target/debug/deps/exp_odd_tradeoff-f6a8d7a223cfe589: crates/bench/src/bin/exp_odd_tradeoff.rs

crates/bench/src/bin/exp_odd_tradeoff.rs:
