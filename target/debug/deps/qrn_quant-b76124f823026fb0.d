/root/repo/target/debug/deps/qrn_quant-b76124f823026fb0.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/debug/deps/libqrn_quant-b76124f823026fb0.rlib: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/debug/deps/libqrn_quant-b76124f823026fb0.rmeta: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
