/root/repo/target/debug/deps/cli_process-90d52e20ac7d4355.d: crates/cli/tests/cli_process.rs

/root/repo/target/debug/deps/cli_process-90d52e20ac7d4355: crates/cli/tests/cli_process.rs

crates/cli/tests/cli_process.rs:

# env-dep:CARGO_BIN_EXE_qrn=/root/repo/target/debug/qrn
