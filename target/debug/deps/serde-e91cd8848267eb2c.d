/root/repo/target/debug/deps/serde-e91cd8848267eb2c.d: crates/compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e91cd8848267eb2c.rmeta: crates/compat/serde/src/lib.rs Cargo.toml

crates/compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
