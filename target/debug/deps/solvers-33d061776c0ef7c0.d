/root/repo/target/debug/deps/solvers-33d061776c0ef7c0.d: tests/solvers.rs

/root/repo/target/debug/deps/solvers-33d061776c0ef7c0: tests/solvers.rs

tests/solvers.rs:
