/root/repo/target/debug/deps/qrn_hara-2438228f73d8a988.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_hara-2438228f73d8a988.rmeta: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs Cargo.toml

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
