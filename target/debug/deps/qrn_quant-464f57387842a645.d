/root/repo/target/debug/deps/qrn_quant-464f57387842a645.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/debug/deps/libqrn_quant-464f57387842a645.rlib: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/debug/deps/libqrn_quant-464f57387842a645.rmeta: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
