/root/repo/target/debug/deps/fig3_risk_norm-6a65efac368e5cc0.d: crates/bench/src/bin/fig3_risk_norm.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_risk_norm-6a65efac368e5cc0.rmeta: crates/bench/src/bin/fig3_risk_norm.rs Cargo.toml

crates/bench/src/bin/fig3_risk_norm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
