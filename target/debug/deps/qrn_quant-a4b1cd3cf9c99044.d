/root/repo/target/debug/deps/qrn_quant-a4b1cd3cf9c99044.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs crates/quant/src/proptests.rs

/root/repo/target/debug/deps/qrn_quant-a4b1cd3cf9c99044: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs crates/quant/src/proptests.rs

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
crates/quant/src/proptests.rs:
