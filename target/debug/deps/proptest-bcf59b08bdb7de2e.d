/root/repo/target/debug/deps/proptest-bcf59b08bdb7de2e.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bcf59b08bdb7de2e.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
