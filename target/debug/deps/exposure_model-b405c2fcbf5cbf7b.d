/root/repo/target/debug/deps/exposure_model-b405c2fcbf5cbf7b.d: tests/exposure_model.rs Cargo.toml

/root/repo/target/debug/deps/libexposure_model-b405c2fcbf5cbf7b.rmeta: tests/exposure_model.rs Cargo.toml

tests/exposure_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
