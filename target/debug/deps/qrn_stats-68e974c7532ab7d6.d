/root/repo/target/debug/deps/qrn_stats-68e974c7532ab7d6.d: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/qrn_stats-68e974c7532ab7d6: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/binomial.rs:
crates/stats/src/error.rs:
crates/stats/src/poisson.rs:
crates/stats/src/rng.rs:
crates/stats/src/sequential.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
