/root/repo/target/debug/deps/exp_policy_exposure-da40fbc021d52af1.d: crates/bench/src/bin/exp_policy_exposure.rs Cargo.toml

/root/repo/target/debug/deps/libexp_policy_exposure-da40fbc021d52af1.rmeta: crates/bench/src/bin/exp_policy_exposure.rs Cargo.toml

crates/bench/src/bin/exp_policy_exposure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
