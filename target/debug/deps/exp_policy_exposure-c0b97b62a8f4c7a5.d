/root/repo/target/debug/deps/exp_policy_exposure-c0b97b62a8f4c7a5.d: crates/bench/src/bin/exp_policy_exposure.rs Cargo.toml

/root/repo/target/debug/deps/libexp_policy_exposure-c0b97b62a8f4c7a5.rmeta: crates/bench/src/bin/exp_policy_exposure.rs Cargo.toml

crates/bench/src/bin/exp_policy_exposure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
