/root/repo/target/debug/deps/serde_derive-ffb5645c2d26b6e7.d: crates/compat/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-ffb5645c2d26b6e7.so: crates/compat/serde_derive/src/lib.rs Cargo.toml

crates/compat/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
