/root/repo/target/debug/deps/qrn_odd-2d244fbf0640c880.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs crates/odd/src/proptests.rs

/root/repo/target/debug/deps/qrn_odd-2d244fbf0640c880: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs crates/odd/src/proptests.rs

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
crates/odd/src/proptests.rs:
