/root/repo/target/debug/deps/fig1_iso26262_risk-115a1fbb9641ea0e.d: crates/bench/src/bin/fig1_iso26262_risk.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_iso26262_risk-115a1fbb9641ea0e.rmeta: crates/bench/src/bin/fig1_iso26262_risk.rs Cargo.toml

crates/bench/src/bin/fig1_iso26262_risk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
