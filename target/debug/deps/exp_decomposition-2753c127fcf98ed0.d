/root/repo/target/debug/deps/exp_decomposition-2753c127fcf98ed0.d: crates/bench/src/bin/exp_decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libexp_decomposition-2753c127fcf98ed0.rmeta: crates/bench/src/bin/exp_decomposition.rs Cargo.toml

crates/bench/src/bin/exp_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
