/root/repo/target/debug/deps/exp_intractability-275b51014c9f85b6.d: crates/bench/src/bin/exp_intractability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_intractability-275b51014c9f85b6.rmeta: crates/bench/src/bin/exp_intractability.rs Cargo.toml

crates/bench/src/bin/exp_intractability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
