/root/repo/target/debug/deps/qrn_stats-f0efaa2b5ab9ca7a.d: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_stats-f0efaa2b5ab9ca7a.rmeta: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/binomial.rs:
crates/stats/src/error.rs:
crates/stats/src/poisson.rs:
crates/stats/src/rng.rs:
crates/stats/src/sequential.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
