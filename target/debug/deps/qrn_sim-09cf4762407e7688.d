/root/repo/target/debug/deps/qrn_sim-09cf4762407e7688.d: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs crates/sim/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_sim-09cf4762407e7688.rmeta: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs crates/sim/src/proptests.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/encounter.rs:
crates/sim/src/faults.rs:
crates/sim/src/monte_carlo.rs:
crates/sim/src/perception.rs:
crates/sim/src/policy.rs:
crates/sim/src/scenario.rs:
crates/sim/src/severity.rs:
crates/sim/src/vehicle.rs:
crates/sim/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
