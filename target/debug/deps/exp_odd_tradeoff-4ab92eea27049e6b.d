/root/repo/target/debug/deps/exp_odd_tradeoff-4ab92eea27049e6b.d: crates/bench/src/bin/exp_odd_tradeoff.rs

/root/repo/target/debug/deps/exp_odd_tradeoff-4ab92eea27049e6b: crates/bench/src/bin/exp_odd_tradeoff.rs

crates/bench/src/bin/exp_odd_tradeoff.rs:
