/root/repo/target/debug/deps/qrn_odd-6848d5aeb8ef8ea8.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_odd-6848d5aeb8ef8ea8.rmeta: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs Cargo.toml

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
