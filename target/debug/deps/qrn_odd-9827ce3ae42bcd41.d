/root/repo/target/debug/deps/qrn_odd-9827ce3ae42bcd41.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/debug/deps/libqrn_odd-9827ce3ae42bcd41.rlib: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/debug/deps/libqrn_odd-9827ce3ae42bcd41.rmeta: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
