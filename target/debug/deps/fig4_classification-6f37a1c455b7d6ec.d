/root/repo/target/debug/deps/fig4_classification-6f37a1c455b7d6ec.d: crates/bench/src/bin/fig4_classification.rs

/root/repo/target/debug/deps/fig4_classification-6f37a1c455b7d6ec: crates/bench/src/bin/fig4_classification.rs

crates/bench/src/bin/fig4_classification.rs:
