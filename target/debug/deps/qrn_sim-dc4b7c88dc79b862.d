/root/repo/target/debug/deps/qrn_sim-dc4b7c88dc79b862.d: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

/root/repo/target/debug/deps/libqrn_sim-dc4b7c88dc79b862.rlib: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

/root/repo/target/debug/deps/libqrn_sim-dc4b7c88dc79b862.rmeta: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

crates/sim/src/lib.rs:
crates/sim/src/encounter.rs:
crates/sim/src/faults.rs:
crates/sim/src/monte_carlo.rs:
crates/sim/src/perception.rs:
crates/sim/src/policy.rs:
crates/sim/src/scenario.rs:
crates/sim/src/severity.rs:
crates/sim/src/vehicle.rs:
