/root/repo/target/debug/deps/serde_bundle-a74becc8604f5147.d: tests/serde_bundle.rs

/root/repo/target/debug/deps/serde_bundle-a74becc8604f5147: tests/serde_bundle.rs

tests/serde_bundle.rs:
