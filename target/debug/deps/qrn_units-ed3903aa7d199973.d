/root/repo/target/debug/deps/qrn_units-ed3903aa7d199973.d: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs crates/units/src/proptests.rs

/root/repo/target/debug/deps/qrn_units-ed3903aa7d199973: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs crates/units/src/proptests.rs

crates/units/src/lib.rs:
crates/units/src/accel.rs:
crates/units/src/distance.rs:
crates/units/src/error.rs:
crates/units/src/frequency.rs:
crates/units/src/probability.rs:
crates/units/src/speed.rs:
crates/units/src/time.rs:
crates/units/src/proptests.rs:
