/root/repo/target/debug/deps/qrn_quant-8d1002d1048e6051.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_quant-8d1002d1048e6051.rmeta: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
