/root/repo/target/debug/deps/qrn-fe25454e47c5cee7.d: src/lib.rs

/root/repo/target/debug/deps/libqrn-fe25454e47c5cee7.rlib: src/lib.rs

/root/repo/target/debug/deps/libqrn-fe25454e47c5cee7.rmeta: src/lib.rs

src/lib.rs:
