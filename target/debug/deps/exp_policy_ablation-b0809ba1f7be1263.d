/root/repo/target/debug/deps/exp_policy_ablation-b0809ba1f7be1263.d: crates/bench/src/bin/exp_policy_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_policy_ablation-b0809ba1f7be1263.rmeta: crates/bench/src/bin/exp_policy_ablation.rs Cargo.toml

crates/bench/src/bin/exp_policy_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
