/root/repo/target/debug/deps/bench_asil-7634df4335758381.d: crates/bench/benches/bench_asil.rs Cargo.toml

/root/repo/target/debug/deps/libbench_asil-7634df4335758381.rmeta: crates/bench/benches/bench_asil.rs Cargo.toml

crates/bench/benches/bench_asil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
