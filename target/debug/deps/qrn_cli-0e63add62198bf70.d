/root/repo/target/debug/deps/qrn_cli-0e63add62198bf70.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/libqrn_cli-0e63add62198bf70.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/libqrn_cli-0e63add62198bf70.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
