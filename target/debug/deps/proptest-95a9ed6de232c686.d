/root/repo/target/debug/deps/proptest-95a9ed6de232c686.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95a9ed6de232c686.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95a9ed6de232c686.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
