/root/repo/target/debug/deps/bench_stats-13ac8f3a52b8a9df.d: crates/bench/benches/bench_stats.rs Cargo.toml

/root/repo/target/debug/deps/libbench_stats-13ac8f3a52b8a9df.rmeta: crates/bench/benches/bench_stats.rs Cargo.toml

crates/bench/benches/bench_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
