/root/repo/target/debug/deps/qrn_core-e11d3939e6ed6eb2.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/classification.rs crates/core/src/consequence.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/incident.rs crates/core/src/norm.rs crates/core/src/object.rs crates/core/src/report.rs crates/core/src/safety_case.rs crates/core/src/safety_goal.rs crates/core/src/verification.rs crates/core/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_core-e11d3939e6ed6eb2.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/classification.rs crates/core/src/consequence.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/incident.rs crates/core/src/norm.rs crates/core/src/object.rs crates/core/src/report.rs crates/core/src/safety_case.rs crates/core/src/safety_goal.rs crates/core/src/verification.rs crates/core/src/proptests.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/classification.rs:
crates/core/src/consequence.rs:
crates/core/src/error.rs:
crates/core/src/examples.rs:
crates/core/src/incident.rs:
crates/core/src/norm.rs:
crates/core/src/object.rs:
crates/core/src/report.rs:
crates/core/src/safety_case.rs:
crates/core/src/safety_goal.rs:
crates/core/src/verification.rs:
crates/core/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
