/root/repo/target/debug/deps/qrn_hara-62a9caebd2954324.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs crates/hara/src/proptests.rs

/root/repo/target/debug/deps/qrn_hara-62a9caebd2954324: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs crates/hara/src/proptests.rs

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
crates/hara/src/proptests.rs:
