/root/repo/target/debug/deps/exp_policy_ablation-af619a6be3efc0d8.d: crates/bench/src/bin/exp_policy_ablation.rs

/root/repo/target/debug/deps/exp_policy_ablation-af619a6be3efc0d8: crates/bench/src/bin/exp_policy_ablation.rs

crates/bench/src/bin/exp_policy_ablation.rs:
