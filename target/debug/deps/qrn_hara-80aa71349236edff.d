/root/repo/target/debug/deps/qrn_hara-80aa71349236edff.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs crates/hara/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_hara-80aa71349236edff.rmeta: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs crates/hara/src/proptests.rs Cargo.toml

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
crates/hara/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
