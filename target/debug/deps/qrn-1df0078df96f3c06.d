/root/repo/target/debug/deps/qrn-1df0078df96f3c06.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/qrn-1df0078df96f3c06: crates/cli/src/main.rs

crates/cli/src/main.rs:
