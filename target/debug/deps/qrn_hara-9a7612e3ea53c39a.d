/root/repo/target/debug/deps/qrn_hara-9a7612e3ea53c39a.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/debug/deps/libqrn_hara-9a7612e3ea53c39a.rlib: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/debug/deps/libqrn_hara-9a7612e3ea53c39a.rmeta: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
