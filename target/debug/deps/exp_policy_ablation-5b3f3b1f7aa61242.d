/root/repo/target/debug/deps/exp_policy_ablation-5b3f3b1f7aa61242.d: crates/bench/src/bin/exp_policy_ablation.rs

/root/repo/target/debug/deps/exp_policy_ablation-5b3f3b1f7aa61242: crates/bench/src/bin/exp_policy_ablation.rs

crates/bench/src/bin/exp_policy_ablation.rs:
