/root/repo/target/debug/deps/proptest-0c4c34ae708e057a.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0c4c34ae708e057a.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
