/root/repo/target/debug/deps/qrn-3e7126499a88fdc3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqrn-3e7126499a88fdc3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
