/root/repo/target/debug/deps/qrn_bench-476e7a7415e8d98c.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/qrn_bench-476e7a7415e8d98c: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
