/root/repo/target/debug/deps/bench_classify-f846680f36c800f0.d: crates/bench/benches/bench_classify.rs Cargo.toml

/root/repo/target/debug/deps/libbench_classify-f846680f36c800f0.rmeta: crates/bench/benches/bench_classify.rs Cargo.toml

crates/bench/benches/bench_classify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
