/root/repo/target/debug/deps/exp_policy_ablation-81ad82c581ccd15a.d: crates/bench/src/bin/exp_policy_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_policy_ablation-81ad82c581ccd15a.rmeta: crates/bench/src/bin/exp_policy_ablation.rs Cargo.toml

crates/bench/src/bin/exp_policy_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
