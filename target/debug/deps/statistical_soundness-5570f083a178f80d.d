/root/repo/target/debug/deps/statistical_soundness-5570f083a178f80d.d: tests/statistical_soundness.rs

/root/repo/target/debug/deps/statistical_soundness-5570f083a178f80d: tests/statistical_soundness.rs

tests/statistical_soundness.rs:
