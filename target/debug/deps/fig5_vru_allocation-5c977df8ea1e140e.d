/root/repo/target/debug/deps/fig5_vru_allocation-5c977df8ea1e140e.d: crates/bench/src/bin/fig5_vru_allocation.rs

/root/repo/target/debug/deps/fig5_vru_allocation-5c977df8ea1e140e: crates/bench/src/bin/fig5_vru_allocation.rs

crates/bench/src/bin/fig5_vru_allocation.rs:
