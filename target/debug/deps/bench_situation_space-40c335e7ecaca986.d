/root/repo/target/debug/deps/bench_situation_space-40c335e7ecaca986.d: crates/bench/benches/bench_situation_space.rs Cargo.toml

/root/repo/target/debug/deps/libbench_situation_space-40c335e7ecaca986.rmeta: crates/bench/benches/bench_situation_space.rs Cargo.toml

crates/bench/benches/bench_situation_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
