/root/repo/target/debug/deps/cli_process-d038b801c91864eb.d: crates/cli/tests/cli_process.rs Cargo.toml

/root/repo/target/debug/deps/libcli_process-d038b801c91864eb.rmeta: crates/cli/tests/cli_process.rs Cargo.toml

crates/cli/tests/cli_process.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_qrn=placeholder:qrn
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
