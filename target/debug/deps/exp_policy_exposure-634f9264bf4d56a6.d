/root/repo/target/debug/deps/exp_policy_exposure-634f9264bf4d56a6.d: crates/bench/src/bin/exp_policy_exposure.rs

/root/repo/target/debug/deps/exp_policy_exposure-634f9264bf4d56a6: crates/bench/src/bin/exp_policy_exposure.rs

crates/bench/src/bin/exp_policy_exposure.rs:
