/root/repo/target/debug/deps/qrn_units-1dabc786697d4300.d: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs crates/units/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_units-1dabc786697d4300.rmeta: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs crates/units/src/proptests.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/accel.rs:
crates/units/src/distance.rs:
crates/units/src/error.rs:
crates/units/src/frequency.rs:
crates/units/src/probability.rs:
crates/units/src/speed.rs:
crates/units/src/time.rs:
crates/units/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
