/root/repo/target/debug/deps/hara_vs_qrn-e516b150e5946129.d: tests/hara_vs_qrn.rs Cargo.toml

/root/repo/target/debug/deps/libhara_vs_qrn-e516b150e5946129.rmeta: tests/hara_vs_qrn.rs Cargo.toml

tests/hara_vs_qrn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
