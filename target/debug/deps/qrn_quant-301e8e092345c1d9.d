/root/repo/target/debug/deps/qrn_quant-301e8e092345c1d9.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs crates/quant/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libqrn_quant-301e8e092345c1d9.rmeta: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs crates/quant/src/proptests.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
crates/quant/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
