/root/repo/target/debug/deps/fig4_classification-3fbc0dc114442d59.d: crates/bench/src/bin/fig4_classification.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_classification-3fbc0dc114442d59.rmeta: crates/bench/src/bin/fig4_classification.rs Cargo.toml

crates/bench/src/bin/fig4_classification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
