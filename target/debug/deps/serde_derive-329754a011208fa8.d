/root/repo/target/debug/deps/serde_derive-329754a011208fa8.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-329754a011208fa8: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
