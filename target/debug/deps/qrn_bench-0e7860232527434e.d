/root/repo/target/debug/deps/qrn_bench-0e7860232527434e.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libqrn_bench-0e7860232527434e.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libqrn_bench-0e7860232527434e.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
