/root/repo/target/debug/deps/exposure_model-e189870df185f7d9.d: tests/exposure_model.rs

/root/repo/target/debug/deps/exposure_model-e189870df185f7d9: tests/exposure_model.rs

tests/exposure_model.rs:
