/root/repo/target/debug/deps/serde_bundle-c07c952beafb8e77.d: tests/serde_bundle.rs Cargo.toml

/root/repo/target/debug/deps/libserde_bundle-c07c952beafb8e77.rmeta: tests/serde_bundle.rs Cargo.toml

tests/serde_bundle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
