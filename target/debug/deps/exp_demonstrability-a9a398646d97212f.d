/root/repo/target/debug/deps/exp_demonstrability-a9a398646d97212f.d: crates/bench/src/bin/exp_demonstrability.rs

/root/repo/target/debug/deps/exp_demonstrability-a9a398646d97212f: crates/bench/src/bin/exp_demonstrability.rs

crates/bench/src/bin/exp_demonstrability.rs:
