/root/repo/target/debug/deps/exp_eq1_montecarlo-90a56280c757458c.d: crates/bench/src/bin/exp_eq1_montecarlo.rs Cargo.toml

/root/repo/target/debug/deps/libexp_eq1_montecarlo-90a56280c757458c.rmeta: crates/bench/src/bin/exp_eq1_montecarlo.rs Cargo.toml

crates/bench/src/bin/exp_eq1_montecarlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
