/root/repo/target/debug/deps/exp_policy_exposure-1a6774be8136b8d4.d: crates/bench/src/bin/exp_policy_exposure.rs

/root/repo/target/debug/deps/exp_policy_exposure-1a6774be8136b8d4: crates/bench/src/bin/exp_policy_exposure.rs

crates/bench/src/bin/exp_policy_exposure.rs:
