/root/repo/target/debug/deps/rand-e62ddffa3f3d7822.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-e62ddffa3f3d7822.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
