/root/repo/target/debug/deps/solvers-6d4d891fd164f8e6.d: tests/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-6d4d891fd164f8e6.rmeta: tests/solvers.rs Cargo.toml

tests/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
