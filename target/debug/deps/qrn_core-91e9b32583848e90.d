/root/repo/target/debug/deps/qrn_core-91e9b32583848e90.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/classification.rs crates/core/src/consequence.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/incident.rs crates/core/src/norm.rs crates/core/src/object.rs crates/core/src/report.rs crates/core/src/safety_case.rs crates/core/src/safety_goal.rs crates/core/src/verification.rs

/root/repo/target/debug/deps/libqrn_core-91e9b32583848e90.rlib: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/classification.rs crates/core/src/consequence.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/incident.rs crates/core/src/norm.rs crates/core/src/object.rs crates/core/src/report.rs crates/core/src/safety_case.rs crates/core/src/safety_goal.rs crates/core/src/verification.rs

/root/repo/target/debug/deps/libqrn_core-91e9b32583848e90.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/classification.rs crates/core/src/consequence.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/incident.rs crates/core/src/norm.rs crates/core/src/object.rs crates/core/src/report.rs crates/core/src/safety_case.rs crates/core/src/safety_goal.rs crates/core/src/verification.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/classification.rs:
crates/core/src/consequence.rs:
crates/core/src/error.rs:
crates/core/src/examples.rs:
crates/core/src/incident.rs:
crates/core/src/norm.rs:
crates/core/src/object.rs:
crates/core/src/report.rs:
crates/core/src/safety_case.rs:
crates/core/src/safety_goal.rs:
crates/core/src/verification.rs:
