/root/repo/target/debug/deps/qrn-2e0eff0e865ecc5d.d: src/lib.rs

/root/repo/target/debug/deps/libqrn-2e0eff0e865ecc5d.rlib: src/lib.rs

/root/repo/target/debug/deps/libqrn-2e0eff0e865ecc5d.rmeta: src/lib.rs

src/lib.rs:
