/root/repo/target/debug/deps/hara_vs_qrn-191414412941a6da.d: tests/hara_vs_qrn.rs

/root/repo/target/debug/deps/hara_vs_qrn-191414412941a6da: tests/hara_vs_qrn.rs

tests/hara_vs_qrn.rs:
