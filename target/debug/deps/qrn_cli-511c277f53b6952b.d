/root/repo/target/debug/deps/qrn_cli-511c277f53b6952b.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/libqrn_cli-511c277f53b6952b.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/libqrn_cli-511c277f53b6952b.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
