/root/repo/target/debug/deps/exp_intractability-91052c9f70571023.d: crates/bench/src/bin/exp_intractability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_intractability-91052c9f70571023.rmeta: crates/bench/src/bin/exp_intractability.rs Cargo.toml

crates/bench/src/bin/exp_intractability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
