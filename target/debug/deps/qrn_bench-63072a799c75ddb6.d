/root/repo/target/debug/deps/qrn_bench-63072a799c75ddb6.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libqrn_bench-63072a799c75ddb6.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libqrn_bench-63072a799c75ddb6.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
