/root/repo/target/debug/deps/fig2_risk_spectrum-e4d0ab4fbe38ec82.d: crates/bench/src/bin/fig2_risk_spectrum.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_risk_spectrum-e4d0ab4fbe38ec82.rmeta: crates/bench/src/bin/fig2_risk_spectrum.rs Cargo.toml

crates/bench/src/bin/fig2_risk_spectrum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
