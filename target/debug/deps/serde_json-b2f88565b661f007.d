/root/repo/target/debug/deps/serde_json-b2f88565b661f007.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b2f88565b661f007.rlib: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b2f88565b661f007.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
