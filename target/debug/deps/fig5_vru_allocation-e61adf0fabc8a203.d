/root/repo/target/debug/deps/fig5_vru_allocation-e61adf0fabc8a203.d: crates/bench/src/bin/fig5_vru_allocation.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_vru_allocation-e61adf0fabc8a203.rmeta: crates/bench/src/bin/fig5_vru_allocation.rs Cargo.toml

crates/bench/src/bin/fig5_vru_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
