/root/repo/target/debug/deps/qrn_odd-dc0541335af7f9a2.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/debug/deps/libqrn_odd-dc0541335af7f9a2.rlib: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/debug/deps/libqrn_odd-dc0541335af7f9a2.rmeta: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
