/root/repo/target/debug/deps/qrn_hara-3b0a719c5490fa8d.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/debug/deps/libqrn_hara-3b0a719c5490fa8d.rlib: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/debug/deps/libqrn_hara-3b0a719c5490fa8d.rmeta: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
