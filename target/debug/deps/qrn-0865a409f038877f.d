/root/repo/target/debug/deps/qrn-0865a409f038877f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/qrn-0865a409f038877f: crates/cli/src/main.rs

crates/cli/src/main.rs:
