/root/repo/target/debug/deps/serde-20beb666c82c2b43.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-20beb666c82c2b43.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-20beb666c82c2b43.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
