/root/repo/target/debug/deps/exp_intractability-10748f5c9790906d.d: crates/bench/src/bin/exp_intractability.rs

/root/repo/target/debug/deps/exp_intractability-10748f5c9790906d: crates/bench/src/bin/exp_intractability.rs

crates/bench/src/bin/exp_intractability.rs:
