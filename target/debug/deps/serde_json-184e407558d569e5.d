/root/repo/target/debug/deps/serde_json-184e407558d569e5.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-184e407558d569e5.rlib: crates/compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-184e407558d569e5.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
