/root/repo/target/debug/deps/bench_norm-a289707198399971.d: crates/bench/benches/bench_norm.rs Cargo.toml

/root/repo/target/debug/deps/libbench_norm-a289707198399971.rmeta: crates/bench/benches/bench_norm.rs Cargo.toml

crates/bench/benches/bench_norm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
