/root/repo/target/debug/deps/bench_sim-95d0721557afd239.d: crates/bench/benches/bench_sim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim-95d0721557afd239.rmeta: crates/bench/benches/bench_sim.rs Cargo.toml

crates/bench/benches/bench_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
