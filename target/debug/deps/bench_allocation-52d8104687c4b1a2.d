/root/repo/target/debug/deps/bench_allocation-52d8104687c4b1a2.d: crates/bench/benches/bench_allocation.rs Cargo.toml

/root/repo/target/debug/deps/libbench_allocation-52d8104687c4b1a2.rmeta: crates/bench/benches/bench_allocation.rs Cargo.toml

crates/bench/benches/bench_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
