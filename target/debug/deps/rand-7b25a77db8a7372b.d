/root/repo/target/debug/deps/rand-7b25a77db8a7372b.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-7b25a77db8a7372b: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
