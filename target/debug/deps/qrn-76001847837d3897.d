/root/repo/target/debug/deps/qrn-76001847837d3897.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libqrn-76001847837d3897.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
