/root/repo/target/debug/deps/fig3_risk_norm-441bf5257b640afd.d: crates/bench/src/bin/fig3_risk_norm.rs

/root/repo/target/debug/deps/fig3_risk_norm-441bf5257b640afd: crates/bench/src/bin/fig3_risk_norm.rs

crates/bench/src/bin/fig3_risk_norm.rs:
