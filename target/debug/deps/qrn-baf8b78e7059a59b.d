/root/repo/target/debug/deps/qrn-baf8b78e7059a59b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/qrn-baf8b78e7059a59b: crates/cli/src/main.rs

crates/cli/src/main.rs:
