/root/repo/target/debug/deps/qrn_cli-27a03a8afaa9146f.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/debug/deps/qrn_cli-27a03a8afaa9146f: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
