/root/repo/target/debug/deps/fig2_risk_spectrum-8848ac80d8fd7637.d: crates/bench/src/bin/fig2_risk_spectrum.rs

/root/repo/target/debug/deps/fig2_risk_spectrum-8848ac80d8fd7637: crates/bench/src/bin/fig2_risk_spectrum.rs

crates/bench/src/bin/fig2_risk_spectrum.rs:
