/root/repo/target/debug/deps/rand-472850f564353fe3.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-472850f564353fe3.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
