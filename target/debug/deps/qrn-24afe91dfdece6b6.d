/root/repo/target/debug/deps/qrn-24afe91dfdece6b6.d: src/lib.rs

/root/repo/target/debug/deps/qrn-24afe91dfdece6b6: src/lib.rs

src/lib.rs:
