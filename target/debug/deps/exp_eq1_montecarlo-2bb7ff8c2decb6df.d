/root/repo/target/debug/deps/exp_eq1_montecarlo-2bb7ff8c2decb6df.d: crates/bench/src/bin/exp_eq1_montecarlo.rs

/root/repo/target/debug/deps/exp_eq1_montecarlo-2bb7ff8c2decb6df: crates/bench/src/bin/exp_eq1_montecarlo.rs

crates/bench/src/bin/exp_eq1_montecarlo.rs:
