/root/repo/target/debug/deps/rand-db426d206d5ff3ed.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-db426d206d5ff3ed.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-db426d206d5ff3ed.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
