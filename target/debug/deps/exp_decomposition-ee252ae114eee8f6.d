/root/repo/target/debug/deps/exp_decomposition-ee252ae114eee8f6.d: crates/bench/src/bin/exp_decomposition.rs

/root/repo/target/debug/deps/exp_decomposition-ee252ae114eee8f6: crates/bench/src/bin/exp_decomposition.rs

crates/bench/src/bin/exp_decomposition.rs:
