/root/repo/target/release/libserde.rlib: /root/repo/crates/compat/serde/src/lib.rs /root/repo/crates/compat/serde_derive/src/lib.rs
