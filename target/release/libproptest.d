/root/repo/target/release/libproptest.rlib: /root/repo/crates/compat/proptest/src/lib.rs /root/repo/crates/compat/rand/src/lib.rs
