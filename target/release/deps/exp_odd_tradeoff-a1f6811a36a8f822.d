/root/repo/target/release/deps/exp_odd_tradeoff-a1f6811a36a8f822.d: crates/bench/src/bin/exp_odd_tradeoff.rs

/root/repo/target/release/deps/exp_odd_tradeoff-a1f6811a36a8f822: crates/bench/src/bin/exp_odd_tradeoff.rs

crates/bench/src/bin/exp_odd_tradeoff.rs:
