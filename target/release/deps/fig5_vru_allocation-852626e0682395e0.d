/root/repo/target/release/deps/fig5_vru_allocation-852626e0682395e0.d: crates/bench/src/bin/fig5_vru_allocation.rs

/root/repo/target/release/deps/fig5_vru_allocation-852626e0682395e0: crates/bench/src/bin/fig5_vru_allocation.rs

crates/bench/src/bin/fig5_vru_allocation.rs:
