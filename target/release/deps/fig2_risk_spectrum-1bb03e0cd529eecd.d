/root/repo/target/release/deps/fig2_risk_spectrum-1bb03e0cd529eecd.d: crates/bench/src/bin/fig2_risk_spectrum.rs

/root/repo/target/release/deps/fig2_risk_spectrum-1bb03e0cd529eecd: crates/bench/src/bin/fig2_risk_spectrum.rs

crates/bench/src/bin/fig2_risk_spectrum.rs:
