/root/repo/target/release/deps/bench_sim-09c7523d8d987f71.d: crates/bench/benches/bench_sim.rs

/root/repo/target/release/deps/bench_sim-09c7523d8d987f71: crates/bench/benches/bench_sim.rs

crates/bench/benches/bench_sim.rs:
