/root/repo/target/release/deps/fig4_classification-e351cb4b23955730.d: crates/bench/src/bin/fig4_classification.rs

/root/repo/target/release/deps/fig4_classification-e351cb4b23955730: crates/bench/src/bin/fig4_classification.rs

crates/bench/src/bin/fig4_classification.rs:
