/root/repo/target/release/deps/exp_intractability-c5efee90da2779c6.d: crates/bench/src/bin/exp_intractability.rs

/root/repo/target/release/deps/exp_intractability-c5efee90da2779c6: crates/bench/src/bin/exp_intractability.rs

crates/bench/src/bin/exp_intractability.rs:
