/root/repo/target/release/deps/exp_eq1_montecarlo-b2a2a39c510b2b6b.d: crates/bench/src/bin/exp_eq1_montecarlo.rs

/root/repo/target/release/deps/exp_eq1_montecarlo-b2a2a39c510b2b6b: crates/bench/src/bin/exp_eq1_montecarlo.rs

crates/bench/src/bin/exp_eq1_montecarlo.rs:
