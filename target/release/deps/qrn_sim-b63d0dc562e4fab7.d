/root/repo/target/release/deps/qrn_sim-b63d0dc562e4fab7.d: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

/root/repo/target/release/deps/libqrn_sim-b63d0dc562e4fab7.rlib: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

/root/repo/target/release/deps/libqrn_sim-b63d0dc562e4fab7.rmeta: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs

crates/sim/src/lib.rs:
crates/sim/src/encounter.rs:
crates/sim/src/faults.rs:
crates/sim/src/monte_carlo.rs:
crates/sim/src/perception.rs:
crates/sim/src/policy.rs:
crates/sim/src/scenario.rs:
crates/sim/src/severity.rs:
crates/sim/src/vehicle.rs:
