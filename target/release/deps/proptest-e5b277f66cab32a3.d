/root/repo/target/release/deps/proptest-e5b277f66cab32a3.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e5b277f66cab32a3.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e5b277f66cab32a3.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
