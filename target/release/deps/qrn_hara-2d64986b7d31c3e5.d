/root/repo/target/release/deps/qrn_hara-2d64986b7d31c3e5.d: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/release/deps/libqrn_hara-2d64986b7d31c3e5.rlib: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

/root/repo/target/release/deps/libqrn_hara-2d64986b7d31c3e5.rmeta: crates/hara/src/lib.rs crates/hara/src/analysis.rs crates/hara/src/asil.rs crates/hara/src/decomposition.rs crates/hara/src/hazard.rs crates/hara/src/severity.rs crates/hara/src/situation.rs

crates/hara/src/lib.rs:
crates/hara/src/analysis.rs:
crates/hara/src/asil.rs:
crates/hara/src/decomposition.rs:
crates/hara/src/hazard.rs:
crates/hara/src/severity.rs:
crates/hara/src/situation.rs:
