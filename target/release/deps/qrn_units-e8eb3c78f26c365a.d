/root/repo/target/release/deps/qrn_units-e8eb3c78f26c365a.d: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

/root/repo/target/release/deps/libqrn_units-e8eb3c78f26c365a.rlib: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

/root/repo/target/release/deps/libqrn_units-e8eb3c78f26c365a.rmeta: crates/units/src/lib.rs crates/units/src/accel.rs crates/units/src/distance.rs crates/units/src/error.rs crates/units/src/frequency.rs crates/units/src/probability.rs crates/units/src/speed.rs crates/units/src/time.rs

crates/units/src/lib.rs:
crates/units/src/accel.rs:
crates/units/src/distance.rs:
crates/units/src/error.rs:
crates/units/src/frequency.rs:
crates/units/src/probability.rs:
crates/units/src/speed.rs:
crates/units/src/time.rs:
