/root/repo/target/release/deps/serde_derive-b95d56bcb836f1fe.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b95d56bcb836f1fe.so: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
