/root/repo/target/release/deps/exp_demonstrability-0f824d5dece69367.d: crates/bench/src/bin/exp_demonstrability.rs

/root/repo/target/release/deps/exp_demonstrability-0f824d5dece69367: crates/bench/src/bin/exp_demonstrability.rs

crates/bench/src/bin/exp_demonstrability.rs:
