/root/repo/target/release/deps/exp_policy_ablation-68c2eef79600daa7.d: crates/bench/src/bin/exp_policy_ablation.rs

/root/repo/target/release/deps/exp_policy_ablation-68c2eef79600daa7: crates/bench/src/bin/exp_policy_ablation.rs

crates/bench/src/bin/exp_policy_ablation.rs:
