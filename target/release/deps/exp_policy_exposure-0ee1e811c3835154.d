/root/repo/target/release/deps/exp_policy_exposure-0ee1e811c3835154.d: crates/bench/src/bin/exp_policy_exposure.rs

/root/repo/target/release/deps/exp_policy_exposure-0ee1e811c3835154: crates/bench/src/bin/exp_policy_exposure.rs

crates/bench/src/bin/exp_policy_exposure.rs:
