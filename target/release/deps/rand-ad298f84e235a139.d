/root/repo/target/release/deps/rand-ad298f84e235a139.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-ad298f84e235a139.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-ad298f84e235a139.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
