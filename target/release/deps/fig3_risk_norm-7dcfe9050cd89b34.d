/root/repo/target/release/deps/fig3_risk_norm-7dcfe9050cd89b34.d: crates/bench/src/bin/fig3_risk_norm.rs

/root/repo/target/release/deps/fig3_risk_norm-7dcfe9050cd89b34: crates/bench/src/bin/fig3_risk_norm.rs

crates/bench/src/bin/fig3_risk_norm.rs:
