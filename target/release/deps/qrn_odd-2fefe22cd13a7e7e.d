/root/repo/target/release/deps/qrn_odd-2fefe22cd13a7e7e.d: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/release/deps/libqrn_odd-2fefe22cd13a7e7e.rlib: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

/root/repo/target/release/deps/libqrn_odd-2fefe22cd13a7e7e.rmeta: crates/odd/src/lib.rs crates/odd/src/attribute.rs crates/odd/src/context.rs crates/odd/src/exposure.rs crates/odd/src/monitor.rs crates/odd/src/spec.rs

crates/odd/src/lib.rs:
crates/odd/src/attribute.rs:
crates/odd/src/context.rs:
crates/odd/src/exposure.rs:
crates/odd/src/monitor.rs:
crates/odd/src/spec.rs:
