/root/repo/target/release/deps/qrn_cli-3e6e13aa26be4b6b.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/release/deps/libqrn_cli-3e6e13aa26be4b6b.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

/root/repo/target/release/deps/libqrn_cli-3e6e13aa26be4b6b.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/io.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/io.rs:
