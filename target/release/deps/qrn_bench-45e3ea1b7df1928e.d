/root/repo/target/release/deps/qrn_bench-45e3ea1b7df1928e.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libqrn_bench-45e3ea1b7df1928e.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libqrn_bench-45e3ea1b7df1928e.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
