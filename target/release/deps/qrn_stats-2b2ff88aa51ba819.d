/root/repo/target/release/deps/qrn_stats-2b2ff88aa51ba819.d: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libqrn_stats-2b2ff88aa51ba819.rlib: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libqrn_stats-2b2ff88aa51ba819.rmeta: crates/stats/src/lib.rs crates/stats/src/binomial.rs crates/stats/src/error.rs crates/stats/src/poisson.rs crates/stats/src/rng.rs crates/stats/src/sequential.rs crates/stats/src/special.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/binomial.rs:
crates/stats/src/error.rs:
crates/stats/src/poisson.rs:
crates/stats/src/rng.rs:
crates/stats/src/sequential.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
