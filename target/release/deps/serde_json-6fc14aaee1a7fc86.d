/root/repo/target/release/deps/serde_json-6fc14aaee1a7fc86.d: crates/compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6fc14aaee1a7fc86.rlib: crates/compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6fc14aaee1a7fc86.rmeta: crates/compat/serde_json/src/lib.rs

crates/compat/serde_json/src/lib.rs:
