/root/repo/target/release/deps/serde_derive-6f7d0d9383e02d6a.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-6f7d0d9383e02d6a.so: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
