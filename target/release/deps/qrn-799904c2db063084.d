/root/repo/target/release/deps/qrn-799904c2db063084.d: crates/cli/src/main.rs

/root/repo/target/release/deps/qrn-799904c2db063084: crates/cli/src/main.rs

crates/cli/src/main.rs:
