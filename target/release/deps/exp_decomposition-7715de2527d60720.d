/root/repo/target/release/deps/exp_decomposition-7715de2527d60720.d: crates/bench/src/bin/exp_decomposition.rs

/root/repo/target/release/deps/exp_decomposition-7715de2527d60720: crates/bench/src/bin/exp_decomposition.rs

crates/bench/src/bin/exp_decomposition.rs:
