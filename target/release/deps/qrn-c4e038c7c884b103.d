/root/repo/target/release/deps/qrn-c4e038c7c884b103.d: src/lib.rs

/root/repo/target/release/deps/libqrn-c4e038c7c884b103.rlib: src/lib.rs

/root/repo/target/release/deps/libqrn-c4e038c7c884b103.rmeta: src/lib.rs

src/lib.rs:
