/root/repo/target/release/deps/fig1_iso26262_risk-7ccb2d84b9a9a8e0.d: crates/bench/src/bin/fig1_iso26262_risk.rs

/root/repo/target/release/deps/fig1_iso26262_risk-7ccb2d84b9a9a8e0: crates/bench/src/bin/fig1_iso26262_risk.rs

crates/bench/src/bin/fig1_iso26262_risk.rs:
