/root/repo/target/release/deps/serde-283f29f6f93d0fd4.d: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-283f29f6f93d0fd4.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-283f29f6f93d0fd4.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
