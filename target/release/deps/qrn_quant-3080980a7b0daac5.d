/root/repo/target/release/deps/qrn_quant-3080980a7b0daac5.d: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/release/deps/libqrn_quant-3080980a7b0daac5.rlib: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

/root/repo/target/release/deps/libqrn_quant-3080980a7b0daac5.rmeta: crates/quant/src/lib.rs crates/quant/src/compare.rs crates/quant/src/element.rs crates/quant/src/ftree.rs crates/quant/src/importance.rs crates/quant/src/refine.rs

crates/quant/src/lib.rs:
crates/quant/src/compare.rs:
crates/quant/src/element.rs:
crates/quant/src/ftree.rs:
crates/quant/src/importance.rs:
crates/quant/src/refine.rs:
