/root/repo/target/release/deps/qrn_sim-6c3487b6d484a5f6.d: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs crates/sim/src/proptests.rs

/root/repo/target/release/deps/qrn_sim-6c3487b6d484a5f6: crates/sim/src/lib.rs crates/sim/src/encounter.rs crates/sim/src/faults.rs crates/sim/src/monte_carlo.rs crates/sim/src/perception.rs crates/sim/src/policy.rs crates/sim/src/scenario.rs crates/sim/src/severity.rs crates/sim/src/vehicle.rs crates/sim/src/proptests.rs

crates/sim/src/lib.rs:
crates/sim/src/encounter.rs:
crates/sim/src/faults.rs:
crates/sim/src/monte_carlo.rs:
crates/sim/src/perception.rs:
crates/sim/src/policy.rs:
crates/sim/src/scenario.rs:
crates/sim/src/severity.rs:
crates/sim/src/vehicle.rs:
crates/sim/src/proptests.rs:
