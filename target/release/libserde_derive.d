/root/repo/target/release/libserde_derive.so: /root/repo/crates/compat/serde_derive/src/lib.rs
